"""Setup shim.

The project metadata lives in ``pyproject.toml`` (PEP 621).  This file exists
so that ``pip install -e .`` works in fully offline environments, where PEP
517 build isolation cannot download its build requirements.
"""
from setuptools import setup

setup()
