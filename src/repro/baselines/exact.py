"""Exact minimum (weighted) dominating set solvers.

The paper's guarantees are stated relative to ``OPT``; to measure
approximation ratios the benchmark harness needs the true optimum on
small-to-medium instances.  Two solvers are provided:

* :func:`exact_minimum_weight_dominating_set` -- integer programming via
  ``scipy.optimize.milp`` (HiGHS branch-and-cut), practical up to a few
  hundred nodes on the sparse instances used here;
* :func:`_branch_and_bound` -- a pure-Python branch-and-bound fallback used
  when ``milp`` is unavailable or as a cross-check in tests on tiny graphs.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.graphs.validation import closed_neighborhood, is_dominating_set
from repro.graphs.weights import node_weight

__all__ = ["exact_minimum_dominating_set", "exact_minimum_weight_dominating_set"]


def exact_minimum_weight_dominating_set(
    graph: nx.Graph, time_limit: Optional[float] = None
) -> Tuple[Set[Hashable], int]:
    """Return ``(optimal_set, optimal_weight)`` for the weighted MDS problem.

    Uses the HiGHS MILP solver through scipy.  ``time_limit`` (seconds) is
    forwarded to the solver; if the solver stops early the best incumbent is
    returned provided it is a valid dominating set, otherwise a
    ``RuntimeError`` is raised.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return set(), 0
    try:
        from scipy.optimize import LinearConstraint, milp
        from scipy.sparse import lil_matrix
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return _branch_and_bound(graph)

    index = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)
    weights = np.array([node_weight(graph, node) for node in nodes], dtype=float)
    matrix = lil_matrix((n, n))
    for node in nodes:
        row = index[node]
        matrix[row, index[node]] = 1.0
        for neighbor in graph.neighbors(node):
            matrix[row, index[neighbor]] = 1.0
    constraint = LinearConstraint(matrix.tocsc(), lb=np.ones(n), ub=np.full(n, np.inf))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c=weights,
        constraints=[constraint],
        integrality=np.ones(n),
        bounds=None,
        options=options,
    )
    if result.x is None:  # pragma: no cover - only on solver failure
        return _branch_and_bound(graph)
    selected = {node for node in nodes if result.x[index[node]] > 0.5}
    if not is_dominating_set(graph, selected):  # pragma: no cover - safety net
        return _branch_and_bound(graph)
    weight = int(round(sum(node_weight(graph, node) for node in selected)))
    return selected, weight


def exact_minimum_dominating_set(graph: nx.Graph) -> Tuple[Set[Hashable], int]:
    """Exact *unweighted* minimum dominating set (ignores weight attributes)."""
    stripped = nx.Graph()
    stripped.add_nodes_from(graph.nodes())
    stripped.add_edges_from(graph.edges())
    return exact_minimum_weight_dominating_set(stripped)


def _branch_and_bound(graph: nx.Graph) -> Tuple[Set[Hashable], int]:
    """Pure-Python exact solver: branch on who dominates an uncovered node.

    Intended for tiny instances (tests); exponential in the worst case, with
    simple pruning by the incumbent weight.
    """
    nodes = list(graph.nodes())
    closed = {node: closed_neighborhood(graph, node) for node in nodes}
    weights = {node: node_weight(graph, node) for node in nodes}

    best_weight = sum(weights.values()) + 1
    best_set: Set[Hashable] = set(nodes)

    def recurse(chosen: Set[Hashable], dominated: Set[Hashable], weight: int) -> None:
        nonlocal best_weight, best_set
        if weight >= best_weight:
            return
        undominated = [node for node in nodes if node not in dominated]
        if not undominated:
            best_weight = weight
            best_set = set(chosen)
            return
        # Branch on the undominated node with the fewest candidate dominators;
        # every dominating set must contain one of them.
        pivot = min(undominated, key=lambda node: len(closed[node]))
        for candidate in sorted(closed[pivot], key=lambda node: weights[node]):
            recurse(
                chosen | {candidate},
                dominated | closed[candidate],
                weight + weights[candidate],
            )

    recurse(set(), set(), 0)
    return best_set, best_weight
