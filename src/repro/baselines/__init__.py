"""Baseline algorithms the paper compares against (Section 1.1 / 1.2).

The paper positions its contribution against a set of prior algorithms.  To
reproduce the "who wins, by how much" comparisons, this subpackage
re-implements each of them:

* :mod:`repro.baselines.exact` -- exact minimum (weighted) dominating set via
  integer programming / branch-and-bound, used as the denominator of
  approximation ratios on small and medium instances.
* :mod:`repro.baselines.lp` -- LP relaxations of dominating set and vertex
  cover (scipy), used both as OPT lower bounds and as input to the rounding
  baselines.
* :mod:`repro.baselines.greedy` -- the classic centralized ``ln(Delta+1)``
  greedy [Johnson 1974], weighted and unweighted.
* :mod:`repro.baselines.bansal_umboh` -- the Bansal--Umboh LP-rounding
  ``(2*alpha+1)``-approximation [BU17, with the Dvorak parameter choice].
* :mod:`repro.baselines.kmw` -- KMW-style LP + randomized rounding with
  ``O(log Delta)`` expected approximation [KMW06].
* :mod:`repro.baselines.lenzen_wattenhofer` -- distributed baselines in the
  spirit of Lenzen--Wattenhofer DISC'10: a deterministic ``O(alpha log Delta)``
  threshold-greedy in ``O(log Delta)`` rounds and a randomized ``O(alpha^2)``
  algorithm in ``O(log n)`` rounds.
* :mod:`repro.baselines.msw` -- a combinatorial orientation-based baseline in
  the spirit of Morgan--Solomon--Wein DISC'21.
* :mod:`repro.baselines.sun` -- the centralized primal-dual algorithm with
  reverse-delete described for [Sun21] in Section 1.3, which is inherently
  sequential (that is the point the paper makes).

Re-implementation note: the distributed baselines are faithful to the round
and approximation behaviour the Dory--Ghaffari--Ilchi paper attributes to
them, but they are reconstructions from those descriptions and from standard
textbook techniques, not line-by-line ports of the original papers' code
(none of which is public).
"""

from repro.baselines.exact import exact_minimum_dominating_set, exact_minimum_weight_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.lp import (
    fractional_dominating_set_lp,
    fractional_vertex_cover_lp,
    lp_dominating_set_lower_bound,
)
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.lenzen_wattenhofer import (
    LWDeterministicAlgorithm,
    LWRandomizedAlgorithm,
)
from repro.baselines.msw import MSWStyleAlgorithm
from repro.baselines.sun import sun_reverse_delete_dominating_set

__all__ = [
    "LWDeterministicAlgorithm",
    "LWRandomizedAlgorithm",
    "MSWStyleAlgorithm",
    "bansal_umboh_dominating_set",
    "exact_minimum_dominating_set",
    "exact_minimum_weight_dominating_set",
    "fractional_dominating_set_lp",
    "fractional_vertex_cover_lp",
    "greedy_dominating_set",
    "kmw_lp_rounding_dominating_set",
    "lp_dominating_set_lower_bound",
    "sun_reverse_delete_dominating_set",
]
