"""KMW-style LP rounding: the ``O(log Delta)`` baseline for general graphs.

Kuhn, Moscibroda and Wattenhofer obtain an expected ``O(log Delta)``
approximation for (fractional) dominating set by solving the covering LP
approximately and then applying randomized rounding: every node joins the set
with probability ``min(1, x_v * ln(Delta+1))``, and any node left undominated
afterwards adds a cheapest member of its closed neighborhood.  This module
reproduces that rounding; the LP itself is solved centrally (scipy), with the
distributed solver's ``O(k^2)`` / ``O(log^2 Delta)`` round complexity reported
as a nominal figure so the comparison benchmarks can place the baseline on
the rounds axis.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

import networkx as nx

from repro.baselines.lp import fractional_dominating_set_lp
from repro.graphs.validation import closed_neighborhood, undominated_nodes
from repro.graphs.weights import node_weight

__all__ = ["KMWRoundingResult", "kmw_lp_rounding_dominating_set"]


@dataclass
class KMWRoundingResult:
    """Rounded dominating set plus the nominal distributed round count."""

    dominating_set: Set[Hashable]
    weight: int
    lp_value: float
    sampled_nodes: int
    patched_nodes: int
    nominal_rounds: int


def kmw_lp_rounding_dominating_set(
    graph: nx.Graph,
    seed: int = 0,
    epsilon: float = 0.25,
    fractional: Optional[Dict[Hashable, float]] = None,
) -> KMWRoundingResult:
    """Randomized rounding of the dominating set LP (expected ``O(log Delta)``)."""
    rng = random.Random(seed)
    if fractional is None:
        fractional, lp_value = fractional_dominating_set_lp(graph)
    else:
        lp_value = sum(
            node_weight(graph, node) * value for node, value in fractional.items()
        )
    max_degree = max(dict(graph.degree()).values(), default=1)
    scale = math.log(max_degree + 2)
    sampled = {
        node
        for node, value in fractional.items()
        if rng.random() < min(1.0, value * scale)
    }
    leftover = undominated_nodes(graph, sampled)
    patches = set()
    for node in leftover:
        cheapest = min(
            closed_neighborhood(graph, node),
            key=lambda candidate: (node_weight(graph, candidate), repr(candidate)),
        )
        patches.add(cheapest)
    dominating = sampled | patches
    weight = sum(node_weight(graph, node) for node in dominating)
    nominal_rounds = max(1, int(math.ceil((math.log2(max_degree + 2) ** 2) / (epsilon ** 2))))
    return KMWRoundingResult(
        dominating_set=dominating,
        weight=int(weight),
        lp_value=float(lp_value),
        sampled_nodes=len(sampled),
        patched_nodes=len(patches),
        nominal_rounds=nominal_rounds,
    )
