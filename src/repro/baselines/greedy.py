"""The classic centralized greedy dominating set algorithm [Johnson 1974].

At every step the algorithm picks the node with the best ratio of weight to
number of newly dominated nodes.  For unit weights this is the textbook
``ln(Delta+1) + 1`` approximation the paper cites as the baseline for general
graphs; for weighted instances it is the weighted set cover greedy with the
same harmonic guarantee.  It serves two purposes in the reproduction: as a
quality yardstick for the distributed algorithms, and as the comparison point
showing that the paper's algorithms beat a logarithmic factor when the
arboricity is small but the degree is large.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Set, Tuple

import networkx as nx

from repro.graphs.validation import closed_neighborhood
from repro.graphs.weights import node_weight

__all__ = ["greedy_dominating_set"]


def greedy_dominating_set(graph: nx.Graph) -> Tuple[Set[Hashable], int]:
    """Return ``(dominating_set, total_weight)`` computed by the greedy rule.

    Implementation detail: a lazy priority queue keyed by
    ``weight / coverage`` with stale-entry re-checking, so the overall cost is
    ``O((n + m) log n)`` rather than quadratic.
    """
    dominated: Set[Hashable] = set()
    chosen: Set[Hashable] = set()
    total_weight = 0

    coverage = {node: graph.degree(node) + 1 for node in graph.nodes()}
    heap = [
        (node_weight(graph, node) / coverage[node], repr(node), node)
        for node in graph.nodes()
    ]
    heapq.heapify(heap)

    target = graph.number_of_nodes()
    while len(dominated) < target and heap:
        _, _, node = heapq.heappop(heap)
        if node in chosen:
            continue
        current_coverage = sum(
            1 for candidate in closed_neighborhood(graph, node) if candidate not in dominated
        )
        if current_coverage == 0:
            continue
        if current_coverage != coverage[node]:
            # Stale entry: re-insert with the up-to-date ratio.
            coverage[node] = current_coverage
            heapq.heappush(
                heap, (node_weight(graph, node) / current_coverage, repr(node), node)
            )
            continue
        chosen.add(node)
        total_weight += node_weight(graph, node)
        dominated.update(closed_neighborhood(graph, node))
    return chosen, total_weight
