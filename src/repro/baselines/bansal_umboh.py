"""Bansal--Umboh LP rounding: a ``(2*alpha+1)``-approximation [BU17, Dvorak'19].

The rounding is exactly the one the Dory--Ghaffari--Ilchi paper describes in
its related-work discussion: solve the dominating set LP, take every node
whose fractional value reaches the threshold ``1/(2*alpha+1)``, and add every
node still undominated after that.  The standard charging argument over an
``alpha``-out-degree orientation bounds the result by ``(2*alpha+1)`` times
the LP value.

In the distributed setting, the LP is solved approximately with the
Kuhn--Moscibroda--Wattenhofer solver, which is where the
``O(log^2 Delta / eps^4)`` round complexity quoted by the paper comes from.
Here the LP is solved centrally (scipy); the function reports that nominal
round complexity alongside the solution so comparison benchmarks can place
this baseline on the rounds axis without simulating the LP solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

import networkx as nx

from repro.baselines.lp import fractional_dominating_set_lp
from repro.graphs.validation import undominated_nodes
from repro.graphs.weights import node_weight

__all__ = ["BansalUmbohResult", "bansal_umboh_dominating_set"]


@dataclass
class BansalUmbohResult:
    """Outcome of the LP rounding together with its nominal distributed cost."""

    dominating_set: Set[Hashable]
    weight: int
    lp_value: float
    threshold_set_size: int
    patched_nodes: int
    nominal_rounds: int


def bansal_umboh_dominating_set(
    graph: nx.Graph,
    alpha: int,
    epsilon: float = 0.1,
    fractional: Optional[Dict[Hashable, float]] = None,
) -> BansalUmbohResult:
    """Round the dominating set LP into a ``(2*alpha+1)(1+eps)``-approximation.

    Parameters
    ----------
    graph:
        Input graph (weights respected).
    alpha:
        Arboricity upper bound used in the rounding threshold.
    epsilon:
        Only used for the nominal round complexity
        ``O(log^2(Delta)/eps^4)`` of the distributed LP solver.
    fractional:
        An optional pre-computed fractional solution (e.g. an approximate
        one); when omitted the exact LP optimum is used.
    """
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    if fractional is None:
        fractional, lp_value = fractional_dominating_set_lp(graph)
    else:
        lp_value = sum(
            node_weight(graph, node) * value for node, value in fractional.items()
        )
    threshold = 1.0 / (2 * alpha + 1)
    rounded = {node for node, value in fractional.items() if value >= threshold}
    threshold_size = len(rounded)
    leftover = undominated_nodes(graph, rounded)
    dominating = rounded | leftover
    weight = sum(node_weight(graph, node) for node in dominating)

    max_degree = max(dict(graph.degree()).values(), default=1)
    nominal_rounds = max(
        1, int(math.ceil((math.log2(max_degree + 2) ** 2) / (epsilon ** 4)))
    )
    return BansalUmbohResult(
        dominating_set=dominating,
        weight=int(weight),
        lp_value=float(lp_value),
        threshold_set_size=threshold_size,
        patched_nodes=len(leftover),
        nominal_rounds=nominal_rounds,
    )
