"""Distributed baselines in the spirit of Lenzen--Wattenhofer DISC'10.

The paper compares against two unweighted algorithms from [LW10]:

* a deterministic ``O(alpha * log Delta)``-approximation in ``O(log Delta)``
  rounds, and
* a randomized ``O(alpha^2)``-approximation in ``O(log n)`` rounds.

Neither original implementation is public, so this module provides
reconstructions that match the *interfaces the comparison needs* -- the round
complexities above and an approximation quality that degrades with
``alpha`` -- while following the standard techniques those results are built
on (parallel threshold greedy, and nomination-based random sampling).  The
docstrings of each class state precisely what is implemented; benchmark E8
treats them as "prior work" reference points, not as claims about the exact
constants of [LW10].
"""

from __future__ import annotations

import math
from typing import Dict, Hashable

from repro.congest.algorithm import Outbox, SynchronousAlgorithm
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext

__all__ = ["LWDeterministicAlgorithm", "LWRandomizedAlgorithm"]


class LWDeterministicAlgorithm(SynchronousAlgorithm):
    """Parallel threshold greedy: deterministic, ``O(log Delta)`` rounds.

    Phases run with geometrically decreasing coverage thresholds
    ``2^i, i = ceil(log2(Delta+1)) .. 0``.  In a phase, every node whose
    closed neighborhood still contains at least ``2^i`` uncovered nodes joins
    the dominating set; joining nodes announce themselves and coverage is
    updated.  Each phase costs two rounds (an "uncovered" report round and a
    "join" round).  On graphs of arboricity ``alpha`` the standard charging
    argument bounds the result by ``O(alpha * log Delta) * OPT``, which is
    the guarantee the paper attributes to the deterministic algorithm of
    [LW10].  Unweighted only.
    """

    name = "lenzen-wattenhofer-deterministic"

    def setup(self, node: NodeContext) -> None:
        max_degree = node.config.get("max_degree", 0)
        node.state.update(
            {
                "in_ds": False,
                "covered": False,
                "phase": int(math.ceil(math.log2(max_degree + 2))),
                "uncovered_neighbors": set(node.neighbors),
            }
        )

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        if round_index % 2 == 0:
            # Report round: absorb joins from the previous phase, then report
            # coverage status so neighbors can count their uncovered span.
            for message in inbox.values():
                if message.get("joined"):
                    state["covered"] = True
            if state["phase"] < 1:
                # Cleanup: running the threshold-1 phase would add every node
                # adjacent to an uncovered node; letting the uncovered nodes
                # join themselves instead is never worse.
                if not state["covered"]:
                    state["in_ds"] = True
                    state["covered"] = True
                node.finish()
                return None
            return Broadcast({"uncovered": not state["covered"]})
        # Join round: count uncovered nodes in the closed neighborhood.
        span = (0 if state["covered"] else 1) + sum(
            1 for message in inbox.values() if message.get("uncovered")
        )
        threshold = 2 ** state["phase"]
        state["phase"] -= 1
        if not state["in_ds"] and span >= threshold:
            state["in_ds"] = True
            state["covered"] = True
            return Broadcast({"joined": True})
        return None

    def output(self, node: NodeContext) -> Dict[str, object]:
        return {"in_ds": bool(node.state["in_ds"])}

    def max_rounds(self, network) -> int:
        return 2 * (int(math.ceil(math.log2(network.max_degree + 2))) + 3)


class LWRandomizedAlgorithm(SynchronousAlgorithm):
    """Nomination-based randomized algorithm: ``O(log n)`` rounds.

    Each phase takes three rounds: uncovered nodes report themselves, every
    node reports its uncovered span, and every uncovered node then nominates
    the maximum-span member of its closed neighborhood (ties towards smaller
    identifiers); a nominated node joins the dominating set with probability
    one half, and in the final phase every still-uncovered node joins itself.
    This follows the nomination/sampling structure underlying the randomized
    ``O(alpha^2)`` algorithm of [LW10] and matches its ``O(log n)`` round
    complexity; it is used as a prior-work quality reference, not as a
    reproduction of the original constants.  Unweighted only.
    """

    name = "lenzen-wattenhofer-randomized"

    def setup(self, node: NodeContext) -> None:
        n = node.config["n"]
        node.state.update(
            {
                "in_ds": False,
                "covered": False,
                "phases_left": int(math.ceil(math.log2(max(2, n)))) + 2,
                "neighbor_uncovered": {},
            }
        )

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        step = round_index % 4
        if step == 0:
            # Absorb joins announced at the end of the previous phase.
            for message in inbox.values():
                if message.get("joined"):
                    state["covered"] = True
            if state["phases_left"] <= 0:
                if not state["covered"]:
                    state["in_ds"] = True
                    state["covered"] = True
                node.finish()
                return None
            state["phases_left"] -= 1
            return Broadcast({"uncovered": not state["covered"]})
        if step == 1:
            state["neighbor_uncovered"] = {
                neighbor: bool(message.get("uncovered")) for neighbor, message in inbox.items()
            }
            span = (0 if state["covered"] else 1) + sum(
                1 for uncovered in state["neighbor_uncovered"].values() if uncovered
            )
            state["span"] = span
            return Broadcast({"span": span})
        if step == 2:
            # Uncovered nodes nominate the maximum-span member of N+(v).
            spans = {neighbor: int(message.get("span", 0)) for neighbor, message in inbox.items()}
            spans[node.node_id] = state.get("span", 0)
            if not state["covered"]:
                nominee = max(spans, key=lambda candidate: (spans[candidate], repr(candidate)))
                if nominee == node.node_id:
                    state["pending_self_nomination"] = True
                else:
                    return {nominee: {"nominate": True}}
            return None
        # step == 3: nominated nodes join with probability 1/2 and announce.
        nominated = state.pop("pending_self_nomination", False) or any(
            message.get("nominate") for message in inbox.values()
        )
        if nominated and not state["in_ds"] and node.rng.random() < 0.5:
            state["in_ds"] = True
            state["covered"] = True
            return Broadcast({"joined": True})
        return None

    def output(self, node: NodeContext) -> Dict[str, object]:
        return {"in_ds": bool(node.state["in_ds"])}

    def max_rounds(self, network) -> int:
        return 4 * (int(math.ceil(math.log2(max(2, network.n)))) + 4)
