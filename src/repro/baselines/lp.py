"""Linear programming relaxations of dominating set and vertex cover.

Two relaxations are used throughout the reproduction:

* the **fractional dominating set** LP,
  ``min sum_v w_v x_v  s.t.  sum_{u in N+(v)} x_u >= 1 for every v,  x >= 0``,
  whose optimum lower-bounds the weight of every dominating set; the
  approximation ratios reported by the benchmark harness on graphs too large
  for the exact solver are measured against this bound (and are therefore
  upper bounds on the true ratios); and

* the **fractional vertex cover** LP,
  ``min sum_v x_v  s.t.  x_u + x_v >= 1 for every edge``,
  which is the problem the Theorem 1.4 reduction converts dominating sets
  into.

Both are solved with scipy's HiGHS backend.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx
import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.graphs.weights import node_weight

__all__ = [
    "fractional_dominating_set_lp",
    "fractional_vertex_cover_lp",
    "lp_dominating_set_lower_bound",
]


def fractional_dominating_set_lp(graph: nx.Graph) -> Tuple[Dict[Hashable, float], float]:
    """Solve the fractional weighted dominating set LP.

    Returns ``(solution, value)`` where ``solution`` maps each node to its
    fractional value and ``value`` is the LP optimum.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}, 0.0
    index = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)
    weights = np.array([node_weight(graph, node) for node in nodes], dtype=float)

    # Constraint: for every v, -sum_{u in N+(v)} x_u <= -1.
    matrix = lil_matrix((n, n))
    for node in nodes:
        row = index[node]
        matrix[row, index[node]] = -1.0
        for neighbor in graph.neighbors(node):
            matrix[row, index[neighbor]] = -1.0
    result = linprog(
        c=weights,
        A_ub=matrix.tocsr(),
        b_ub=-np.ones(n),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS handles these LPs reliably
        raise RuntimeError(f"dominating set LP failed: {result.message}")
    solution = {node: float(result.x[index[node]]) for node in nodes}
    return solution, float(result.fun)


def lp_dominating_set_lower_bound(graph: nx.Graph) -> float:
    """Return the LP lower bound on the minimum weight dominating set."""
    _, value = fractional_dominating_set_lp(graph)
    return value


def fractional_vertex_cover_lp(graph: nx.Graph) -> Tuple[Dict[Hashable, float], float]:
    """Solve the (unweighted) fractional vertex cover LP.

    Used by the lower bound experiments: the Theorem 1.4 reduction turns a
    dominating set of the constructed graph ``H`` into a fractional vertex
    cover of the base graph ``G``, and this LP provides the reference optimum
    ``OPT_MFVC`` the reduction is measured against.
    """
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    if not nodes:
        return {}, 0.0
    index = {node: position for position, node in enumerate(nodes)}
    n, m = len(nodes), len(edges)
    if m == 0:
        return {node: 0.0 for node in nodes}, 0.0
    matrix = lil_matrix((m, n))
    for row, (u, v) in enumerate(edges):
        matrix[row, index[u]] = -1.0
        matrix[row, index[v]] = -1.0
    result = linprog(
        c=np.ones(n),
        A_ub=matrix.tocsr(),
        b_ub=-np.ones(m),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not result.success:  # pragma: no cover
        raise RuntimeError(f"vertex cover LP failed: {result.message}")
    solution = {node: float(result.x[index[node]]) for node in nodes}
    return solution, float(result.fun)
