"""Sun'21-style centralized primal-dual with reverse delete.

Section 1.3 of the paper describes the independent work of Sun (WAOA'21): a
centralized ``(alpha+1)``-approximation for *weighted* MDS that also uses the
primal-dual method, but finishes with a reverse-delete pass -- the nodes that
were added to the dominating set are revisited in reverse order and removed
whenever the set stays dominating -- and the paper stresses that this step is
what makes the algorithm inherently sequential and hard to distribute.

This module implements exactly that structure as a centralized baseline:

1. **Dual ascent.**  While undominated nodes remain, raise the packing values
   of all undominated nodes uniformly until some node's closed-neighborhood
   constraint becomes tight; add every newly tight node to the set.
2. **Reverse delete.**  Walk the added nodes in reverse order of addition and
   drop each one whose removal keeps the set dominating.

It is used in the comparison benchmarks as the "centralized quality target"
for the weighted problem, and in the tests as another independent oracle that
produces valid dominating sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set

import networkx as nx

from repro.graphs.validation import closed_neighborhood, is_dominating_set
from repro.graphs.weights import node_weight

__all__ = ["SunResult", "sun_reverse_delete_dominating_set"]


@dataclass
class SunResult:
    """Dominating set, its weight, and what reverse-delete removed."""

    dominating_set: Set[Hashable]
    weight: int
    before_reverse_delete: int
    removed_by_reverse_delete: int


def sun_reverse_delete_dominating_set(graph: nx.Graph) -> SunResult:
    """Run dual ascent followed by reverse delete; see the module docstring."""
    nodes = list(graph.nodes())
    weights = {node: node_weight(graph, node) for node in nodes}
    closed = {node: closed_neighborhood(graph, node) for node in nodes}

    packing: Dict[Hashable, float] = {node: 0.0 for node in nodes}
    slack: Dict[Hashable, float] = {
        node: float(weights[node]) for node in nodes
    }  # w_u - sum_{v in N+(u)} packing[v]
    dominated: Set[Hashable] = set()
    added_order: List[Hashable] = []
    in_set: Set[Hashable] = set()

    while len(dominated) < len(nodes):
        undominated = [node for node in nodes if node not in dominated]
        # How much can every undominated packing value rise before some
        # constraint becomes tight?  Node u's slack decreases by the number of
        # undominated nodes in N+(u) per unit of uniform increase.
        rates = {}
        for node in nodes:
            if node in in_set:
                continue
            rate = sum(1 for member in closed[node] if member not in dominated)
            if rate > 0:
                rates[node] = rate
        step = min(slack[node] / rate for node, rate in rates.items())
        step = max(step, 0.0)
        for node in undominated:
            packing[node] += step
        newly_tight = []
        for node, rate in rates.items():
            slack[node] -= step * rate
            if slack[node] <= 1e-9:
                newly_tight.append(node)
        if not newly_tight:  # pragma: no cover - numerical safety net
            newly_tight = [min(rates, key=lambda node: slack[node] / rates[node])]
        for node in sorted(newly_tight, key=repr):
            if node in in_set:
                continue
            in_set.add(node)
            added_order.append(node)
            dominated.update(closed[node])

    before = len(in_set)
    # Reverse delete: drop nodes (latest first) whose removal keeps domination.
    for node in reversed(added_order):
        candidate = in_set - {node}
        if is_dominating_set(graph, candidate):
            in_set = candidate
    weight = sum(weights[node] for node in in_set)
    return SunResult(
        dominating_set=in_set,
        weight=int(weight),
        before_reverse_delete=before,
        removed_by_reverse_delete=before - len(in_set),
    )
