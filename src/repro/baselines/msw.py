"""A combinatorial ``O(alpha)``-flavoured distributed baseline.

The paper compares against Morgan--Solomon--Wein (DISC'21), a randomized
combinatorial ``O(alpha)``-approximation that runs in ``O(alpha * log n)``
CONGEST rounds.  The MSW pseudocode is not reproduced here; instead this
module provides a *documented substitution*: a deterministic combinatorial
algorithm whose quality is ``O(alpha)``-flavoured and that relies on the same
structural fact MSW (and this paper) exploit -- once every node's uncovered
span drops below ``2*alpha + 1``, adding all remaining uncovered nodes costs
at most ``(2*alpha+1) * OPT``.

Algorithm: run the parallel threshold greedy of
:class:`repro.baselines.lenzen_wattenhofer.LWDeterministicAlgorithm`, but
stop the phases early, at threshold ``2*alpha + 1``, and let every node still
uncovered at that point join the dominating set itself.  The greedy prefix
handles the high-span region (contributing an ``O(alpha * log(Delta/alpha))``
term in the worst case, typically much less), the self-join suffix is the
``(2*alpha+1)``-bounded part, and the whole thing takes
``O(log(Delta/alpha))`` rounds.  Unweighted only.

Benchmark E8 labels this baseline ``combinatorial-alpha-baseline`` and uses
it as the stand-in for the combinatorial prior work; EXPERIMENTS.md records
the substitution.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable

from repro.congest.algorithm import Outbox, SynchronousAlgorithm
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext

__all__ = ["MSWStyleAlgorithm"]


class MSWStyleAlgorithm(SynchronousAlgorithm):
    """Threshold greedy stopped at ``2*alpha+1`` plus self-join of the rest."""

    name = "combinatorial-alpha-baseline"

    def setup(self, node: NodeContext) -> None:
        max_degree = node.config.get("max_degree", 0)
        alpha = node.config.get("alpha")
        if alpha is None:
            raise ValueError("this baseline assumes alpha is global knowledge")
        node.state.update(
            {
                "in_ds": False,
                "covered": False,
                "phase": int(math.ceil(math.log2(max_degree + 2))),
                "stop_threshold": 2 * alpha + 1,
            }
        )

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        if round_index % 2 == 0:
            for message in inbox.values():
                if message.get("joined"):
                    state["covered"] = True
            if 2 ** max(state["phase"], 0) < state["stop_threshold"] or state["phase"] < 0:
                # Cleanup step: every node still uncovered dominates itself.
                if not state["covered"]:
                    state["in_ds"] = True
                    state["covered"] = True
                node.finish()
                return None
            return Broadcast({"uncovered": not state["covered"]})
        span = (0 if state["covered"] else 1) + sum(
            1 for message in inbox.values() if message.get("uncovered")
        )
        threshold = 2 ** state["phase"]
        state["phase"] -= 1
        if not state["in_ds"] and span >= threshold:
            state["in_ds"] = True
            state["covered"] = True
            return Broadcast({"joined": True})
        return None

    def output(self, node: NodeContext) -> Dict[str, object]:
        return {"in_ds": bool(node.state["in_ds"])}

    def max_rounds(self, network) -> int:
        return 2 * (int(math.ceil(math.log2(network.max_degree + 2))) + 3)
