"""Reproduction of "Near-Optimal Distributed Dominating Set in Bounded
Arboricity Graphs" (Dory, Ghaffari, Ilchi; PODC 2022).

The package is organised as follows:

* :mod:`repro.graphs`     -- graph substrate: arboricity, orientations, generators.
* :mod:`repro.congest`    -- synchronous CONGEST/LOCAL message-passing simulator.
* :mod:`repro.core`       -- the paper's algorithms (Theorems 1.1, 1.2, 1.3, 3.1,
  Remarks 4.4/4.5, Observation A.1) implemented as distributed algorithms.
* :mod:`repro.baselines`  -- every comparator the paper discusses (greedy,
  Lenzen--Wattenhofer, KMW, Bansal--Umboh, Morgan--Solomon--Wein, Sun, exact, LP).
* :mod:`repro.lowerbound` -- the Theorem 1.4 / Figure 1 lower-bound construction
  and the dominating-set -> fractional-vertex-cover reduction.
* :mod:`repro.analysis`   -- verification, OPT estimation and experiment harness.

Quickstart::

    from repro import solve_mds
    from repro.graphs import forest_union_graph

    graph = forest_union_graph(n=200, alpha=3, seed=1)
    result = solve_mds(graph, alpha=3, epsilon=0.2)
    assert result.is_valid
"""

from repro.core.api import (
    DominatingSetResult,
    solve_mds,
    solve_mds_forest,
    solve_mds_general,
    solve_mds_randomized,
    solve_mds_unknown_arboricity,
    solve_mds_unknown_degree,
    solve_weighted_mds,
)

__version__ = "1.0.0"

__all__ = [
    "DominatingSetResult",
    "solve_mds",
    "solve_mds_forest",
    "solve_mds_general",
    "solve_mds_randomized",
    "solve_mds_unknown_arboricity",
    "solve_mds_unknown_degree",
    "solve_weighted_mds",
    "__version__",
]
