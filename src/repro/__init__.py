"""Reproduction of "Near-Optimal Distributed Dominating Set in Bounded
Arboricity Graphs" (Dory, Ghaffari, Ilchi; PODC 2022).

The package is organised as follows:

* :mod:`repro.graphs`        -- graph substrate: arboricity, orientations, generators.
* :mod:`repro.congest`       -- synchronous CONGEST/LOCAL message-passing simulator.
* :mod:`repro.core`          -- the paper's algorithms (Theorems 1.1, 1.2, 1.3, 3.1,
  Remarks 4.4/4.5, Observation A.1) implemented as distributed algorithms.
* :mod:`repro.run`           -- the unified execution API: :class:`RunSpec`,
  :class:`Session`, :func:`execute`.
* :mod:`repro.faults`        -- adversarial network conditions (crashes, omission,
  latency, churn) applied inside the simulation engines.
* :mod:`repro.baselines`     -- every comparator the paper discusses (greedy,
  Lenzen--Wattenhofer, KMW, Bansal--Umboh, Morgan--Solomon--Wein, Sun, exact, LP).
* :mod:`repro.lowerbound`    -- the Theorem 1.4 / Figure 1 lower-bound construction
  and the dominating-set -> fractional-vertex-cover reduction.
* :mod:`repro.analysis`      -- verification, OPT estimation and experiment harness.
* :mod:`repro.orchestration` -- scenario registry, cached parallel sweeps, CLI.

Quickstart (one-shot)::

    import repro
    from repro.graphs import forest_union_graph

    graph = forest_union_graph(n=200, alpha=3, seed=1)
    result = repro.execute(repro.RunSpec(graph=graph, algorithm="deterministic",
                                         params={"epsilon": 0.2}, alpha=3))
    assert result.is_valid

Quickstart (compiled batch, fast engine, faults)::

    spec = repro.RunSpec(graph=graph, algorithm="randomized", params={"t": 2},
                         engine="batched", faults="lossy10")
    with repro.Session() as session:
        results = list(session.run_many(base=spec, seeds=range(8)))

The legacy per-algorithm ``solve_*`` helpers remain available (and
byte-identical), wrapping the API above; see :mod:`repro.core.api` for the
deprecation path.
"""

from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.core.api import (
    DominatingSetResult,
    solve_mds,
    solve_mds_forest,
    solve_mds_general,
    solve_mds_randomized,
    solve_mds_unknown_arboricity,
    solve_mds_unknown_degree,
    solve_weighted_mds,
)
from repro.faults import FAULT_MODELS, AdversarialEngine, FaultPlan, FaultSpec
from repro.run import RunSpec, Session, execute

__version__ = "1.1.0"

__all__ = [
    # unified execution API
    "RunSpec",
    "Session",
    "execute",
    "DominatingSetResult",
    # metrics
    "RunMetrics",
    "RoundMetrics",
    # fault injection entry points
    "FaultPlan",
    "FaultSpec",
    "FAULT_MODELS",
    "AdversarialEngine",
    # legacy helpers (deprecated wrappers over RunSpec/execute)
    "solve_mds",
    "solve_mds_forest",
    "solve_mds_general",
    "solve_mds_randomized",
    "solve_mds_unknown_arboricity",
    "solve_mds_unknown_degree",
    "solve_weighted_mds",
    "__version__",
]
