"""Communication network wrapping an input graph."""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

import networkx as nx

from repro.congest.node import NodeContext
from repro.graphs.weights import node_weight

__all__ = ["Network"]


class Network:
    """The communication network of the CONGEST model.

    The network is identical to the input graph (Section 2 of the paper):
    every graph node is a processor and every edge a bidirectional link.

    Parameters
    ----------
    graph:
        The input graph.  Node weights are read from the ``"weight"``
        attribute (defaulting to 1).
    alpha:
        The arboricity upper bound that is assumed to be global knowledge.
        ``None`` models the "unknown alpha" setting of Remark 4.5.
    config:
        Additional globally known parameters (e.g. ``epsilon``); merged into
        each node's read-only ``config`` mapping together with ``n``,
        ``max_degree`` and ``alpha``.
    seed:
        Seed from which every node derives its private random stream.
    knows_max_degree:
        Set to ``False`` to model the "unknown Delta" setting of Remark 4.4;
        the ``max_degree`` entry is then omitted from the node config.
    """

    def __init__(
        self,
        graph: nx.Graph,
        alpha: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        knows_max_degree: bool = True,
    ):
        if graph.is_directed() or graph.is_multigraph():
            raise TypeError("the CONGEST network requires a simple undirected graph")
        self.graph = graph
        self.seed = seed
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        degrees = dict(graph.degree())
        self.max_degree = max(degrees.values(), default=0)
        self.alpha = alpha

        shared: Dict[str, Any] = {"n": self.n}
        if knows_max_degree:
            shared["max_degree"] = self.max_degree
        if alpha is not None:
            shared["alpha"] = alpha
        if config:
            shared.update(config)
        self.config: Mapping[str, Any] = MappingProxyType(dict(shared))

        self.nodes: Dict[Hashable, NodeContext] = {}
        for node in graph.nodes():
            self.nodes[node] = NodeContext(
                node_id=node,
                weight=node_weight(graph, node),
                neighbors=tuple(graph.neighbors(node)),
                config=self.config,
                seed=seed,
            )

    def node_ids(self) -> Iterable[Hashable]:
        """Iterate over the node identifiers in a deterministic order."""
        return self.graph.nodes()

    def context(self, node_id: Hashable) -> NodeContext:
        """Return the :class:`NodeContext` of ``node_id``."""
        return self.nodes[node_id]

    def are_neighbors(self, u: Hashable, v: Hashable) -> bool:
        """Return ``True`` iff ``u`` and ``v`` share an edge."""
        return self.graph.has_edge(u, v)

    def reset(self) -> None:
        """Clear all per-node state so another algorithm can run on the network."""
        for node in self.nodes.values():
            node.state.clear()
            node._finished = False

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(n={self.n}, m={self.m}, max_degree={self.max_degree}, alpha={self.alpha})"
