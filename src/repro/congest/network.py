"""Communication network wrapping an input graph."""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.congest.node import NodeContext
from repro.graphs.weights import node_weight

__all__ = ["Network", "NetworkLayout", "shared_config"]


def shared_config(
    n: int,
    max_degree: int,
    alpha: Optional[int],
    config: Optional[Mapping[str, Any]],
    knows_max_degree: bool,
) -> Mapping[str, Any]:
    """Assemble the read-only globally-known config mapping.

    The one definition of the n / ``max_degree`` / ``alpha`` / extras
    precedence, shared by :class:`Network` construction, :meth:`Network.rebind`
    and the network-free CSR kernel path (:meth:`repro.run.session.Session`),
    so the three can never drift apart.
    """
    shared: Dict[str, Any] = {"n": n}
    if knows_max_degree:
        shared["max_degree"] = max_degree
    if alpha is not None:
        shared["alpha"] = alpha
    if config:
        shared.update(config)
    return MappingProxyType(shared)


class NetworkLayout:
    """Flattened, engine-agnostic adjacency state of one :class:`Network`.

    Everything in here is a pure function of the network's (static) topology:
    the global node order, index lookups, per-node neighbor index lists, the
    neighbor lists re-sorted by global node order (the batched engine's inbox
    insertion order), and -- lazily, because they need NumPy -- the degree
    vector and a CSR over directed edges (used by the fault runtime).

    Engines used to rebuild all of this at the top of every execution; the
    layout is computed once per :class:`Network` (see :meth:`Network.layout`)
    and shared across runs, which is what makes a compiled
    :class:`repro.run.Session` cheap to re-execute.  The payload-bits memo
    lives here too: payload size estimates depend only on ``n``, so they are
    safely reusable across executions on the same network.
    """

    __slots__ = (
        "node_order",
        "index_of",
        "contexts",
        "neighbor_indices",
        "sorted_neighbor_ids",
        "bits_memo",
        "kernel_grid",
        "_degrees",
        "_csr",
    )

    def __init__(self, network: "Network"):
        self.node_order: List[Hashable] = list(network.node_ids())
        self.index_of: Dict[Hashable, int] = {
            node_id: index for index, node_id in enumerate(self.node_order)
        }
        self.contexts: List[NodeContext] = [
            network.context(node_id) for node_id in self.node_order
        ]
        index_of = self.index_of
        #: Neighbor indices in each context's own neighbor order (the order
        #: the reference engine's per-delivery loops iterate in).
        self.neighbor_indices: List[List[int]] = [
            [index_of[u] for u in context.neighbors] for context in self.contexts
        ]
        #: Neighbor ids sorted by global node order: the reference engine
        #: inserts deliveries while looping over senders in node order, so a
        #: receiver scanning its neighbors in this order rebuilds the
        #: identical inbox key sequence.
        node_order = self.node_order
        self.sorted_neighbor_ids: List[List[Hashable]] = [
            [node_order[j] for j in sorted(indices)] for indices in self.neighbor_indices
        ]
        #: Memoized payload-bit estimates (see BatchedEngine._payload_bits);
        #: keyed by payload content+types, valid for the lifetime of the
        #: network because the estimates depend only on ``n``.
        self.bits_memo: Dict[tuple, int] = {}
        #: Cached :class:`repro.congest.kernels.grid.KernelGrid` (set by
        #: ``grid_from_network`` on first kernel-engine execution).
        self.kernel_grid = None
        self._degrees = None
        self._csr = None

    @property
    def degrees(self):
        """Per-node degree vector as an ``int64`` NumPy array (lazy)."""
        if self._degrees is None:
            import numpy as np

            self._degrees = np.fromiter(
                (len(context.neighbors) for context in self.contexts),
                dtype=np.int64,
                count=len(self.contexts),
            )
        return self._degrees

    def csr(self) -> Tuple[Any, Any, Dict[Tuple[int, int], int]]:
        """CSR over directed edges, neighbor lists sorted by global order.

        Returns ``(indptr, indices, edge_pos)`` where ``edge_pos`` maps a
        directed ``(sender index, receiver index)`` pair to its position in
        ``indices``.  Built lazily (NumPy) and cached; the fault runtime
        compiles its per-edge arrays against this layout.
        """
        if self._csr is None:
            import numpy as np

            n = len(self.node_order)
            indptr = np.zeros(n + 1, dtype=np.int64)
            indices_list: List[int] = []
            edge_pos: Dict[Tuple[int, int], int] = {}
            for i, neighbor_indices in enumerate(self.neighbor_indices):
                for j in sorted(neighbor_indices):
                    edge_pos[(i, j)] = len(indices_list)
                    indices_list.append(j)
                indptr[i + 1] = len(indices_list)
            self._csr = (indptr, np.asarray(indices_list, dtype=np.int64), edge_pos)
        return self._csr


class Network:
    """The communication network of the CONGEST model.

    The network is identical to the input graph (Section 2 of the paper):
    every graph node is a processor and every edge a bidirectional link.

    Parameters
    ----------
    graph:
        The input graph.  Node weights are read from the ``"weight"``
        attribute (defaulting to 1).
    alpha:
        The arboricity upper bound that is assumed to be global knowledge.
        ``None`` models the "unknown alpha" setting of Remark 4.5.
    config:
        Additional globally known parameters (e.g. ``epsilon``); merged into
        each node's read-only ``config`` mapping together with ``n``,
        ``max_degree`` and ``alpha``.
    seed:
        Seed from which every node derives its private random stream.
    knows_max_degree:
        Set to ``False`` to model the "unknown Delta" setting of Remark 4.4;
        the ``max_degree`` entry is then omitted from the node config.
    """

    def __init__(
        self,
        graph: nx.Graph,
        alpha: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        knows_max_degree: bool = True,
    ):
        if graph.is_directed() or graph.is_multigraph():
            raise TypeError("the CONGEST network requires a simple undirected graph")
        self.graph = graph
        self.seed = seed
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        degrees = dict(graph.degree())
        self.max_degree = max(degrees.values(), default=0)
        self.alpha = alpha

        self.config: Mapping[str, Any] = shared_config(
            self.n, self.max_degree, alpha, config, knows_max_degree
        )

        self.nodes: Dict[Hashable, NodeContext] = {}
        for node in graph.nodes():
            self.nodes[node] = NodeContext(
                node_id=node,
                weight=node_weight(graph, node),
                neighbors=tuple(graph.neighbors(node)),
                config=self.config,
                seed=seed,
            )
        self._layout: Optional[NetworkLayout] = None

    def layout(self) -> NetworkLayout:
        """The flattened adjacency layout, computed once and cached.

        The topology of a network is immutable (contexts capture their
        neighbor tuples at construction), so the layout never needs
        invalidation; engines and the fault runtime share it across runs.
        """
        if self._layout is None:
            self._layout = NetworkLayout(self)
        return self._layout

    def rebind(
        self,
        alpha: Optional[int],
        config: Optional[Mapping[str, Any]] = None,
        knows_max_degree: bool = True,
    ) -> None:
        """Swap the globally known parameters without rebuilding the network.

        Rebuilds the shared read-only config mapping exactly as the
        constructor would for the same arguments and points every node
        context at it.  Used by :class:`repro.run.Session` to reuse one
        compiled network across runs that differ in ``alpha`` /
        ``knows_max_degree`` / extra config entries.
        """
        self.alpha = alpha
        self.config = shared_config(
            self.n, self.max_degree, alpha, config, knows_max_degree
        )
        for node in self.nodes.values():
            node.config = self.config

    def node_ids(self) -> Iterable[Hashable]:
        """Iterate over the node identifiers in a deterministic order."""
        return self.graph.nodes()

    def context(self, node_id: Hashable) -> NodeContext:
        """Return the :class:`NodeContext` of ``node_id``."""
        return self.nodes[node_id]

    def are_neighbors(self, u: Hashable, v: Hashable) -> bool:
        """Return ``True`` iff ``u`` and ``v`` share an edge."""
        return self.graph.has_edge(u, v)

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear all per-node state so another algorithm can run on the network.

        With ``seed`` given, additionally rewind every node's private random
        stream to its start for that seed, making the network
        indistinguishable from a freshly constructed ``Network(graph,
        seed=seed, ...)``.  Without it the current streams are kept (the
        historical behavior, relied on by callers that reset between phases
        of one logical execution).
        """
        if seed is not None:
            self.seed = seed
        for node in self.nodes.values():
            node.state.clear()
            node._finished = False
            if seed is not None:
                node.reseed(seed)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(n={self.n}, m={self.m}, max_degree={self.max_degree}, alpha={self.alpha})"
