"""Metrics collected by the simulator: rounds, messages, bits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["RoundMetrics", "RunMetrics"]


@dataclass
class RoundMetrics:
    """Traffic statistics for a single synchronous round."""

    round_index: int
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    active_nodes: int = 0


@dataclass
class RunMetrics:
    """Aggregate statistics for one algorithm execution.

    Attributes
    ----------
    rounds:
        Number of communication rounds executed (the quantity the paper's
        theorems bound).
    total_messages / total_bits:
        Message and bit volume across the whole run.
    max_message_bits:
        The largest single message observed; under CONGEST this stays within
        the bandwidth budget.
    bandwidth_budget_bits:
        The per-message budget that was enforced (0 means unenforced/LOCAL).
    per_round:
        The individual :class:`RoundMetrics` records.
    """

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_budget_bits: int = 0
    per_round: List[RoundMetrics] = field(default_factory=list)

    def record(self, round_metrics: RoundMetrics) -> None:
        """Fold one round's statistics into the aggregate."""
        self.rounds += 1
        self.total_messages += round_metrics.messages
        self.total_bits += round_metrics.bits
        self.max_message_bits = max(self.max_message_bits, round_metrics.max_message_bits)
        self.per_round.append(round_metrics)

    @property
    def average_messages_per_round(self) -> float:
        return self.total_messages / self.rounds if self.rounds else 0.0

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"rounds={self.rounds} messages={self.total_messages} "
            f"bits={self.total_bits} max_message_bits={self.max_message_bits} "
            f"budget={self.bandwidth_budget_bits or 'LOCAL'}"
        )
