"""Metrics collected by the simulator: rounds, messages, bits, faults.

The fault-related fields (``dropped_messages``, ``delayed_messages``,
``crashed_nodes``, ``live_edges``, ``stalled_nodes``, ``faulty_nodes``) stay
at their zero defaults on fault-free runs -- including runs through an
*empty* :class:`repro.faults.FaultPlan`, which the test-suite holds
byte-identical to plain engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["RoundMetrics", "RunMetrics"]


@dataclass
class RoundMetrics:
    """Traffic statistics for a single synchronous round.

    ``messages``/``bits`` count messages that actually transited a link
    (including ones still in flight due to link latency); ``dropped_messages``
    counts send attempts lost to dead links, random omission, or a receiver
    that was crashed at arrival time.  ``live_edges`` is the size of the
    communication topology this round (``None`` on fault-free runs, where the
    topology is the static input graph).
    """

    round_index: int
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    active_nodes: int = 0
    dropped_messages: int = 0
    delayed_messages: int = 0
    crashed_nodes: int = 0
    live_edges: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON-ready form of one round's statistics.

        This is the per-round shape shared by traces
        (:mod:`repro.obs.trace`) and :meth:`RunMetrics.to_dict`; every field
        is a plain int (or ``None``), so the dict round-trips through JSON
        exactly and is byte-comparable across engines.
        """
        return {
            "round_index": self.round_index,
            "messages": self.messages,
            "bits": self.bits,
            "max_message_bits": self.max_message_bits,
            "active_nodes": self.active_nodes,
            "dropped_messages": self.dropped_messages,
            "delayed_messages": self.delayed_messages,
            "crashed_nodes": self.crashed_nodes,
            "live_edges": self.live_edges,
        }


@dataclass
class RunMetrics:
    """Aggregate statistics for one algorithm execution.

    Attributes
    ----------
    rounds:
        Number of communication rounds executed (the quantity the paper's
        theorems bound).
    total_messages / total_bits:
        Message and bit volume across the whole run.
    max_message_bits:
        The largest single message observed; under CONGEST this stays within
        the bandwidth budget.
    bandwidth_budget_bits:
        The per-message budget that was enforced (0 means unenforced/LOCAL).
    total_dropped_messages / total_delayed_messages:
        Fault-injection traffic losses and latency hits across the run
        (zero on fault-free runs; see :mod:`repro.faults`).
    stalled_nodes:
        Number of nodes still unfinished when an adversarial run was cut off
        at the round limit (``FaultPlan.on_round_limit == "stop"``).
    faulty_nodes:
        Sorted tuple of node ids the fault plan ever crashes.
    per_round:
        The individual :class:`RoundMetrics` records.
    engine_used:
        The name of the engine that actually executed the round loop
        (``"reference"``, ``"batched"``, ``"kernel"``), recorded so a
        kernel run that silently fell back to the batched engine can be
        told apart from a true kernel run.  ``None`` on metrics produced
        before the field existed.  Excluded from :func:`summary` and
        normalised away by cross-engine byte comparators
        (:func:`repro.run.result.result_bytes`).
    """

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_budget_bits: int = 0
    per_round: List[RoundMetrics] = field(default_factory=list)
    total_dropped_messages: int = 0
    total_delayed_messages: int = 0
    stalled_nodes: int = 0
    faulty_nodes: Tuple[Hashable, ...] = ()
    engine_used: Optional[str] = None

    def record(self, round_metrics: RoundMetrics) -> None:
        """Fold one round's statistics into the aggregate."""
        self.rounds += 1
        self.total_messages += round_metrics.messages
        self.total_bits += round_metrics.bits
        self.max_message_bits = max(self.max_message_bits, round_metrics.max_message_bits)
        self.total_dropped_messages += round_metrics.dropped_messages
        self.total_delayed_messages += round_metrics.delayed_messages
        self.per_round.append(round_metrics)

    @property
    def average_messages_per_round(self) -> float:
        return self.total_messages / self.rounds if self.rounds else 0.0

    def to_dict(self, include_rounds: bool = False) -> Dict[str, object]:
        """The canonical JSON-ready serialization of a run's metrics.

        One shape shared by every consumer that ships metrics off-process:
        the trace emitter (:mod:`repro.obs.trace`), the serve response
        summary (:func:`repro.serve.service.summarize_result`), and any
        report that wants machine-readable metrics -- so the three can never
        drift into ad-hoc variants.  ``faulty_nodes`` is rendered as a
        sorted-``repr`` list (node ids are arbitrary hashables);
        ``include_rounds=True`` appends the per-round records under
        ``"per_round"`` (:meth:`RoundMetrics.to_dict`).
        """
        payload: Dict[str, object] = {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "bandwidth_budget_bits": self.bandwidth_budget_bits,
            "total_dropped_messages": self.total_dropped_messages,
            "total_delayed_messages": self.total_delayed_messages,
            "stalled_nodes": self.stalled_nodes,
            "faulty_nodes": sorted(map(repr, self.faulty_nodes)),
            "engine_used": self.engine_used,
        }
        if include_rounds:
            payload["per_round"] = [entry.to_dict() for entry in self.per_round]
        return payload

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        line = (
            f"rounds={self.rounds} messages={self.total_messages} "
            f"bits={self.total_bits} max_message_bits={self.max_message_bits} "
            f"budget={self.bandwidth_budget_bits or 'LOCAL'}"
        )
        if self.total_dropped_messages or self.total_delayed_messages:
            line += (
                f" dropped={self.total_dropped_messages}"
                f" delayed={self.total_delayed_messages}"
            )
        if self.faulty_nodes:
            line += f" faulty_nodes={len(self.faulty_nodes)}"
        if self.stalled_nodes:
            line += f" stalled={self.stalled_nodes}"
        return line
