"""Abstract base class for synchronous distributed algorithms."""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, Mapping, Optional, Union

from repro.congest.message import Broadcast, Payload
from repro.congest.node import NodeContext

__all__ = ["SynchronousAlgorithm", "Outbox"]

#: What a node may return from :meth:`SynchronousAlgorithm.round`:
#: ``None`` (silence), a :class:`Broadcast`, or an explicit per-neighbor map.
Outbox = Union[None, Broadcast, Mapping[Hashable, Payload]]


class SynchronousAlgorithm(abc.ABC):
    """A distributed algorithm in the synchronous message-passing model.

    The simulator drives the algorithm as follows.  First ``setup`` is called
    once per node.  Then, in every round, ``round(node, index, inbox)`` is
    called for every non-finished node, where ``inbox`` maps neighbor ids to
    the payloads received from them this round (messages produced in round
    ``i`` are delivered at the start of round ``i + 1`` -- the usual
    "compute, send, receive" convention folded so that the inbox passed to
    round ``i`` contains exactly the messages produced in round ``i - 1``).
    The return value is the node's outbox for this round.

    A node signals local termination by calling :meth:`NodeContext.finish`;
    once every node is finished the simulation stops and ``output`` is
    collected from each node.

    Subclasses should keep all per-node variables in ``node.state`` -- the
    algorithm object itself must stay stateless across nodes so that one
    instance can be reused for many runs.
    """

    #: Human-readable algorithm name used in metrics and reports.
    name: str = "synchronous-algorithm"

    #: If ``True`` the simulator enforces the CONGEST bandwidth budget; LOCAL
    #: algorithms (e.g. lower-bound simulations) may set this to ``False``.
    congest: bool = True

    def setup(self, node: NodeContext) -> None:
        """Initialise ``node.state``.  Called once before round 0."""

    @abc.abstractmethod
    def round(
        self, node: NodeContext, round_index: int, inbox: Dict[Hashable, Payload]
    ) -> Outbox:
        """Execute one synchronous round at ``node`` and return its outbox."""

    def output(self, node: NodeContext) -> Any:
        """Return the node's final output (collected after termination)."""
        return node.state.get("output")

    def max_rounds(self, network) -> Optional[int]:
        """Optional hard round limit for this algorithm on ``network``.

        Returning ``None`` defers to the simulator's default limit.  Concrete
        algorithms override this with the bound proved in the paper so that
        the tests can assert the implementation respects it.
        """
        return None
