"""Pluggable round-execution engines for the CONGEST simulator.

The :class:`~repro.congest.simulator.Simulator` decides *what* to run (the
algorithm, the bandwidth budget, the round limit); an :class:`Engine` decides
*how* the synchronous rounds are executed.  Two engines are provided:

* :class:`ReferenceEngine` -- the straightforward per-node, per-message loop.
  It is the correctness oracle: every semantic question ("in which order are
  inbox entries inserted?", "when exactly does a bandwidth violation raise?")
  is answered by this code.
* :class:`BatchedEngine` -- a vectorized fast path.  It flattens the network
  into CSR-style adjacency arrays once per run, memoizes payload bit
  estimates, aggregates per-round message/bit metrics with NumPy reductions,
  and builds each node's inbox lazily (only for nodes that are still active).
  Broadcasts -- the dominant message pattern of the paper's algorithms -- cost
  one bit estimate per *sender* instead of one per *delivery*.

The two engines are observationally identical: same outputs, same round
counts, same per-round metrics, same exceptions.  This is not accidental but
load-bearing -- several algorithms accumulate floating point packing values
from their inbox, so even the *insertion order* of inbox entries must match
(float addition is not associative).  The batched engine therefore keeps a
copy of every adjacency list sorted by global node order, which is exactly
the order in which the reference engine's sender loop inserts deliveries.
``tests/congest/test_engine_parity.py`` enforces the equivalence on a grid of
algorithms and graph families.

A third tier lives in :mod:`repro.congest.kernels`: the ``"kernel"`` engine
executes the paper's hot algorithms as node-loop-free NumPy array programs
over the CSR layout (registered lazily here so this module stays importable
without NumPy).  Algorithms without a kernel fall back to the batched
engine (the fallback is recorded in ``RunMetrics.engine_used``); fault
hooks run through the vectorized faulted driver in
:mod:`repro.congest.kernels.faults`.

Engine selection
----------------

Every entry point (``Simulator``, ``run_algorithm``, ``RunSpec``/``Session``
and the legacy ``solve_*`` helpers) accepts
``engine="reference" | "batched" | "kernel"``, an :class:`Engine` instance,
or ``None`` meaning "use the process-wide default" (see
:func:`set_default_engine`; the initial default is the reference engine).
The benchmark harness switches its default to the batched engine, which is
what makes the E9-scale instances tractable.

Round hooks (fault injection)
-----------------------------

:meth:`Engine.execute` takes an optional ``hooks`` object implementing the
round-hook protocol, which lets an adversary intervene in the round loop
without either engine knowing anything about fault semantics.  The only
implementation ships in :mod:`repro.faults` (``FaultSession``, installed by
``AdversarialEngine``); the protocol an engine relies on is:

* ``begin_round(r)`` -- apply state changes scheduled for round ``r``
  (crashes, topology churn) before the round executes;
* ``runnable(i)`` / ``acting(i)`` -- whether node *index* ``i`` (position in
  ``network.node_ids()`` order) can ever act again / acts this round.  Nodes
  that are unfinished but never runnable again do not keep the run alive;
* ``collect(r) -> (inboxes, dropped)`` -- the messages arriving at round
  ``r`` as per-receiver inbox dicts, plus the count lost to crashed
  receivers.  When hooks are present the engine's own delivery buffers are
  bypassed entirely: every send goes through ``route(r, i, j, payload)``
  (single delivery; returns ``None`` = dropped or the extra latency in
  rounds) or ``broadcast(r, i, payload)`` (whole broadcast, vectorized;
  returns ``(kept, dropped, delayed)`` counts);
* ``crashed_count()`` / ``live_edge_count()`` / ``faulty_nodes`` --
  per-round and per-run fault metrics;
* ``stop_at_limit`` -- when true, hitting the round limit truncates the run
  (recording ``RunMetrics.stalled_nodes``) instead of raising
  :class:`NonConvergenceError`; adversaries can legitimately starve an
  algorithm of the messages it needs to finish.

With no-op hooks (an empty fault plan) both engines are byte-identical to
their plain, hook-free paths; ``tests/faults/test_zero_fault_parity.py``
enforces this on the full algorithm x family grid.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Optional, Tuple, Type, Union

from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.errors import AlgorithmError, BandwidthViolation, NonConvergenceError
from repro.congest.message import Broadcast, Payload, estimate_payload_bits
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network

__all__ = [
    "Engine",
    "ReferenceEngine",
    "BatchedEngine",
    "ENGINES",
    "get_engine",
    "available_engines",
    "universal_engines",
    "get_default_engine",
    "set_default_engine",
]

#: Sentinel distinguishing "no message" from a legitimately falsy payload.
_MISSING = object()

#: Cap on the payload-bits memo so adversarial payload streams cannot grow it
#: without bound; the paper's algorithms send a handful of distinct payloads.
_BITS_MEMO_LIMIT = 4096


class Engine(abc.ABC):
    """Strategy interface: execute an algorithm's synchronous rounds.

    The simulator calls :meth:`execute` with a network whose per-node state
    has already been reset.  The engine owns the whole lifecycle from
    ``algorithm.setup`` to collecting ``algorithm.output``; it must enforce
    the round ``limit`` (raising :class:`NonConvergenceError`), the bandwidth
    ``budget`` (raising :class:`BandwidthViolation` when ``strict``), and
    reject sends to non-neighbors (:class:`AlgorithmError`).
    """

    #: Registry key and human-readable identifier.
    name: str = "abstract"

    #: Whether the engine executes *every* registered algorithm (with a
    #: fallback where needed).  Partial-capability tiers -- the sharded
    #: engine supports exactly the kerneled algorithms and raises
    #: :class:`EngineCapabilityError` otherwise -- set this ``False`` and
    #: are excluded from :func:`universal_engines`, the set the generic
    #: cross-engine determinism/parity suites quantify over.
    universal: bool = True

    @abc.abstractmethod
    def execute(
        self,
        network: Network,
        algorithm: SynchronousAlgorithm,
        *,
        budget: int,
        limit: int,
        strict: bool,
        hooks: Optional[Any] = None,
    ) -> Tuple[Dict[Hashable, Any], RunMetrics]:
        """Run ``algorithm`` to completion; return ``(outputs, metrics)``.

        ``hooks`` (optional) is a round-hook object -- see the module
        docstring -- through which fault injection intervenes in the loop.
        """

    # ------------------------------------------------------------------ #
    # Hooked execution (fault injection)
    # ------------------------------------------------------------------ #

    def _execute_hooked(self, network, algorithm, hooks, *, budget, limit, strict):
        """The round loop with hooks applied: one implementation, two engines.

        Shared so the engines cannot drift apart on lifecycle semantics
        (crash filtering, the round-limit policy, metrics bookkeeping, the
        unicast path); the two strategy points that differ per engine are
        :meth:`_hooked_bits` (payload-size estimation) and
        :meth:`_hooked_broadcast` (broadcast delivery -- per message on the
        reference engine, mask-based on the batched engine).  Under no-op
        hooks (an empty fault plan) this loop is byte-identical to the
        engine's plain path.
        """
        metrics = RunMetrics(bandwidth_budget_bits=budget)
        metrics.engine_used = self.name
        metrics.faulty_nodes = hooks.faulty_nodes

        layout = network.layout()
        node_order = layout.node_order
        n = len(node_order)
        contexts = layout.contexts
        index_of = layout.index_of
        for context in contexts:
            algorithm.setup(context)
        neighbor_indices: List[List[int]] = layout.neighbor_indices
        bits_of = self._hooked_bits(network)

        round_index = 0
        while True:
            pending = [i for i in range(n) if not contexts[i]._finished]
            hooks.begin_round(round_index)
            runnable = [i for i in pending if hooks.runnable(i)]
            if not runnable:
                break
            if round_index >= limit:
                if hooks.stop_at_limit:
                    metrics.stalled_nodes = len(runnable)
                    break
                raise NonConvergenceError(
                    rounds=round_index,
                    pending=len(runnable),
                    pending_nodes=[node_order[i] for i in runnable],
                )

            inboxes, arrival_dropped = hooks.collect(round_index)
            acting = [i for i in runnable if hooks.acting(i)]
            round_metrics = RoundMetrics(round_index=round_index, active_nodes=len(acting))
            round_metrics.dropped_messages = arrival_dropped
            round_metrics.crashed_nodes = hooks.crashed_count()
            round_metrics.live_edges = hooks.live_edge_count()

            for i in acting:
                context = contexts[i]
                outbox = algorithm.round(
                    context, round_index, inboxes.get(context.node_id) or {}
                )
                if outbox is None:
                    continue
                if isinstance(outbox, Broadcast):
                    if not context.neighbors:
                        continue
                    payload = outbox.payload
                    bits = bits_of(payload)
                    if budget and bits > budget and strict:
                        raise BandwidthViolation(
                            context.node_id,
                            context.neighbors[0],
                            bits,
                            budget,
                            round_index=round_index,
                        )
                    kept, dropped, delayed = self._hooked_broadcast(
                        hooks, round_index, i, neighbor_indices[i], payload
                    )
                    if kept:
                        round_metrics.messages += kept
                        round_metrics.bits += bits * kept
                        if bits > round_metrics.max_message_bits:
                            round_metrics.max_message_bits = bits
                    round_metrics.dropped_messages += dropped
                    round_metrics.delayed_messages += delayed
                else:
                    sender_id = context.node_id
                    for neighbor, payload in dict(outbox).items():
                        if not network.are_neighbors(sender_id, neighbor):
                            raise AlgorithmError(
                                f"node {sender_id!r} attempted to send to "
                                f"non-neighbor {neighbor!r}"
                            )
                        bits = bits_of(payload)
                        if budget and bits > budget and strict:
                            raise BandwidthViolation(
                                sender_id, neighbor, bits, budget, round_index=round_index
                            )
                        fate = hooks.route(round_index, i, index_of[neighbor], payload)
                        self._account(round_metrics, fate, bits)

            metrics.record(round_metrics)
            round_index += 1

        outputs = {
            node_id: algorithm.output(context)
            for node_id, context in zip(node_order, contexts)
        }
        return outputs, metrics

    def _hooked_bits(self, network):
        """Payload-size estimator for the hooked loop (override to memoize)."""
        bits_n = max(2, network.n)
        return lambda payload: estimate_payload_bits(payload, bits_n)

    def _hooked_broadcast(self, hooks, round_index, sender_index, neighbor_indices, payload):
        """Deliver one broadcast through the hooks; return (kept, dropped, delayed).

        The base implementation routes per delivery (the reference engine's
        per-message semantics); the batched engine overrides it with the
        session's vectorized mask path.
        """
        kept = dropped = delayed = 0
        for receiver_index in neighbor_indices:
            fate = hooks.route(round_index, sender_index, receiver_index, payload)
            if fate is None:
                dropped += 1
            else:
                kept += 1
                if fate:
                    delayed += 1
        return kept, dropped, delayed

    @staticmethod
    def _account(round_metrics: RoundMetrics, fate: Optional[int], bits: int) -> None:
        """Fold one routed delivery's fate into the round metrics."""
        if fate is None:
            round_metrics.dropped_messages += 1
            return
        round_metrics.messages += 1
        round_metrics.bits += bits
        if bits > round_metrics.max_message_bits:
            round_metrics.max_message_bits = bits
        if fate:
            round_metrics.delayed_messages += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceEngine(Engine):
    """The per-node, per-message Python loop (the correctness oracle).

    This is the seed implementation of ``Simulator.run`` moved behind the
    engine interface, byte-for-byte in behavior: inbox dictionaries for every
    node are materialised eagerly each round and every delivery is accounted
    for individually.
    """

    name = "reference"

    def execute(self, network, algorithm, *, budget, limit, strict, hooks=None):
        if hooks is not None:
            return self._execute_hooked(
                network, algorithm, hooks, budget=budget, limit=limit, strict=strict
            )
        metrics = RunMetrics(bandwidth_budget_bits=budget)
        metrics.engine_used = self.name

        for node_id in network.node_ids():
            algorithm.setup(network.context(node_id))

        # inboxes[v] maps neighbor -> payload delivered at the start of this round.
        inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
            node_id: {} for node_id in network.node_ids()
        }

        round_index = 0
        while True:
            active = [
                node_id
                for node_id in network.node_ids()
                if not network.context(node_id).finished
            ]
            if not active:
                break
            if round_index >= limit:
                raise NonConvergenceError(rounds=round_index, pending=len(active))

            round_metrics = RoundMetrics(round_index=round_index, active_nodes=len(active))
            next_inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
                node_id: {} for node_id in network.node_ids()
            }

            for node_id in active:
                context = network.context(node_id)
                outbox = algorithm.round(context, round_index, inboxes[node_id])
                if outbox is None:
                    continue
                if isinstance(outbox, Broadcast):
                    deliveries = {neighbor: outbox.payload for neighbor in context.neighbors}
                else:
                    deliveries = dict(outbox)
                for neighbor, payload in deliveries.items():
                    if not network.are_neighbors(node_id, neighbor):
                        raise AlgorithmError(
                            f"node {node_id!r} attempted to send to non-neighbor {neighbor!r}"
                        )
                    bits = estimate_payload_bits(payload, max(2, network.n))
                    if budget and bits > budget:
                        if strict:
                            raise BandwidthViolation(
                                node_id, neighbor, bits, budget, round_index=round_index
                            )
                    round_metrics.messages += 1
                    round_metrics.bits += bits
                    round_metrics.max_message_bits = max(round_metrics.max_message_bits, bits)
                    next_inboxes[neighbor][node_id] = payload

            metrics.record(round_metrics)
            inboxes = next_inboxes
            round_index += 1

        outputs = {
            node_id: algorithm.output(network.context(node_id))
            for node_id in network.node_ids()
        }
        return outputs, metrics


class BatchedEngine(Engine):
    """Vectorized fast path over CSR-style adjacency arrays.

    Where the work goes, compared to the reference engine:

    * **Adjacency** is flattened once per run into a degree vector plus
      per-node neighbor lists pre-sorted by global node order (the CSR
      ``indptr``/``indices`` split, kept as Python id lists because inbox
      keys are arbitrary hashables).  ``Network.are_neighbors`` is never
      consulted for broadcasts.
    * **Broadcast accounting** is per sender, not per delivery: the payload
      bits are estimated once (with memoization across rounds -- algorithms
      resend structurally identical payloads), the strict bandwidth check is
      one scalar comparison, and the round's message/bit totals are NumPy
      reductions ``degrees[senders].sum()`` / ``dot(bits, degrees[senders])``.
    * **Inboxes** are built lazily, only for nodes still active, by scanning
      the receiver's order-sorted neighbor list against the previous round's
      send buffers.  This reproduces the reference engine's inbox insertion
      order exactly (senders in global node order), which matters because
      algorithms fold inbox floats in iteration order.

    Explicit per-neighbor outboxes (the rare unicast path) fall back to
    per-delivery accounting identical to the reference engine, so mixed
    rounds stay observationally equivalent, including which delivery raises
    first on a bandwidth violation.
    """

    name = "batched"

    def execute(self, network, algorithm, *, budget, limit, strict, hooks=None):
        if hooks is not None:
            return self._execute_hooked(
                network, algorithm, hooks, budget=budget, limit=limit, strict=strict
            )
        # Imported here, not at module level: the reference engine (and hence
        # the whole package) stays importable without NumPy installed.
        import numpy as np

        metrics = RunMetrics(bandwidth_budget_bits=budget)
        metrics.engine_used = self.name

        # All adjacency state comes from the network's cached layout: built
        # once per network and shared across executions (the compiled-state
        # reuse a repro.run.Session depends on).
        layout = network.layout()
        node_order = layout.node_order
        n = len(node_order)
        contexts = layout.contexts
        for context in contexts:
            algorithm.setup(context)

        degrees = layout.degrees
        # Neighbor ids sorted by global node order: the reference engine
        # inserts deliveries while looping over senders in node order, so a
        # receiver scanning its neighbors in that same order rebuilds the
        # identical inbox key sequence.
        sorted_neighbors: List[List[Hashable]] = layout.sorted_neighbor_ids

        bits_n = max(2, network.n)
        bits_memo: Dict[tuple, int] = layout.bits_memo

        # Send buffers of the previous round: broadcast payload per sender id,
        # and explicit receiver->payload maps for unicast senders.  When the
        # previous round was sparse, deliveries were already scattered into
        # per-receiver dicts (``prev_scattered``) instead.
        prev_broadcast: Dict[Hashable, Payload] = {}
        prev_unicast: Dict[Hashable, Dict[Hashable, Payload]] = {}
        prev_scattered: Optional[Dict[Hashable, Dict[Hashable, Payload]]] = None
        prev_full_broadcast = False

        # Nodes only ever transition to finished, so the active list can be
        # filtered incrementally instead of rescanning all n nodes per round.
        active = [i for i in range(n) if not contexts[i]._finished]

        round_index = 0
        while True:
            if round_index:
                active = [i for i in active if not contexts[i]._finished]
            if not active:
                break
            if round_index >= limit:
                raise NonConvergenceError(rounds=round_index, pending=len(active))

            round_metrics = RoundMetrics(round_index=round_index, active_nodes=len(active))
            any_mail = bool(prev_broadcast) or bool(prev_unicast) or bool(prev_scattered)

            broadcast_payloads: Dict[Hashable, Payload] = {}
            unicast_payloads: Dict[Hashable, Dict[Hashable, Payload]] = {}
            broadcast_senders: List[int] = []
            broadcast_bits: List[int] = []
            unicast_senders: List[int] = []
            unicast_messages = 0
            unicast_bits = 0
            unicast_max_bits = 0

            for i in active:
                context = contexts[i]
                inbox: Dict[Hashable, Payload]
                if not any_mail:
                    inbox = {}
                elif prev_scattered is not None:
                    inbox = prev_scattered.get(context.node_id) or {}
                elif prev_full_broadcast:
                    # Every node broadcast last round: no membership test.
                    inbox = {u: prev_broadcast[u] for u in sorted_neighbors[i]}
                else:
                    inbox = {}
                    receiver_id = context.node_id
                    for u in sorted_neighbors[i]:
                        payload = prev_broadcast.get(u, _MISSING)
                        if payload is _MISSING and prev_unicast:
                            deliveries = prev_unicast.get(u)
                            if deliveries is not None:
                                payload = deliveries.get(receiver_id, _MISSING)
                        if payload is not _MISSING:
                            inbox[u] = payload

                outbox = algorithm.round(context, round_index, inbox)
                if outbox is None:
                    continue
                if isinstance(outbox, Broadcast):
                    if not context.neighbors:
                        # No deliveries: the reference engine neither accounts
                        # nor budget-checks a broadcast from an isolated node.
                        continue
                    payload = outbox.payload
                    bits = self._payload_bits(payload, bits_n, bits_memo)
                    if budget and bits > budget and strict:
                        # The reference engine raises at the first delivery,
                        # which for a broadcast is the first listed neighbor.
                        raise BandwidthViolation(
                            context.node_id,
                            context.neighbors[0],
                            bits,
                            budget,
                            round_index=round_index,
                        )
                    broadcast_payloads[context.node_id] = payload
                    broadcast_senders.append(i)
                    broadcast_bits.append(bits)
                else:
                    sender_id = context.node_id
                    deliveries: Dict[Hashable, Payload] = {}
                    for neighbor, payload in dict(outbox).items():
                        if not network.are_neighbors(sender_id, neighbor):
                            raise AlgorithmError(
                                f"node {sender_id!r} attempted to send to "
                                f"non-neighbor {neighbor!r}"
                            )
                        bits = self._payload_bits(payload, bits_n, bits_memo)
                        if budget and bits > budget and strict:
                            raise BandwidthViolation(
                                sender_id, neighbor, bits, budget, round_index=round_index
                            )
                        unicast_messages += 1
                        unicast_bits += bits
                        if bits > unicast_max_bits:
                            unicast_max_bits = bits
                        deliveries[neighbor] = payload
                    if deliveries:
                        unicast_payloads[sender_id] = deliveries
                        unicast_senders.append(i)

            if broadcast_senders:
                sender_degrees = degrees[broadcast_senders]
                bits_array = np.fromiter(
                    broadcast_bits, dtype=np.int64, count=len(broadcast_bits)
                )
                round_metrics.messages = unicast_messages + int(sender_degrees.sum())
                round_metrics.bits = unicast_bits + int(bits_array @ sender_degrees)
                round_metrics.max_message_bits = max(unicast_max_bits, int(bits_array.max()))
            else:
                round_metrics.messages = unicast_messages
                round_metrics.bits = unicast_bits
                round_metrics.max_message_bits = unicast_max_bits

            metrics.record(round_metrics)

            # Pick the delivery strategy for the next round's inboxes.
            prev_broadcast = broadcast_payloads
            prev_unicast = unicast_payloads
            prev_full_broadcast = len(broadcast_payloads) == n and not unicast_payloads
            prev_scattered = None
            if not prev_full_broadcast and (broadcast_payloads or unicast_payloads):
                # Sparse rounds (few senders relative to the surviving active
                # frontier) are cheaper delivered sender-push style than by
                # scanning every receiver's full neighbor list.
                active_degree_sum = int(degrees[active].sum())
                if 2 * round_metrics.messages < active_degree_sum:
                    prev_scattered = self._scatter(
                        contexts,
                        broadcast_senders,
                        broadcast_payloads,
                        unicast_senders,
                        unicast_payloads,
                    )
            round_index += 1

        outputs = {
            node_id: algorithm.output(context)
            for node_id, context in zip(node_order, contexts)
        }
        return outputs, metrics

    def _hooked_bits(self, network):
        # The batched engine keeps its payload-bits memo in hooked runs too,
        # shared across executions through the network layout.
        bits_n = max(2, network.n)
        memo = network.layout().bits_memo
        return lambda payload: self._payload_bits(payload, bits_n, memo)

    def _hooked_broadcast(self, hooks, round_index, sender_index, neighbor_indices, payload):
        # Fates are decided with NumPy masks over the session's CSR slice --
        # one call per sender, no per-message Python decisions.
        del neighbor_indices
        return hooks.broadcast(round_index, sender_index, payload)

    @staticmethod
    def _scatter(
        contexts: List,
        broadcast_senders: List[int],
        broadcast_payloads: Dict[Hashable, Payload],
        unicast_senders: List[int],
        unicast_payloads: Dict[Hashable, Dict[Hashable, Payload]],
    ) -> Dict[Hashable, Dict[Hashable, Payload]]:
        """Push a sparse round's deliveries into per-receiver inbox dicts.

        Both sender lists are ascending (they were appended while looping
        over the active list in node order); merging them keeps the global
        sender order, so each receiver's inbox keys appear in exactly the
        order the reference engine would have inserted them.
        """
        inboxes: Dict[Hashable, Dict[Hashable, Payload]] = {}
        bi, ui = 0, 0
        nb, nu = len(broadcast_senders), len(unicast_senders)
        while bi < nb or ui < nu:
            if ui >= nu or (bi < nb and broadcast_senders[bi] < unicast_senders[ui]):
                context = contexts[broadcast_senders[bi]]
                bi += 1
                sender_id = context.node_id
                payload = broadcast_payloads[sender_id]
                for receiver in context.neighbors:
                    inbox = inboxes.get(receiver)
                    if inbox is None:
                        inboxes[receiver] = {sender_id: payload}
                    else:
                        inbox[sender_id] = payload
            else:
                context = contexts[unicast_senders[ui]]
                ui += 1
                sender_id = context.node_id
                for receiver, payload in unicast_payloads[sender_id].items():
                    inbox = inboxes.get(receiver)
                    if inbox is None:
                        inboxes[receiver] = {sender_id: payload}
                    else:
                        inbox[sender_id] = payload
        return inboxes

    @staticmethod
    def _payload_bits(payload: Payload, n: int, memo: Dict[tuple, int]) -> int:
        """Memoized :func:`estimate_payload_bits`.

        The key includes each value's *type*: Python treats ``1``, ``1.0``
        and ``True`` as equal dict keys, but the wire-format estimate differs
        per type (bool: 1 bit, int: bit length, float: two words), so a
        value-only key would return the wrong cached size.  Payloads with
        unhashable values (which :func:`estimate_payload_bits` rejects
        anyway) bypass the memo so the reference engine's ``TypeError`` is
        reproduced verbatim.
        """
        try:
            key = tuple((k, type(v), v) for k, v in payload.items())
            bits = memo.get(key)
        except TypeError:
            return estimate_payload_bits(payload, n)
        if bits is None:
            bits = estimate_payload_bits(payload, n)
            if len(memo) < _BITS_MEMO_LIMIT:
                memo[key] = bits
        return bits


#: Registry of engine names to engine classes.  The third tier -- the
#: ``"kernel"`` engine (node-loop-free NumPy array programs, see
#: :mod:`repro.congest.kernels`) -- registers itself lazily through
#: :func:`_load_entry_point_engines` so this module keeps importing without
#: NumPy installed.
ENGINES: Dict[str, Type[Engine]] = {
    ReferenceEngine.name: ReferenceEngine,
    BatchedEngine.name: BatchedEngine,
}


def _load_entry_point_engines() -> None:
    """Register the engines that live outside this module (idempotent)."""
    if "kernel" not in ENGINES:
        from repro.congest.kernels.engine import KernelEngine

        ENGINES[KernelEngine.name] = KernelEngine
    if "sharded" not in ENGINES:
        from repro.congest.sharded.engine import ShardedEngine

        ENGINES[ShardedEngine.name] = ShardedEngine

#: Specification accepted everywhere an engine can be chosen.
EngineSpec = Union[None, str, Engine, Type[Engine]]

_default_engine_name: str = ReferenceEngine.name


def available_engines() -> Tuple[str, ...]:
    """Return the registered engine names, sorted."""
    _load_entry_point_engines()
    return tuple(sorted(ENGINES))


def universal_engines() -> Tuple[str, ...]:
    """Registered engines that can execute every algorithm, sorted.

    The cross-engine determinism and parity suites quantify over this
    set.  It excludes partial-capability tiers (``Engine.universal`` is
    ``False``), currently the sharded engine, whose own byte-parity gate
    against the kernel tier lives in
    ``tests/congest/test_sharded_parity.py``.
    """
    _load_entry_point_engines()
    return tuple(sorted(name for name, cls in ENGINES.items() if cls.universal))


def get_default_engine() -> str:
    """Return the name of the process-wide default engine."""
    return _default_engine_name


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous default.

    Only affects call sites that pass ``engine=None``.  The benchmark
    harness uses this to run everything on the batched engine.
    """
    global _default_engine_name
    _load_entry_point_engines()
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; available: {available_engines()}")
    previous = _default_engine_name
    _default_engine_name = name
    return previous


def get_engine(engine: EngineSpec = None) -> Engine:
    """Resolve an engine specification to an :class:`Engine` instance.

    Accepts a registered name (``"reference"`` / ``"batched"``), an
    :class:`Engine` instance (returned as-is), an :class:`Engine` subclass
    (instantiated), or ``None`` for the process-wide default.
    """
    if engine is None:
        engine = _default_engine_name
    if isinstance(engine, Engine):
        return engine
    if isinstance(engine, type) and issubclass(engine, Engine):
        return engine()
    _load_entry_point_engines()
    try:
        return ENGINES[engine]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown engine {engine!r}; available: {available_engines()}"
        ) from None
