"""Node-loop-free kernel for the Theorem 1.1 / 3.1 primal-dual algorithms.

This executes :class:`~repro.core.weighted.WeightedMDSAlgorithm` (and its
unit-weight wrapper :class:`~repro.core.unweighted.UnweightedMDSAlgorithm`)
as whole-graph array programs over the CSR layout, replaying the
:class:`~repro.core.partial.PrimalDualBase` round schedule exactly:

==============================  ============================================
round                           kernel operation
==============================  ============================================
0                               weight broadcast (per-node integer bits)
1 (when ``r > 0``)              ``tau`` = closed-neighborhood min (segment
                                min), ``x = tau/(Delta+1)``, x-broadcast
2i (decide)                     ``X_v`` = order-exact closed-neighborhood
                                fold of ``x``; joiners announce (1 bit)
2i+1 (increase)                 absorb joins (segment any), ``x *= 1+eps``
                                on the undominated, x-broadcast
2r+1 (finalize)                 last absorb+increase; undominated nodes
                                pick the cheapest closed-neighborhood
                                member (segment min + repr-rank argmin)
                                and unicast "selected" (1 bit)
2r+2 (extension)                selected nodes join; everyone finishes
==============================  ============================================

Byte-identity with the reference engine is the contract, not an
aspiration: the decide rounds accumulate floating point packing values, so
``X_v`` is computed with :class:`~repro.congest.kernels.csr.\
SequentialNeighborFold` -- the exact left-to-right inbox fold -- rather
than any reduction that could round differently.  The setup-time
validation errors (unit weights, unknown ``Delta``, unresolvable
``lambda``) are raised in the same precedence order as the per-node
``setup`` loop.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import (
    int_bit_lengths,
    segment_any,
    segment_min,
    segment_min_argrank,
    segment_sum,
)
from repro.congest.kernels.faults import (
    KIND_JOINED_S,
    KIND_SELECTED,
    KIND_WEIGHT,
    KIND_X,
    run_program,
)
from repro.congest.kernels.grid import output_dicts
from repro.congest.message import word_size_bits
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.core.partial import partial_iteration_count

__all__ = ["primal_dual_kernel"]

_UNIT_WEIGHT_MESSAGE = (
    "UnweightedMDSAlgorithm requires unit weights; "
    "use WeightedMDSAlgorithm for weighted instances"
)
_UNKNOWN_DELTA_MESSAGE = (
    "this algorithm assumes Delta is global knowledge; use the "
    "UnknownDegree variant (Remark 4.4) otherwise"
)


def _validated_schedule(grid, config, algorithm):
    """Shared setup validation; returns ``(max_degree, finalize_round)``.

    Raises in the reference per-node loop's precedence: node 0's weight
    check, node 0's Delta/lambda resolution, then the remaining nodes'
    weight checks.
    """
    from repro.core.unweighted import UnweightedMDSAlgorithm

    weights = grid.weights
    unweighted = isinstance(algorithm, UnweightedMDSAlgorithm)
    if unweighted and grid.n and weights[0] != 1:
        raise ValueError(_UNIT_WEIGHT_MESSAGE)
    max_degree = config.get("max_degree")
    if max_degree is None:
        raise ValueError(_UNKNOWN_DELTA_MESSAGE)
    # resolve_lambda only reads node.config, which is network-global.
    lambda_value = algorithm.resolve_lambda(SimpleNamespace(config=config))
    if unweighted and (weights != 1).any():
        raise ValueError(_UNIT_WEIGHT_MESSAGE)
    iterations = (
        0
        if algorithm.skip_partial
        else partial_iteration_count(max_degree, algorithm.epsilon, lambda_value)
    )
    finalize_round = 1 if iterations == 0 else 2 * iterations + 1
    return max_degree, finalize_round


def primal_dual_kernel(grid, config, algorithm, *, budget, limit, strict, seed=None, hooks=None):
    """Execute a Weighted/Unweighted MDS instance; see module docstring."""
    del seed  # deterministic algorithm
    if hooks is not None:
        program = _FaultedPrimalDual(grid, config, algorithm)
        return run_program(
            grid, hooks, program, budget=budget, limit=limit, strict=strict
        )
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    weights = grid.weights
    max_degree, finalize_round = _validated_schedule(grid, config, algorithm)
    epsilon = algorithm.epsilon
    total_rounds = finalize_round + 2

    indptr, indices, degrees = grid.indptr, grid.indices, grid.degrees
    float_bits = 2 * word_size_bits(max(2, n))
    weight_bits = np.maximum(1, int_bit_lengths(weights) + 1)
    one_plus_eps = 1.0 + epsilon
    # The join threshold w_v / (1 + eps): int -> float64 conversion and the
    # division are both exact/correctly-rounded, identical to Python's.
    join_threshold = weights / one_plus_eps

    tau = np.empty(n, dtype=np.int64)
    x = np.zeros(n, dtype=np.float64)
    x_partial = np.zeros(n, dtype=np.float64)
    in_s = np.zeros(n, dtype=bool)
    in_s_prime = np.zeros(n, dtype=bool)
    dominated = np.zeros(n, dtype=bool)
    dominated_at_partial = np.zeros(n, dtype=bool)
    increase_count = np.zeros(n, dtype=np.int64)
    selected = np.zeros(n, dtype=bool)
    joined_previous = np.zeros(n, dtype=bool)

    def initialise_packing():
        # tau_v = min over the closed neighborhood of the exchanged weights;
        # x_v = tau_v / (Delta + 1) matches Python's correctly rounded
        # int/int true division for any weights below 2**53.
        neighbor_min = segment_min(
            indptr, weights[indices], empty=np.iinfo(np.int64).max
        )
        np.minimum(weights, neighbor_min, out=tau)
        np.divide(tau, float(max_degree + 1), out=x)

    def absorb_and_increase():
        if joined_previous.any():
            dominated[segment_any(indptr, joined_previous[indices])] = True
        undominated = ~dominated
        x[undominated] *= one_plus_eps
        increase_count[undominated] += 1

    for round_index in range(total_rounds):
        # Every node stays active until the extension round, so the
        # reference loop's limit check sees all n nodes pending.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)

        if round_index == 0:
            account_broadcasts(
                round_metrics, grid, None, weight_bits,
                budget=budget, strict=strict, round_index=round_index,
            )
        elif round_index == 1 and finalize_round != 1:
            initialise_packing()
            account_broadcasts(
                round_metrics, grid, None, float_bits,
                budget=budget, strict=strict, round_index=round_index,
            )
        elif round_index < finalize_round:
            if round_index % 2 == 0:
                # Decide round (P2): the order-exact fold is the load X_v.
                load = grid.fold.fold(x)
                joining = (~in_s) & (load >= join_threshold)
                in_s |= joining
                dominated |= joining
                account_broadcasts(
                    round_metrics, grid, joining, 1,
                    budget=budget, strict=strict, round_index=round_index,
                )
                joined_previous = joining
            else:
                # Increase round (P1): absorb, raise x, re-broadcast.
                absorb_and_increase()
                account_broadcasts(
                    round_metrics, grid, None, float_bits,
                    budget=budget, strict=strict, round_index=round_index,
                )
        elif round_index == finalize_round:
            if finalize_round == 1:
                initialise_packing()
            else:
                absorb_and_increase()
            np.copyto(x_partial, x)
            np.copyto(dominated_at_partial, dominated)
            # Extension start: every undominated node selects the cheapest
            # member of N+(v) (self on ties); remote selections are one-bit
            # unicasts delivered next round.
            undominated = ~dominated
            if undominated.any():
                neighbor_min = segment_min(
                    indptr, weights[indices], empty=np.iinfo(np.int64).max
                )
                remote = undominated & (neighbor_min < weights)
                joins_self = undominated & ~remote
                in_s_prime |= joins_self
                dominated |= joins_self
                sender_count = int(remote.sum())
                if sender_count:
                    min_rank = segment_min_argrank(
                        indptr, weights[indices], grid.repr_rank[indices],
                        neighbor_min,
                    )
                    node_by_rank = np.argsort(grid.repr_rank, kind="stable")
                    targets = node_by_rank[min_rank[remote]]
                    selected = np.bincount(targets, minlength=n) > 0
                    round_metrics.messages += sender_count
                    round_metrics.bits += sender_count
                    if round_metrics.max_message_bits < 1:
                        round_metrics.max_message_bits = 1
        else:
            # Extension round: selected nodes join; everyone finishes.
            in_s_prime |= selected
            dominated |= selected

        metrics.record(round_metrics)

    in_ds = in_s | in_s_prime
    outputs = output_dicts(
        grid.node_order,
        {
            # Field order matters: result_bytes pickles the output dicts,
            # and pickle preserves insertion order.
            "in_ds": in_ds.tolist(),
            "in_partial": in_s.tolist(),
            "in_extension": in_s_prime.tolist(),
            "dominated_by_partial": dominated_at_partial.tolist(),
            "x_partial": x_partial.tolist(),
            "x": x.tolist(),
            "tau": tau.tolist(),
            "increase_count": increase_count.tolist(),
            "fallback_join": [False] * n,
        },
    )
    return outputs, metrics


class _FaultedPrimalDual:
    """Round-by-round Weighted/Unweighted MDS for the faulted driver.

    State that the closed form derives analytically (``tau``, the packing
    values, the received-weight table behind the cheapest-dominator pick)
    becomes explicit per-node/per-edge arrays here, because a crashed or
    silenced neighbor changes what each node actually received.
    """

    def __init__(self, grid, config, algorithm):
        self.grid = grid
        n = grid.n
        if n:
            self.max_degree, self.finalize_round = _validated_schedule(
                grid, config, algorithm
            )
        else:
            self.max_degree, self.finalize_round = 0, 1
        self.weights = grid.weights
        self.weight_bits = np.maximum(1, int_bit_lengths(self.weights) + 1)
        self.float_bits = 2 * word_size_bits(max(2, n))
        self.one_plus_eps = 1.0 + algorithm.epsilon
        self.join_threshold = self.weights / self.one_plus_eps
        self.x = np.zeros(n, dtype=np.float64)
        self.x_partial = np.zeros(n, dtype=np.float64)
        self.tau = np.zeros(n, dtype=np.int64)
        self.has_tau = np.zeros(n, dtype=bool)
        self.in_s = np.zeros(n, dtype=bool)
        self.in_s_prime = np.zeros(n, dtype=bool)
        self.dominated = np.zeros(n, dtype=bool)
        self.dominated_at_partial = np.zeros(n, dtype=bool)
        self.increase_count = np.zeros(n, dtype=np.int64)
        # Per directed edge v->u: did v receive u's round-0 weight report?
        self.got_weight = np.zeros(len(grid.indices), dtype=bool)
        self.finished = np.zeros(n, dtype=bool)

    def _initialise(self, acting, inbox, run):
        n = self.grid.n
        candidate_min = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        if inbox is not None:
            mask = inbox.kind == KIND_WEIGHT
            receivers = inbox.recv[mask]
            if receivers.size:
                edges = run.edge_positions(receivers, inbox.send[mask])
                self.got_weight[edges] = True
                np.minimum.at(candidate_min, receivers, inbox.ival[mask])
        tau_new = np.minimum(self.weights, candidate_min)
        self.tau[acting] = tau_new[acting]
        self.has_tau |= acting
        x_new = tau_new / float(self.max_degree + 1)
        self.x[acting] = x_new[acting]
        self.x_partial[acting] = x_new[acting]

    def _absorb_and_increase(self, acting, inbox):
        if inbox is not None:
            self.dominated |= inbox.any_truthy(KIND_JOINED_S)
        undominated = acting & ~self.dominated
        self.x[undominated] *= self.one_plus_eps
        self.increase_count[undominated] += 1

    def _finalize(self, round_index, acting, run):
        grid = self.grid
        undominated = acting & ~self.dominated
        if not undominated.any():
            return
        sentinel = np.iinfo(np.int64).max
        received = np.where(self.got_weight, self.weights[grid.indices], sentinel)
        neighbor_min = segment_min(grid.indptr, received, empty=sentinel)
        remote = undominated & (neighbor_min < self.weights)
        joins_self = undominated & ~remote
        self.in_s_prime |= joins_self
        self.dominated |= joins_self
        senders = np.flatnonzero(remote)
        if senders.size:
            min_rank = segment_min_argrank(
                grid.indptr, received, grid.repr_rank[grid.indices], neighbor_min
            )
            node_by_rank = np.argsort(grid.repr_rank, kind="stable")
            targets = node_by_rank[min_rank[remote]]
            run.unicast(round_index, senders, targets, KIND_SELECTED, bits=1)

    def step(self, round_index, acting, inbox, run):
        finalize = self.finalize_round
        if round_index == 0:
            run.broadcast(
                0, acting, KIND_WEIGHT, bits=self.weight_bits, values=self.weights
            )
            return
        if round_index == 1 and finalize != 1:
            self._initialise(acting, inbox, run)
            run.broadcast(1, acting, KIND_X, bits=self.float_bits, fvalues=self.x)
            return
        if round_index < finalize:
            if round_index % 2 == 0:
                # Decide round (P2): the order-exact inbox fold is the load.
                load = (
                    inbox.ordered_float_sum((KIND_X,), self.x)
                    if inbox is not None
                    else self.x.copy()
                )
                joining = acting & ~self.in_s & (load >= self.join_threshold)
                self.in_s |= joining
                self.dominated |= joining
                run.broadcast(round_index, joining, KIND_JOINED_S, bits=1)
            else:
                self._absorb_and_increase(acting, inbox)
                run.broadcast(
                    round_index, acting, KIND_X, bits=self.float_bits, fvalues=self.x
                )
            return
        if round_index == finalize:
            if finalize == 1:
                self._initialise(acting, inbox, run)
            else:
                self._absorb_and_increase(acting, inbox)
            self.x_partial[acting] = self.x[acting]
            self.dominated_at_partial[acting] = self.dominated[acting]
            self._finalize(round_index, acting, run)
            return
        # Extension round: selected nodes join; acting nodes finish.
        if inbox is not None:
            selected = inbox.any_truthy(KIND_SELECTED)
            self.in_s_prime |= selected
            self.dominated |= selected
        self.finished |= acting

    def outputs(self, count=None):
        n = self.grid.n if count is None else count
        tau_column = [
            int(value) if known else None
            for value, known in zip(self.tau[:n].tolist(), self.has_tau[:n].tolist())
        ]
        return output_dicts(
            self.grid.node_order,
            {
                "in_ds": (self.in_s[:n] | self.in_s_prime[:n]).tolist(),
                "in_partial": self.in_s[:n].tolist(),
                "in_extension": self.in_s_prime[:n].tolist(),
                "dominated_by_partial": self.dominated_at_partial[:n].tolist(),
                "x_partial": self.x_partial[:n].tolist(),
                "x": self.x[:n].tolist(),
                "tau": tau_column,
                "increase_count": self.increase_count[:n].tolist(),
                "fallback_join": [False] * n,
            },
            count,
        )


# Re-exported for the property-based tests, which cross-check the decide
# round's fold against a brute-force inbox loop.
def decide_load(grid, x: np.ndarray) -> np.ndarray:
    """The decide-round load ``X_v`` (order-exact closed-neighborhood fold)."""
    return grid.fold.fold(x)


def neighbor_flag_counts(grid, flags: np.ndarray) -> np.ndarray:
    """Per-node count of neighbors with ``flags`` set (exact integer sum)."""
    return segment_sum(grid.indptr, flags[grid.indices].astype(np.int64))
