"""Node-loop-free kernel for the Theorem 1.1 / 3.1 primal-dual algorithms.

This executes :class:`~repro.core.weighted.WeightedMDSAlgorithm` (and its
unit-weight wrapper :class:`~repro.core.unweighted.UnweightedMDSAlgorithm`)
as whole-graph array programs over the CSR layout, replaying the
:class:`~repro.core.partial.PrimalDualBase` round schedule exactly:

==============================  ============================================
round                           kernel operation
==============================  ============================================
0                               weight broadcast (per-node integer bits)
1 (when ``r > 0``)              ``tau`` = closed-neighborhood min (segment
                                min), ``x = tau/(Delta+1)``, x-broadcast
2i (decide)                     ``X_v`` = order-exact closed-neighborhood
                                fold of ``x``; joiners announce (1 bit)
2i+1 (increase)                 absorb joins (segment any), ``x *= 1+eps``
                                on the undominated, x-broadcast
2r+1 (finalize)                 last absorb+increase; undominated nodes
                                pick the cheapest closed-neighborhood
                                member (segment min + repr-rank argmin)
                                and unicast "selected" (1 bit)
2r+2 (extension)                selected nodes join; everyone finishes
==============================  ============================================

Byte-identity with the reference engine is the contract, not an
aspiration: the decide rounds accumulate floating point packing values, so
``X_v`` is computed with :class:`~repro.congest.kernels.csr.\
SequentialNeighborFold` -- the exact left-to-right inbox fold -- rather
than any reduction that could round differently.  The setup-time
validation errors (unit weights, unknown ``Delta``, unresolvable
``lambda``) are raised in the same precedence order as the per-node
``setup`` loop.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import (
    int_bit_lengths,
    segment_any,
    segment_min,
    segment_min_argrank,
    segment_sum,
)
from repro.congest.kernels.grid import output_dicts
from repro.congest.message import word_size_bits
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.core.partial import partial_iteration_count

__all__ = ["primal_dual_kernel"]

_UNIT_WEIGHT_MESSAGE = (
    "UnweightedMDSAlgorithm requires unit weights; "
    "use WeightedMDSAlgorithm for weighted instances"
)
_UNKNOWN_DELTA_MESSAGE = (
    "this algorithm assumes Delta is global knowledge; use the "
    "UnknownDegree variant (Remark 4.4) otherwise"
)


def primal_dual_kernel(grid, config, algorithm, *, budget, limit, strict):
    """Execute a Weighted/Unweighted MDS instance; see module docstring."""
    from repro.core.unweighted import UnweightedMDSAlgorithm

    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    weights = grid.weights
    unweighted = isinstance(algorithm, UnweightedMDSAlgorithm)

    # Setup-time validation, in the reference per-node loop's precedence:
    # node 0's weight check, node 0's Delta/lambda resolution, then the
    # remaining nodes' weight checks.
    if unweighted and weights[0] != 1:
        raise ValueError(_UNIT_WEIGHT_MESSAGE)
    max_degree = config.get("max_degree")
    if max_degree is None:
        raise ValueError(_UNKNOWN_DELTA_MESSAGE)
    # resolve_lambda only reads node.config, which is network-global.
    lambda_value = algorithm.resolve_lambda(SimpleNamespace(config=config))
    if unweighted and (weights != 1).any():
        raise ValueError(_UNIT_WEIGHT_MESSAGE)

    epsilon = algorithm.epsilon
    iterations = (
        0
        if algorithm.skip_partial
        else partial_iteration_count(max_degree, epsilon, lambda_value)
    )
    finalize_round = 1 if iterations == 0 else 2 * iterations + 1
    total_rounds = finalize_round + 2

    indptr, indices, degrees = grid.indptr, grid.indices, grid.degrees
    float_bits = 2 * word_size_bits(max(2, n))
    weight_bits = np.maximum(1, int_bit_lengths(weights) + 1)
    one_plus_eps = 1.0 + epsilon
    # The join threshold w_v / (1 + eps): int -> float64 conversion and the
    # division are both exact/correctly-rounded, identical to Python's.
    join_threshold = weights / one_plus_eps

    tau = np.empty(n, dtype=np.int64)
    x = np.zeros(n, dtype=np.float64)
    x_partial = np.zeros(n, dtype=np.float64)
    in_s = np.zeros(n, dtype=bool)
    in_s_prime = np.zeros(n, dtype=bool)
    dominated = np.zeros(n, dtype=bool)
    dominated_at_partial = np.zeros(n, dtype=bool)
    increase_count = np.zeros(n, dtype=np.int64)
    selected = np.zeros(n, dtype=bool)
    joined_previous = np.zeros(n, dtype=bool)

    def initialise_packing():
        # tau_v = min over the closed neighborhood of the exchanged weights;
        # x_v = tau_v / (Delta + 1) matches Python's correctly rounded
        # int/int true division for any weights below 2**53.
        neighbor_min = segment_min(
            indptr, weights[indices], empty=np.iinfo(np.int64).max
        )
        np.minimum(weights, neighbor_min, out=tau)
        np.divide(tau, float(max_degree + 1), out=x)

    def absorb_and_increase():
        if joined_previous.any():
            dominated[segment_any(indptr, joined_previous[indices])] = True
        undominated = ~dominated
        x[undominated] *= one_plus_eps
        increase_count[undominated] += 1

    for round_index in range(total_rounds):
        # Every node stays active until the extension round, so the
        # reference loop's limit check sees all n nodes pending.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)

        if round_index == 0:
            account_broadcasts(
                round_metrics, grid, None, weight_bits,
                budget=budget, strict=strict, round_index=round_index,
            )
        elif round_index == 1 and finalize_round != 1:
            initialise_packing()
            account_broadcasts(
                round_metrics, grid, None, float_bits,
                budget=budget, strict=strict, round_index=round_index,
            )
        elif round_index < finalize_round:
            if round_index % 2 == 0:
                # Decide round (P2): the order-exact fold is the load X_v.
                load = grid.fold.fold(x)
                joining = (~in_s) & (load >= join_threshold)
                in_s |= joining
                dominated |= joining
                account_broadcasts(
                    round_metrics, grid, joining, 1,
                    budget=budget, strict=strict, round_index=round_index,
                )
                joined_previous = joining
            else:
                # Increase round (P1): absorb, raise x, re-broadcast.
                absorb_and_increase()
                account_broadcasts(
                    round_metrics, grid, None, float_bits,
                    budget=budget, strict=strict, round_index=round_index,
                )
        elif round_index == finalize_round:
            if finalize_round == 1:
                initialise_packing()
            else:
                absorb_and_increase()
            np.copyto(x_partial, x)
            np.copyto(dominated_at_partial, dominated)
            # Extension start: every undominated node selects the cheapest
            # member of N+(v) (self on ties); remote selections are one-bit
            # unicasts delivered next round.
            undominated = ~dominated
            if undominated.any():
                neighbor_min = segment_min(
                    indptr, weights[indices], empty=np.iinfo(np.int64).max
                )
                remote = undominated & (neighbor_min < weights)
                joins_self = undominated & ~remote
                in_s_prime |= joins_self
                dominated |= joins_self
                sender_count = int(remote.sum())
                if sender_count:
                    min_rank = segment_min_argrank(
                        indptr, weights[indices], grid.repr_rank[indices],
                        neighbor_min,
                    )
                    node_by_rank = np.argsort(grid.repr_rank, kind="stable")
                    targets = node_by_rank[min_rank[remote]]
                    selected = np.bincount(targets, minlength=n) > 0
                    round_metrics.messages += sender_count
                    round_metrics.bits += sender_count
                    if round_metrics.max_message_bits < 1:
                        round_metrics.max_message_bits = 1
        else:
            # Extension round: selected nodes join; everyone finishes.
            in_s_prime |= selected
            dominated |= selected

        metrics.record(round_metrics)

    in_ds = in_s | in_s_prime
    outputs = output_dicts(
        grid.node_order,
        {
            # Field order matters: result_bytes pickles the output dicts,
            # and pickle preserves insertion order.
            "in_ds": in_ds.tolist(),
            "in_partial": in_s.tolist(),
            "in_extension": in_s_prime.tolist(),
            "dominated_by_partial": dominated_at_partial.tolist(),
            "x_partial": x_partial.tolist(),
            "x": x.tolist(),
            "tau": tau.tolist(),
            "increase_count": increase_count.tolist(),
            "fallback_join": [False] * n,
        },
    )
    return outputs, metrics


# Re-exported for the property-based tests, which cross-check the decide
# round's fold against a brute-force inbox loop.
def decide_load(grid, x: np.ndarray) -> np.ndarray:
    """The decide-round load ``X_v`` (order-exact closed-neighborhood fold)."""
    return grid.fold.fold(x)


def neighbor_flag_counts(grid, flags: np.ndarray) -> np.ndarray:
    """Per-node count of neighbors with ``flags`` set (exact integer sum)."""
    return segment_sum(grid.indptr, flags[grid.indices].astype(np.int64))
