"""Node-loop-free kernel for :class:`~repro.core.trees.ForestMDSAlgorithm`.

The forest algorithm's whole two-round schedule collapses into array
programs: round 0 is one degree-payload broadcast (isolated nodes finish
immediately), round 1 classifies every node from the degree vector -- the
only per-node data a node ever receives -- with the two-node-component
tie-break replayed through the grid's ``repr`` arrays.

Under a fault plan the closed form no longer holds (a crashed or silenced
neighbor changes what a leaf hears), so ``hooks`` routes execution through
the vectorized driver in :mod:`repro.congest.kernels.faults` with
:class:`_FaultedForest` supplying the per-round transition.
"""

from __future__ import annotations

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import int_bit_lengths
from repro.congest.kernels.faults import KIND_DEGREE, run_program
from repro.congest.kernels.grid import output_dicts
from repro.congest.metrics import RoundMetrics, RunMetrics

__all__ = ["forest_kernel"]


class _FaultedForest:
    """Round-by-round forest program for the faulted driver."""

    def __init__(self, grid):
        self.grid = grid
        n = grid.n
        self.in_ds = np.zeros(n, dtype=bool)
        self.finished = np.zeros(n, dtype=bool)

    def step(self, round_index, acting, inbox, run):
        grid = self.grid
        degrees = grid.degrees
        if round_index == 0:
            isolated = acting & (degrees == 0)
            self.in_ds |= isolated
            self.finished |= isolated
            run.broadcast(
                0,
                acting,
                KIND_DEGREE,
                bits=int_bit_lengths(degrees) + 1,
                values=degrees.astype(np.int64, copy=False),
            )
            return
        # Any later round: internal nodes join; leaves decide from the one
        # degree report they may have received (a silent neighbor means the
        # conservative self-join); isolated nodes that missed round 0 finish
        # without joining, exactly like the per-node handler's fall-through.
        self.in_ds |= acting & (degrees >= 2)
        leaves = acting & (degrees == 1)
        if leaves.any() and inbox is not None:
            mask = inbox.kind == KIND_DEGREE
            receivers = inbox.recv[mask]
            heard = np.zeros(grid.n, dtype=bool)
            heard[receivers] = True
            neighbor_degree = np.zeros(grid.n, dtype=np.int64)
            neighbor_degree[receivers] = inbox.ival[mask]
            sender = np.zeros(grid.n, dtype=np.int64)
            sender[receivers] = inbox.send[mask]
            self.in_ds |= leaves & ~heard
            endpoints = np.flatnonzero(leaves & heard & (neighbor_degree == 1))
            if endpoints.size:
                reprs = grid.reprs
                self.in_ds[endpoints] = (
                    reprs[endpoints] < reprs[sender[endpoints]]
                )
        elif leaves.any():
            self.in_ds |= leaves
        self.finished |= acting

    def outputs(self, count=None):
        return output_dicts(
            self.grid.node_order, {"in_ds": self.in_ds.tolist()}, count
        )


def forest_kernel(grid, config, algorithm, *, budget, limit, strict, seed=None, hooks=None):
    """Execute the Observation A.1 forest algorithm; see module docstring."""
    del config, algorithm, seed  # parameter-free and configuration-free
    if hooks is not None:
        return run_program(
            grid, hooks, _FaultedForest(grid), budget=budget, limit=limit, strict=strict
        )
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    degrees = grid.degrees
    in_ds = np.zeros(n, dtype=bool)

    # Round 0: isolated nodes dominate themselves and finish; everyone else
    # broadcasts its degree ({"degree": d} -> d.bit_length() + 1 bits).
    if 0 >= limit:
        raise NonConvergenceError(rounds=0, pending=n)
    round_metrics = RoundMetrics(round_index=0, active_nodes=n)
    in_ds |= degrees == 0
    account_broadcasts(
        round_metrics,
        grid,
        None,
        int_bit_lengths(degrees) + 1,
        budget=budget,
        strict=strict,
        round_index=0,
    )
    metrics.record(round_metrics)

    # Round 1: every non-isolated node decides from its neighbors' degrees.
    pending = int((degrees > 0).sum())
    if pending:
        if 1 >= limit:
            raise NonConvergenceError(rounds=1, pending=pending)
        round_metrics = RoundMetrics(round_index=1, active_nodes=pending)
        in_ds |= degrees >= 2
        leaves = np.flatnonzero(degrees == 1)
        if leaves.size:
            partner = grid.indices[grid.indptr[leaves]]
            # A leaf whose neighbor is internal stays out; in a two-node
            # component the endpoint with the smaller repr joins.
            two_node = degrees[partner] == 1
            endpoints = leaves[two_node]
            if endpoints.size:
                reprs = grid.reprs
                in_ds[endpoints] = reprs[endpoints] < reprs[partner[two_node]]
        metrics.record(round_metrics)

    outputs = output_dicts(grid.node_order, {"in_ds": in_ds.tolist()})
    return outputs, metrics
