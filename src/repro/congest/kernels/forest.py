"""Node-loop-free kernel for :class:`~repro.core.trees.ForestMDSAlgorithm`.

The forest algorithm's whole two-round schedule collapses into array
programs: round 0 is one degree-payload broadcast (isolated nodes finish
immediately), round 1 classifies every node from the degree vector -- the
only per-node data a node ever receives -- with the two-node-component
tie-break replayed through the grid's ``repr`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import int_bit_lengths
from repro.congest.kernels.grid import output_dicts
from repro.congest.metrics import RoundMetrics, RunMetrics

__all__ = ["forest_kernel"]


def forest_kernel(grid, config, algorithm, *, budget, limit, strict):
    """Execute the Observation A.1 forest algorithm; see module docstring."""
    del config, algorithm  # parameter-free and configuration-free
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    degrees = grid.degrees
    in_ds = np.zeros(n, dtype=bool)

    # Round 0: isolated nodes dominate themselves and finish; everyone else
    # broadcasts its degree ({"degree": d} -> d.bit_length() + 1 bits).
    if 0 >= limit:
        raise NonConvergenceError(rounds=0, pending=n)
    round_metrics = RoundMetrics(round_index=0, active_nodes=n)
    in_ds |= degrees == 0
    account_broadcasts(
        round_metrics,
        grid,
        None,
        int_bit_lengths(degrees) + 1,
        budget=budget,
        strict=strict,
        round_index=0,
    )
    metrics.record(round_metrics)

    # Round 1: every non-isolated node decides from its neighbors' degrees.
    pending = int((degrees > 0).sum())
    if pending:
        if 1 >= limit:
            raise NonConvergenceError(rounds=1, pending=pending)
        round_metrics = RoundMetrics(round_index=1, active_nodes=pending)
        in_ds |= degrees >= 2
        leaves = np.flatnonzero(degrees == 1)
        if leaves.size:
            partner = grid.indices[grid.indptr[leaves]]
            # A leaf whose neighbor is internal stays out; in a two-node
            # component the endpoint with the smaller repr joins.
            two_node = degrees[partner] == 1
            endpoints = leaves[two_node]
            if endpoints.size:
                reprs = grid.reprs
                in_ds[endpoints] = reprs[endpoints] < reprs[partner[two_node]]
        metrics.record(round_metrics)

    outputs = output_dicts(grid.node_order, {"in_ds": in_ds.tolist()})
    return outputs, metrics
