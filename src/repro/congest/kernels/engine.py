"""The ``"kernel"`` execution engine: whole-graph array programs per round.

Where :class:`~repro.congest.engine.BatchedEngine` vectorizes *delivery*
around per-node Python handler calls, :class:`KernelEngine` removes the
node loop entirely for the algorithms it knows: each round becomes a
handful of CSR segment reductions producing the same outputs and the same
:class:`~repro.congest.metrics.RunMetrics` by analytic accounting
(``tests/congest/test_kernel_parity.py`` holds it byte-identical to the
reference engine).

Dispatch is by *exact* algorithm type -- a subclass that overrides any
round behavior must register its own kernel -- and algorithms without a
kernel fall back to the batched engine transparently (fault hooks and all),
so ``engine="kernel"`` is always safe to select.  Fault-injection hooks run
on the kernel tier itself: the compiled
:class:`~repro.faults.session.FaultSession` is applied as per-round NumPy
masks by the driver in :mod:`repro.congest.kernels.faults`, byte-identical
to the per-node engines under the same plan.  ``RunMetrics.engine_used``
records which tier actually executed, so a fallback can never masquerade as
a kernel run.
"""

from __future__ import annotations

from typing import Optional

from repro.congest.engine import BatchedEngine, Engine

__all__ = ["KernelEngine"]


class KernelEngine(Engine):
    """Node-loop-free NumPy fast path with batched-engine fallback."""

    name = "kernel"

    def __init__(self):
        self._fallback: Optional[BatchedEngine] = None

    def execute(self, network, algorithm, *, budget, limit, strict, hooks=None):
        from repro.congest.kernels import kernel_for

        kernel = kernel_for(algorithm)
        if kernel is None:
            if self._fallback is None:
                self._fallback = BatchedEngine()
            return self._fallback.execute(
                network, algorithm, budget=budget, limit=limit, strict=strict,
                hooks=hooks,
            )
        from repro.congest.kernels.grid import grid_from_network

        grid = grid_from_network(network)
        outputs, metrics = kernel(
            grid, network.config, algorithm,
            budget=budget, limit=limit, strict=strict,
            seed=network.seed, hooks=hooks,
        )
        metrics.engine_used = self.name
        return outputs, metrics
