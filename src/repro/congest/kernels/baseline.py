"""Node-loop-free kernel for the parallel-threshold-greedy LW baseline.

:class:`~repro.baselines.lenzen_wattenhofer.LWDeterministicAlgorithm` -- the
distributed greedy comparison point of benchmark E8 -- alternates coverage
reports with threshold joins.  Both message types are one-bit booleans, so
each round is a pair of exact integer segment reductions: "any neighbor
joined" (segment any) and "uncovered nodes in the closed neighborhood"
(segment sum), with the phase counter and threshold shared by every node.
"""

from __future__ import annotations

import math

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import segment_any, segment_sum
from repro.congest.kernels.faults import KIND_JOINED, KIND_UNCOVERED, run_program
from repro.congest.kernels.grid import output_dicts
from repro.congest.metrics import RoundMetrics, RunMetrics

__all__ = ["lw_deterministic_kernel"]


class _FaultedLWDeterministic:
    """Round-by-round LW deterministic greedy for the faulted driver.

    Unlike the lockstep closed form, crashed rounds desynchronise the phase
    counters, so ``phase`` is a per-node array and the join threshold is
    ``2.0 ** phase`` (a float once a node's counter goes negative -- exactly
    the per-node handler's ``2 ** phase``).
    """

    def __init__(self, grid, config):
        self.grid = grid
        n = grid.n
        self.phase = np.full(
            n, int(math.ceil(math.log2(config.get("max_degree", 0) + 2))), np.int64
        )
        self.covered = np.zeros(n, dtype=bool)
        self.in_ds = np.zeros(n, dtype=bool)
        self.finished = np.zeros(n, dtype=bool)

    def step(self, round_index, acting, inbox, run):
        if round_index % 2 == 0:
            # Report round: absorb joins, finish exhausted nodes, report.
            if inbox is not None:
                self.covered |= acting & inbox.any_truthy(KIND_JOINED)
            done = acting & (self.phase < 1)
            if done.any():
                join = done & ~self.covered
                self.in_ds |= join
                self.covered |= join
                self.finished |= done
            run.broadcast(
                round_index,
                acting & ~done,
                KIND_UNCOVERED,
                bits=1,
                values=(~self.covered).astype(np.int64),
            )
        else:
            # Join round: span over the closed neighborhood vs 2^phase.
            span = (~self.covered).astype(np.int64)
            if inbox is not None:
                span = span + inbox.count_truthy(KIND_UNCOVERED)
            threshold = np.exp2(self.phase.astype(np.float64))
            joining = acting & ~self.in_ds & (span >= threshold)
            self.phase[acting] -= 1
            self.in_ds |= joining
            self.covered |= joining
            run.broadcast(round_index, joining, KIND_JOINED, bits=1)

    def outputs(self, count=None):
        return output_dicts(
            self.grid.node_order, {"in_ds": self.in_ds.tolist()}, count
        )


def lw_deterministic_kernel(grid, config, algorithm, *, budget, limit, strict, seed=None, hooks=None):
    """Execute the LW-style deterministic greedy; see module docstring."""
    del algorithm, seed  # parameter-free
    if hooks is not None:
        return run_program(
            grid,
            hooks,
            _FaultedLWDeterministic(grid, config),
            budget=budget,
            limit=limit,
            strict=strict,
        )
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    indptr, indices = grid.indptr, grid.indices
    # Identical to the per-node setup: the phase counter starts at
    # ceil(log2(Delta + 2)) and every node counts down in lockstep.
    phase = int(math.ceil(math.log2(config.get("max_degree", 0) + 2)))
    covered = np.zeros(n, dtype=bool)
    in_ds = np.zeros(n, dtype=bool)
    joined_previous = np.zeros(n, dtype=bool)

    round_index = 0
    while True:
        # Report round (even): absorb joins, then either finish (phase
        # exhausted: uncovered nodes join themselves) or report coverage.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)
        if joined_previous.any():
            covered[segment_any(indptr, joined_previous[indices])] = True
        if phase < 1:
            in_ds |= ~covered
            metrics.record(round_metrics)
            break
        account_broadcasts(
            round_metrics, grid, None, 1,
            budget=budget, strict=strict, round_index=round_index,
        )
        metrics.record(round_metrics)
        round_index += 1

        # Join round (odd): span over the closed neighborhood vs 2^phase.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)
        uncovered = ~covered
        span = uncovered.astype(np.int64) + segment_sum(
            indptr, uncovered[indices].astype(np.int64)
        )
        threshold = 1 << phase
        phase -= 1
        joining = (~in_ds) & (span >= threshold)
        in_ds |= joining
        covered |= joining
        account_broadcasts(
            round_metrics, grid, joining, 1,
            budget=budget, strict=strict, round_index=round_index,
        )
        metrics.record(round_metrics)
        joined_previous = joining
        round_index += 1

    outputs = output_dicts(grid.node_order, {"in_ds": in_ds.tolist()})
    return outputs, metrics
