"""Node-loop-free kernel for the parallel-threshold-greedy LW baseline.

:class:`~repro.baselines.lenzen_wattenhofer.LWDeterministicAlgorithm` -- the
distributed greedy comparison point of benchmark E8 -- alternates coverage
reports with threshold joins.  Both message types are one-bit booleans, so
each round is a pair of exact integer segment reductions: "any neighbor
joined" (segment any) and "uncovered nodes in the closed neighborhood"
(segment sum), with the phase counter and threshold shared by every node.
"""

from __future__ import annotations

import math

import numpy as np

from repro.congest.errors import NonConvergenceError
from repro.congest.kernels.accounting import account_broadcasts
from repro.congest.kernels.csr import segment_any, segment_sum
from repro.congest.kernels.grid import output_dicts
from repro.congest.metrics import RoundMetrics, RunMetrics

__all__ = ["lw_deterministic_kernel"]


def lw_deterministic_kernel(grid, config, algorithm, *, budget, limit, strict):
    """Execute the LW-style deterministic greedy; see module docstring."""
    del algorithm  # parameter-free
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n = grid.n
    if n == 0:
        return {}, metrics
    indptr, indices = grid.indptr, grid.indices
    # Identical to the per-node setup: the phase counter starts at
    # ceil(log2(Delta + 2)) and every node counts down in lockstep.
    phase = int(math.ceil(math.log2(config.get("max_degree", 0) + 2)))
    covered = np.zeros(n, dtype=bool)
    in_ds = np.zeros(n, dtype=bool)
    joined_previous = np.zeros(n, dtype=bool)

    round_index = 0
    while True:
        # Report round (even): absorb joins, then either finish (phase
        # exhausted: uncovered nodes join themselves) or report coverage.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)
        if joined_previous.any():
            covered[segment_any(indptr, joined_previous[indices])] = True
        if phase < 1:
            in_ds |= ~covered
            metrics.record(round_metrics)
            break
        account_broadcasts(
            round_metrics, grid, None, 1,
            budget=budget, strict=strict, round_index=round_index,
        )
        metrics.record(round_metrics)
        round_index += 1

        # Join round (odd): span over the closed neighborhood vs 2^phase.
        if round_index >= limit:
            raise NonConvergenceError(rounds=round_index, pending=n)
        round_metrics = RoundMetrics(round_index=round_index, active_nodes=n)
        uncovered = ~covered
        span = uncovered.astype(np.int64) + segment_sum(
            indptr, uncovered[indices].astype(np.int64)
        )
        threshold = 1 << phase
        phase -= 1
        joining = (~in_ds) & (span >= threshold)
        in_ds |= joining
        covered |= joining
        account_broadcasts(
            round_metrics, grid, joining, 1,
            budget=budget, strict=strict, round_index=round_index,
        )
        metrics.record(round_metrics)
        joined_previous = joining
        round_index += 1

    outputs = output_dicts(grid.node_order, {"in_ds": in_ds.tolist()})
    return outputs, metrics
