"""Analytic CONGEST traffic accounting for the algorithm kernels.

A kernel never materialises a message: every round's traffic is a closed
form over the sender set (a broadcast from node ``v`` is ``degree(v)``
messages of the payload's estimated size).  The helpers here fold that
closed form into :class:`~repro.congest.metrics.RoundMetrics` with exactly
the reference engine's semantics:

* isolated senders are skipped entirely (no messages, no budget check, no
  ``max_message_bits`` contribution);
* the strict bandwidth check raises for the *first* offending sender in
  global node order, naming that sender's first neighbor as the receiver --
  the delivery the reference engine's per-message loop would have rejected;
* in non-strict mode oversized traffic is recorded, not rejected.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.congest.errors import BandwidthViolation

__all__ = ["account_broadcasts"]


def account_broadcasts(
    round_metrics,
    grid,
    senders: Optional[np.ndarray],
    bits: Union[int, np.ndarray],
    *,
    budget: int,
    strict: bool,
    round_index: int,
) -> None:
    """Fold one round's broadcasts into ``round_metrics``.

    ``senders`` is a boolean node mask (``None`` means every node
    broadcast); ``bits`` is either one scalar payload size shared by every
    sender or a per-node ``int64`` array.  Only senders with at least one
    neighbor count, matching the reference engine's "isolated broadcasts
    are free" behavior.
    """
    degrees = grid.degrees
    if senders is None:
        effective = degrees > 0
    else:
        effective = senders & (degrees > 0)
    if not effective.any():
        return
    if np.isscalar(bits):
        if budget and bits > budget and strict:
            first = int(np.argmax(effective))
            raise BandwidthViolation(
                grid.node_order[first],
                grid.first_neighbor_id(first),
                int(bits),
                budget,
                round_index=round_index,
            )
        messages = int(degrees[effective].sum())
        round_metrics.messages += messages
        round_metrics.bits += int(bits) * messages
        if bits > round_metrics.max_message_bits:
            round_metrics.max_message_bits = int(bits)
        return
    if budget and strict:
        oversized = effective & (bits > budget)
        if oversized.any():
            first = int(np.argmax(oversized))
            raise BandwidthViolation(
                grid.node_order[first],
                grid.first_neighbor_id(first),
                int(bits[first]),
                budget,
                round_index=round_index,
            )
    sender_degrees = degrees[effective]
    sender_bits = bits[effective]
    round_metrics.messages += int(sender_degrees.sum())
    round_metrics.bits += int(sender_bits @ sender_degrees)
    max_bits = int(sender_bits.max())
    if max_bits > round_metrics.max_message_bits:
        round_metrics.max_message_bits = max_bits
