"""CSR segment primitives shared by the algorithm kernels.

Everything in this module operates on the repository's standard CSR layout:
``indptr`` (length ``n + 1``) and ``indices`` (length ``2m``), with each
node's neighbor slice ``indices[indptr[i]:indptr[i + 1]]`` sorted ascending
by global node index -- exactly the order in which the reference engine
inserts inbox entries (see :class:`repro.congest.network.NetworkLayout`).

The primitives come in two flavors:

* **Exact integer/boolean reductions** (:func:`segment_sum`,
  :func:`segment_any`, :func:`segment_min`): order-independent, one NumPy
  pass over the edge array.
* **Order-exact float folds** (:class:`SequentialNeighborFold`): the paper's
  primal-dual algorithms accumulate floating point packing values from their
  inbox *in insertion order*, and float addition is not associative -- a
  pairwise or reordered summation would produce a different dominating set
  than the reference engine on some instances.  The fold therefore replays
  the reference engine's left-to-right accumulation exactly, but batched:
  iteration ``k`` adds every node's ``k``-th neighbor value in one
  vectorized scatter, so the Python-level work is ``O(max_degree)`` calls
  instead of ``O(n + m)`` handler invocations.

``tests/congest/test_kernel_primitives.py`` property-tests all of these
against brute-force per-node loops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "segment_sum",
    "segment_any",
    "segment_min",
    "segment_min_argrank",
    "int_bit_lengths",
    "SequentialNeighborFold",
]


def segment_sum(indptr: np.ndarray, edge_values: np.ndarray) -> np.ndarray:
    """Per-node sum of ``edge_values`` over each neighbor slice.

    ``edge_values`` has one entry per directed edge (aligned with
    ``indices``).  Computed via a cumulative sum so empty segments are
    handled uniformly; exact for integer and boolean inputs.
    """
    cumulative = np.zeros(len(edge_values) + 1, dtype=np.int64)
    np.cumsum(edge_values, out=cumulative[1:])
    return cumulative[indptr[1:]] - cumulative[indptr[:-1]]


def segment_any(indptr: np.ndarray, edge_flags: np.ndarray) -> np.ndarray:
    """Per-node "any neighbor flag set" over each neighbor slice."""
    return segment_sum(indptr, edge_flags.astype(np.int64, copy=False)) > 0


def segment_min(
    indptr: np.ndarray, edge_values: np.ndarray, empty: int
) -> np.ndarray:
    """Per-node minimum of ``edge_values``; ``empty`` for degree-0 nodes.

    Uses ``np.minimum.reduceat`` restricted to non-empty segments: the
    non-empty neighbor slices tile ``edge_values`` contiguously, so their
    start offsets are exactly the ``reduceat`` boundaries.
    """
    n = len(indptr) - 1
    out = np.full(n, empty, dtype=edge_values.dtype)
    nonempty = indptr[:-1] < indptr[1:]
    if edge_values.size:
        out[nonempty] = np.minimum.reduceat(edge_values, indptr[:-1][nonempty])
    return out


def segment_min_argrank(
    indptr: np.ndarray,
    edge_values: np.ndarray,
    edge_ranks: np.ndarray,
    minima: np.ndarray,
) -> np.ndarray:
    """Per-node minimum rank among the edges achieving the segment minimum.

    ``minima`` is the per-node segment minimum (from :func:`segment_min`);
    the return value for a node is the smallest ``edge_ranks`` entry over
    its edges whose value equals the minimum, or ``len(edge_ranks)`` for
    degree-0 nodes.  This is the vectorized form of "scan the neighbors in
    rank order and keep the first one attaining the minimum".
    """
    per_edge_min = np.repeat(minima, np.diff(indptr))
    sentinel = len(edge_ranks) + len(indptr)
    masked = np.where(edge_values == per_edge_min, edge_ranks, sentinel)
    return segment_min(indptr, masked, empty=sentinel)


def int_bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length()`` for a non-negative ``int64`` array."""
    out = np.zeros(len(values), dtype=np.int64)
    remaining = values.astype(np.int64, copy=True)
    while True:
        positive = remaining > 0
        if not positive.any():
            return out
        out[positive] += 1
        remaining >>= 1


class SequentialNeighborFold:
    """Order-exact closed-neighborhood float accumulation over a CSR layout.

    ``fold(values)`` returns, for every node ``v``,
    ``(((values[v] + values[u_1]) + values[u_2]) + ...)`` with ``u_1 < u_2 <
    ...`` the neighbors in global node order -- bit-for-bit the sum the
    reference engine's inbox loop produces.  The schedule is precomputed
    once per graph: nodes are ordered by descending degree so that "every
    node that still has a ``k``-th neighbor" is a prefix, and iteration
    ``k`` gathers all ``k``-th neighbor values in one shot.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        degrees = np.diff(indptr)
        n = len(degrees)
        self.max_degree = int(degrees.max()) if n else 0
        # Stable sort keeps equal-degree nodes in node order; only the
        # prefix property matters for correctness.
        by_degree = np.argsort(-degrees, kind="stable").astype(np.int64)
        ascending = np.sort(degrees)
        # prefix_counts[k] = number of nodes with degree > k.
        prefix_counts = n - np.searchsorted(
            ascending, np.arange(self.max_degree), side="right"
        )
        targets = []
        sources = []
        offsets = [0]
        for k in range(self.max_degree):
            nodes_k = by_degree[: prefix_counts[k]]
            targets.append(nodes_k)
            sources.append(indices[indptr[nodes_k] + k])
            offsets.append(offsets[-1] + len(nodes_k))
        self._targets = (
            np.concatenate(targets) if targets else np.empty(0, dtype=np.int64)
        )
        self._sources = (
            np.concatenate(sources) if sources else np.empty(0, dtype=np.int64)
        )
        self._offsets = offsets

    def fold(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Left-fold ``values`` over every closed neighborhood (see class doc)."""
        accumulator = values.copy() if out is None else np.copyto(out, values) or out
        targets, sources, offsets = self._targets, self._sources, self._offsets
        for k in range(len(offsets) - 1):
            chunk = slice(offsets[k], offsets[k + 1])
            # Targets within one iteration are distinct nodes, so fancy-index
            # addition is safe; sources read from the round-start snapshot.
            accumulator[targets[chunk]] += values[sources[chunk]]
        return accumulator
