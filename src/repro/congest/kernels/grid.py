"""The flattened graph view the algorithm kernels execute against.

A :class:`KernelGrid` is pure topology plus node weights: the CSR arrays,
the degree vector, and -- lazily, because only tie-breaking paths need them
-- the ``repr``-order machinery that reproduces the algorithms' deterministic
tie-breaks, and the order-exact float fold.  It deliberately knows nothing
about a run's configuration (``alpha``, ``max_degree`` knowledge, budgets),
so one grid is shared by every execution on the same graph:

* built from a :class:`~repro.congest.network.Network`, it is cached on the
  network's :class:`~repro.congest.network.NetworkLayout` (the same object
  the batched engine and the fault runtime compile against);
* built from a :class:`~repro.graphs.large_scale.CSRGraph`, it wraps the
  streamed arrays directly -- no per-node Python objects are ever created,
  which is what lets ``engine="kernel"`` execute 10^5-node instances.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Hashable, Optional, Sequence

import numpy as np

from repro.congest.kernels.csr import SequentialNeighborFold

__all__ = ["KernelGrid", "grid_from_network", "grid_from_csr", "output_dicts"]


class KernelGrid:
    """CSR topology + weights, with lazily built kernel machinery.

    ``indices`` must be sorted ascending within each node's slice (global
    node order -- the reference engine's inbox insertion order); both
    construction paths guarantee this.
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "degrees",
        "weights",
        "node_order",
        "_first_neighbor",
        "_reprs",
        "_repr_rank",
        "_fold",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        node_order: Sequence[Hashable],
        first_neighbor: Optional[Callable[[int], Hashable]] = None,
    ):
        self.n = len(indptr) - 1
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)
        self.weights = weights
        self.node_order = node_order
        self._first_neighbor = first_neighbor
        self._reprs: Optional[np.ndarray] = None
        self._repr_rank: Optional[np.ndarray] = None
        self._fold: Optional[SequentialNeighborFold] = None

    # -- tie-break machinery (lazy; only tie-breaking code paths pay) ------

    @property
    def reprs(self) -> np.ndarray:
        """``repr`` of every node id as a NumPy unicode array.

        NumPy's ``<U`` comparison is Python's ``str`` comparison, so
        elementwise tests on this array reproduce the algorithms'
        ``repr(u) < repr(v)`` tie-breaks exactly.
        """
        if self._reprs is None:
            self._reprs = np.array([repr(node) for node in self.node_order])
        return self._reprs

    @property
    def repr_rank(self) -> np.ndarray:
        """Rank of every node in ``sorted(nodes, key=repr)`` order.

        The stable sort breaks equal ``repr`` strings by node index, which
        matches ``sorted(inbox.items(), key=lambda item: repr(item[0]))``
        on an inbox whose insertion order is global node order.
        """
        if self._repr_rank is None:
            rank = np.empty(self.n, dtype=np.int64)
            rank[np.argsort(self.reprs, kind="stable")] = np.arange(self.n)
            self._repr_rank = rank
        return self._repr_rank

    @property
    def fold(self) -> SequentialNeighborFold:
        """The order-exact closed-neighborhood float fold (built once)."""
        if self._fold is None:
            self._fold = SequentialNeighborFold(self.indptr, self.indices)
        return self._fold

    # -- error-path helpers ------------------------------------------------

    def first_neighbor_id(self, index: int) -> Hashable:
        """The receiver the reference engine names first in a violation.

        For network-backed grids this is the node's first *context* neighbor
        (original adjacency order); CSR-backed grids use the first CSR
        neighbor.  Only consulted when raising :class:`BandwidthViolation`.
        """
        if self._first_neighbor is not None:
            return self._first_neighbor(index)
        return self.node_order[int(self.indices[self.indptr[index]])]


def grid_from_network(network: Any) -> KernelGrid:
    """Build (or fetch the cached) grid for a compiled :class:`Network`."""
    layout = network.layout()
    grid = layout.kernel_grid
    if grid is None:
        indptr, indices, _ = layout.csr()
        contexts = layout.contexts
        weights = np.fromiter(
            (context.weight for context in contexts),
            dtype=np.int64,
            count=len(contexts),
        )
        grid = KernelGrid(
            indptr,
            indices,
            weights,
            layout.node_order,
            first_neighbor=lambda index: contexts[index].neighbors[0],
        )
        layout.kernel_grid = grid
    return grid


def grid_from_csr(csr_graph: Any) -> KernelGrid:
    """Build (or fetch the cached) grid for a streamed ``CSRGraph``."""
    grid = getattr(csr_graph, "_kernel_grid", None)
    if grid is None:
        weights = csr_graph.weight_array()
        grid = KernelGrid(
            csr_graph.indptr,
            csr_graph.indices,
            weights,
            # CSR node ids are positional, so range *is* the node order.
            range(csr_graph.n),
        )
        csr_graph._kernel_grid = grid
    return grid


def output_dicts(
    node_order: Sequence[Hashable], columns: "dict", count: Optional[int] = None
) -> "dict":
    """Zip per-node column lists into the reference ``outputs`` mapping.

    ``columns`` maps field name to a plain Python list (one entry per node,
    already converted to native scalars); the result is
    ``{node_id: {field: value, ...}, ...}`` in node order, matching what
    ``algorithm.output`` would have produced node by node.  ``count`` keeps
    only the first ``count`` nodes: a sharded worker ships its own rows and
    must not pay the per-node dict cost of its halo (on large hash
    partitions the halo is most of the local grid).
    """
    names = list(columns)
    value_rows = zip(*(columns[name] for name in names))
    pairs = zip(node_order, value_rows)
    if count is not None:
        pairs = islice(pairs, count)
    return {node: dict(zip(names, row)) for node, row in pairs}
