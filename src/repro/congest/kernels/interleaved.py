"""Driver-based kernels for the nomination and unknown-parameters solvers.

:class:`~repro.baselines.lenzen_wattenhofer.LWRandomizedAlgorithm` and
:class:`~repro.core.unknown_params.UnknownDegreeMDSAlgorithm` have no
analytic closed form: the randomized baseline consults per-node RNG streams
and the Remark 4.4 variant interleaves its partial and extension phases with
data-dependent finishing.  Both are still node-loop-free per round, so they
run as *programs* under the :mod:`repro.congest.kernels.faults` driver --
the same vectorized round loop that applies fault plans -- with
:class:`~repro.congest.kernels.faults.NullHooks` standing in on plain runs.

The only per-node Python left is the randomized baseline's coin flips: the
reference engine draws from ``random.Random(f"{seed}:{node_id!r}")`` streams
whose consumption order is data-dependent, so the program replays exactly
those draws (typically a handful of nodes per phase) and vectorizes
everything else.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.congest.kernels.csr import int_bit_lengths, segment_min, segment_min_argrank, segment_sum
from repro.congest.kernels.faults import (
    KIND_DOMINATED,
    KIND_JOINED,
    KIND_NOMINATE,
    KIND_SPAN,
    KIND_UNCOVERED,
    KIND_WEIGHT_CD,
    KIND_X,
    KIND_X_SELECTED,
    run_program,
)
from repro.congest.kernels.grid import output_dicts
from repro.congest.message import word_size_bits
from repro.core.partial import theorem11_lambda

__all__ = ["lw_randomized_kernel", "unknown_degree_kernel"]


class _FaultedLWRandomized:
    """Four-round nomination phases of the LW randomized baseline."""

    def __init__(self, grid, config, seed):
        self.grid = grid
        self.seed = seed
        n = grid.n
        self.phases_left = np.full(
            n, int(math.ceil(math.log2(max(2, config["n"])))) + 2, np.int64
        )
        self.in_ds = np.zeros(n, dtype=bool)
        self.covered = np.zeros(n, dtype=bool)
        self.finished = np.zeros(n, dtype=bool)
        self.span = np.zeros(n, dtype=np.int64)
        self.pending_self = np.zeros(n, dtype=bool)
        self._rngs: dict = {}
        self._node_by_rank = None

    def _draw(self, index):
        """One coin flip from the node's private reference RNG stream."""
        rng = self._rngs.get(index)
        if rng is None:
            rng = random.Random(f"{self.seed}:{self.grid.node_order[index]!r}")
            self._rngs[index] = rng
        return rng.random()

    def step(self, round_index, acting, inbox, run):
        grid = self.grid
        n = grid.n
        step = round_index % 4
        if step == 0:
            # Absorb joins, finish exhausted phases, report coverage.
            if inbox is not None:
                self.covered |= inbox.any_truthy(KIND_JOINED)
            done = acting & (self.phases_left <= 0)
            if done.any():
                join = done & ~self.covered
                self.in_ds |= join
                self.covered |= join
                self.finished |= done
            reporting = acting & ~done
            self.phases_left[reporting] -= 1
            run.broadcast(
                round_index,
                reporting,
                KIND_UNCOVERED,
                bits=1,
                values=(~self.covered).astype(np.int64),
            )
        elif step == 1:
            span = (~self.covered).astype(np.int64)
            if inbox is not None:
                span = span + inbox.count_truthy(KIND_UNCOVERED)
            self.span[acting] = span[acting]
            run.broadcast(
                round_index,
                acting,
                KIND_SPAN,
                bits=np.maximum(1, int_bit_lengths(self.span) + 1),
                values=self.span,
            )
        elif step == 2:
            # Every inbox entry is a candidate (foreign payloads count as
            # span 0, like the reference's message.get("span", 0)); the max
            # key prefers larger span, then larger repr.
            rank = grid.repr_rank
            best = self.span * n + rank
            if inbox is not None:
                entry_span = np.where(inbox.kind == KIND_SPAN, inbox.ival, 0)
                np.maximum.at(best, inbox.recv, entry_span * n + rank[inbox.send])
            deciders = acting & ~self.covered
            if deciders.any():
                if self._node_by_rank is None:
                    self._node_by_rank = np.argsort(rank, kind="stable")
                nominee = self._node_by_rank[best % n]
                self_nominated = deciders & (nominee == np.arange(n))
                self.pending_self |= self_nominated
                senders = np.flatnonzero(deciders & ~self_nominated)
                if senders.size:
                    run.unicast(
                        round_index, senders, nominee[senders], KIND_NOMINATE, bits=1
                    )
        else:
            nominated = self.pending_self.copy()
            if inbox is not None:
                nominated |= inbox.any_truthy(KIND_NOMINATE)
            self.pending_self &= ~acting
            joiners = np.zeros(n, dtype=bool)
            for index in np.flatnonzero(acting & nominated & ~self.in_ds):
                if self._draw(int(index)) < 0.5:
                    joiners[index] = True
            self.in_ds |= joiners
            self.covered |= joiners
            run.broadcast(round_index, joiners, KIND_JOINED, bits=1)

    def outputs(self, count=None):
        return output_dicts(
            self.grid.node_order, {"in_ds": self.in_ds.tolist()}, count
        )


def lw_randomized_kernel(grid, config, algorithm, *, budget, limit, strict, seed=None, hooks=None):
    """Execute the LW-style randomized nomination baseline (driver-based)."""
    del algorithm  # parameter-free; randomness comes from the network seed
    if seed is None:
        raise ValueError(
            "the lw-randomized kernel needs the network seed to replay the "
            "per-node RNG streams"
        )
    return run_program(
        grid,
        hooks,
        _FaultedLWRandomized(grid, config, seed),
        budget=budget,
        limit=limit,
        strict=strict,
    )


class _FaultedUnknownDegree:
    """Remark 4.4 (unknown ``Delta``) as a driver program.

    The A/B/C iteration rounds become masked array updates; the per-edge
    ``neighbor_dominated`` latch and the received-weight table live as
    boolean arrays over the CSR edge list.
    """

    def __init__(self, grid, config, algorithm):
        self.grid = grid
        self.config = config
        self.epsilon = algorithm.epsilon
        n = grid.n
        edge_count = len(grid.indices)
        self.weights = grid.weights
        closed_degree = grid.degrees + 1
        self.setup_bits = (
            np.maximum(1, int_bit_lengths(self.weights) + 1)
            + np.maximum(1, int_bit_lengths(closed_degree) + 1)
        )
        self.float_bits = 2 * word_size_bits(max(2, n))
        self.one_plus_eps = 1.0 + self.epsilon
        self.join_threshold = self.weights / self.one_plus_eps
        self.x = np.zeros(n, dtype=np.float64)
        self.tau = np.zeros(n, dtype=np.int64)
        self.has_tau = np.zeros(n, dtype=bool)
        self.lam = np.zeros(n, dtype=np.float64)
        self.has_lam = np.zeros(n, dtype=bool)
        self.in_s = np.zeros(n, dtype=bool)
        self.in_s_prime = np.zeros(n, dtype=bool)
        self.dominated = np.zeros(n, dtype=bool)
        self.announce = np.zeros(n, dtype=bool)
        self.got_weight = np.zeros(edge_count, dtype=bool)
        self.neighbor_dominated = np.zeros(edge_count, dtype=bool)
        self.increase_count = np.zeros(n, dtype=np.int64)
        self.iterations = np.zeros(n, dtype=np.int64)
        self.finished = np.zeros(n, dtype=bool)

    def _setup_round_one(self, acting, inbox, run):
        grid = self.grid
        n = grid.n
        alpha = self.config.get("alpha")
        if alpha is None:
            raise ValueError("Remark 4.4 still assumes alpha is global knowledge")
        candidate_min = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        max_closed = (grid.degrees + 1).astype(np.int64)
        if inbox is not None:
            mask = inbox.kind == KIND_WEIGHT_CD
            receivers = inbox.recv[mask]
            if receivers.size:
                edges = run.edge_positions(receivers, inbox.send[mask])
                self.got_weight[edges] = True
                np.minimum.at(candidate_min, receivers, inbox.ival[mask])
                np.maximum.at(
                    max_closed, receivers, inbox.fval[mask].astype(np.int64)
                )
        tau_new = np.minimum(self.weights, candidate_min)
        self.tau[acting] = tau_new[acting]
        self.has_tau |= acting
        self.lam[acting] = theorem11_lambda(alpha, self.epsilon)
        self.has_lam |= acting
        x_new = tau_new / max_closed
        self.x[acting] = x_new[acting]

    def _cheapest_dominator(self, candidates):
        """Per-node cheapest received-weight neighbor (self on ties/empty)."""
        grid = self.grid
        sentinel = np.iinfo(np.int64).max
        received = np.where(self.got_weight, self.weights[grid.indices], sentinel)
        neighbor_min = segment_min(grid.indptr, received, empty=sentinel)
        remote = candidates & (neighbor_min < self.weights)
        targets = np.empty(0, dtype=np.int64)
        senders = np.flatnonzero(remote)
        if senders.size:
            min_rank = segment_min_argrank(
                grid.indptr, received, grid.repr_rank[grid.indices], neighbor_min
            )
            node_by_rank = np.argsort(grid.repr_rank, kind="stable")
            targets = node_by_rank[min_rank[remote]]
        return remote, senders, targets

    def _round_a(self, round_index, acting, inbox, run):
        grid = self.grid
        if inbox is not None:
            mask = (inbox.kind == KIND_DOMINATED) & (inbox.ival != 0)
            if mask.any():
                edges = run.edge_positions(inbox.recv[mask], inbox.send[mask])
                self.neighbor_dominated[edges] = True
        all_neighbors_dominated = (
            segment_sum(grid.indptr, self.neighbor_dominated.astype(np.int64))
            == grid.degrees
        )
        done = acting & self.dominated & all_neighbors_dominated
        self.finished |= done
        live = acting & ~done
        if not live.any():
            return
        # Fallback setup for nodes that slept through the setup rounds.
        need_tau = live & ~self.has_tau
        self.tau[need_tau] = self.weights[need_tau]
        self.has_tau |= need_tau
        need_lam = live & ~self.has_lam
        if need_lam.any():
            self.lam[need_lam] = theorem11_lambda(
                max(1, self.config.get("alpha") or 1), self.epsilon
            )
            self.has_lam |= need_lam
        self.iterations[live] += 1
        over = live & ~self.dominated & (self.x > self.lam * self.tau)
        remote, senders, targets = self._cheapest_dominator(over)
        joins_self = over & ~remote
        self.in_s_prime |= joins_self
        self.dominated |= joins_self
        self.announce |= joins_self
        run.unicast_neighborhood(
            round_index,
            live,
            self.x,
            KIND_X,
            senders,
            targets,
            KIND_X_SELECTED,
            bits=self.float_bits,
            sel_bits=self.float_bits + 1,
        )

    def _round_b(self, round_index, acting, inbox, run):
        load = (
            inbox.ordered_float_sum((KIND_X, KIND_X_SELECTED), self.x)
            if inbox is not None
            else self.x.copy()
        )
        if inbox is not None:
            selected = inbox.any_truthy(KIND_X_SELECTED)
            extension_join = acting & selected & ~self.in_s_prime
            self.in_s_prime |= extension_join
            self.dominated |= extension_join
            self.announce |= extension_join
        partial_join = acting & ~self.in_s & (load >= self.join_threshold)
        self.in_s |= partial_join
        self.dominated |= partial_join
        self.announce |= partial_join
        announcing = acting & self.announce
        self.announce &= ~acting
        run.broadcast(round_index, announcing, KIND_JOINED, bits=1)

    def _round_c(self, round_index, acting, inbox, run):
        if inbox is not None:
            self.dominated |= inbox.any_truthy(KIND_JOINED)
        undominated = acting & ~self.dominated
        self.x[undominated] *= self.one_plus_eps
        self.increase_count[undominated] += 1
        run.broadcast(
            round_index,
            acting,
            KIND_DOMINATED,
            bits=1,
            values=self.dominated.astype(np.int64),
        )

    def step(self, round_index, acting, inbox, run):
        if round_index == 0:
            run.broadcast(
                0,
                acting,
                KIND_WEIGHT_CD,
                bits=self.setup_bits,
                values=self.weights,
                fvalues=(self.grid.degrees + 1).astype(np.float64),
            )
            return
        if round_index == 1:
            if acting.any():
                self._setup_round_one(acting, inbox, run)
            return
        offset = (round_index - 2) % 3
        if offset == 0:
            self._round_a(round_index, acting, inbox, run)
        elif offset == 1:
            self._round_b(round_index, acting, inbox, run)
        else:
            self._round_c(round_index, acting, inbox, run)

    def outputs(self, count=None):
        n = self.grid.n if count is None else count
        tau_column = [
            int(value) if known else None
            for value, known in zip(self.tau[:n].tolist(), self.has_tau[:n].tolist())
        ]
        x_column = self.x[:n].tolist()
        return output_dicts(
            self.grid.node_order,
            {
                "in_ds": (self.in_s[:n] | self.in_s_prime[:n]).tolist(),
                "in_partial": self.in_s[:n].tolist(),
                "in_extension": self.in_s_prime[:n].tolist(),
                "x_partial": x_column,
                "x": x_column,
                "tau": tau_column,
                "iterations": self.iterations[:n].tolist(),
                "alpha_estimate": [None] * n,
                "fallback_join": [False] * n,
            },
            count,
        )


def unknown_degree_kernel(grid, config, algorithm, *, budget, limit, strict, seed=None, hooks=None):
    """Execute the Remark 4.4 unknown-``Delta`` variant (driver-based)."""
    del seed  # deterministic algorithm
    return run_program(
        grid,
        hooks,
        _FaultedUnknownDegree(grid, config, algorithm),
        budget=budget,
        limit=limit,
        strict=strict,
    )
