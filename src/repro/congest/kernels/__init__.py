"""Algorithm kernels: node-loop-free NumPy implementations over CSR arrays.

This package is the third execution tier (after the reference and batched
engines): for the paper's hot algorithms it replaces the per-node Python
handler loop with whole-graph array programs over the network's CSR layout,
scaling runs to 10^5+-node graphs while staying byte-identical to the
reference engine (same dominating sets, same per-round
:class:`~repro.congest.metrics.RunMetrics`).

Kernels are registered per *exact* algorithm class -- subclasses with
overridden behavior never silently inherit a kernel -- and resolved lazily,
so importing this package does not import NumPy or the algorithm modules.
Use :func:`register_kernel` to attach a kernel to a custom algorithm class;
a kernel is a callable ``kernel(grid, config, algorithm, *, budget, limit,
strict, seed=None, hooks=None) -> (outputs, RunMetrics)`` over a
:class:`~repro.congest.kernels.grid.KernelGrid`.  ``seed`` is the network
seed (randomized kernels replay the per-node RNG streams from it) and
``hooks`` an optional compiled :class:`~repro.faults.session.FaultSession`:
when present the kernel must apply the fault schedule -- the built-in
kernels do so through the vectorized driver in
:mod:`repro.congest.kernels.faults`.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Optional, Tuple, Union

from repro.congest.kernels.engine import KernelEngine

__all__ = [
    "KernelEngine",
    "KERNELS",
    "kernel_for",
    "has_kernel",
    "register_kernel",
    "kernel_algorithm_classes",
]


def _dotted(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


#: Registered kernels, keyed by the dotted path of the exact algorithm
#: class.  Values are either a resolved kernel callable or a lazy
#: ``(module, attribute)`` reference (resolved on first use, so the keys can
#: be declared without importing the algorithm or kernel modules).
KERNELS: Dict[str, Union[Callable, Tuple[str, str]]] = {
    "repro.core.trees.ForestMDSAlgorithm": (
        "repro.congest.kernels.forest", "forest_kernel",
    ),
    "repro.core.weighted.WeightedMDSAlgorithm": (
        "repro.congest.kernels.primal_dual", "primal_dual_kernel",
    ),
    "repro.core.unweighted.UnweightedMDSAlgorithm": (
        "repro.congest.kernels.primal_dual", "primal_dual_kernel",
    ),
    "repro.baselines.lenzen_wattenhofer.LWDeterministicAlgorithm": (
        "repro.congest.kernels.baseline", "lw_deterministic_kernel",
    ),
    "repro.baselines.lenzen_wattenhofer.LWRandomizedAlgorithm": (
        "repro.congest.kernels.interleaved", "lw_randomized_kernel",
    ),
    "repro.core.unknown_params.UnknownDegreeMDSAlgorithm": (
        "repro.congest.kernels.interleaved", "unknown_degree_kernel",
    ),
}


def kernel_for(algorithm) -> Optional[Callable]:
    """Return the kernel for ``algorithm``'s exact class, or ``None``.

    Dispatch is deliberately not ``isinstance``-based: a subclass may
    change round behavior the kernel does not replay, so only the exact
    registered classes match.
    """
    key = _dotted(type(algorithm))
    entry = KERNELS.get(key)
    if entry is None:
        return None
    if not callable(entry):
        module_name, attribute = entry
        entry = getattr(importlib.import_module(module_name), attribute)
        KERNELS[key] = entry
    return entry


def has_kernel(algorithm) -> bool:
    """Whether ``algorithm`` (an instance) executes on the kernel tier."""
    return _dotted(type(algorithm)) in KERNELS


def register_kernel(algorithm_class: type, kernel: Callable, replace: bool = False):
    """Register ``kernel`` for the exact ``algorithm_class``."""
    key = _dotted(algorithm_class)
    if not replace and key in KERNELS:
        raise ValueError(f"a kernel for {key} is already registered")
    KERNELS[key] = kernel
    return kernel


def kernel_algorithm_classes() -> Tuple[str, ...]:
    """Dotted class paths of every algorithm with a registered kernel."""
    return tuple(sorted(KERNELS))
