"""Vectorized fault application for the kernel execution tier.

The analytic kernels in this package exploit the *absence* of faults: with
every message delivered next round, each algorithm's whole schedule is known
in advance and rounds collapse into closed-form array updates.  A
:class:`~repro.faults.plan.FaultPlan` breaks that premise -- crashes, drops,
latency, and churn make delivery data-dependent -- so faulted kernel runs
instead execute a *driver*: an explicit round loop whose per-round work is
still pure array programs over the :class:`~repro.congest.kernels.grid.KernelGrid`.

The driver mirrors ``Engine._execute_hooked`` (the reference/batched hook
loop) exactly, but node sets are boolean masks and message traffic lives in
a columnar mailbox (five parallel arrays per emission batch) instead of
per-node dicts:

* :class:`FaultedRun` owns the loop, the mailbox, and the emission helpers
  (broadcast / single-target unicast / the interleaved neighborhood send of
  the unknown-parameters algorithm), including bandwidth accounting and the
  strict-budget violation with the same ``(sender, receiver, bits)`` naming
  as the per-node engines.
* Fault decisions come from :meth:`repro.faults.session.FaultSession.edge_fates`
  and the session's crash masks -- the same compiled schedule the per-node
  engines consume, so a fixed ``(plan, graph, seed)`` reproduces the exact
  byte-level execution across all three tiers.
* :class:`NullHooks` is the no-fault stand-in: driver-only kernels (the
  LW randomized and unknown-parameters variants have no analytic closed
  form) run under it for plain executions, and zero-fault parity pins them
  to the reference engine.

Message payloads are encoded as a per-entry ``kind`` code plus one integer
and one float column; every payload any kerneled algorithm sends fits this
shape (``{"weight": w, "closed_degree": d}`` uses both columns).  Inbox
semantics replicate the reference engine's dict assembly: per ``(receiver,
sender)`` pair the *first* arrival fixes the position and the *last* fixes
the value, and per-receiver entries are ordered by arrival position -- the
order the primal-dual float folds observe.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.congest.errors import BandwidthViolation, NonConvergenceError
from repro.congest.metrics import RoundMetrics, RunMetrics

__all__ = [
    "KIND_DEGREE",
    "KIND_WEIGHT",
    "KIND_WEIGHT_CD",
    "KIND_X",
    "KIND_X_SELECTED",
    "KIND_JOINED_S",
    "KIND_SELECTED",
    "KIND_JOINED",
    "KIND_UNCOVERED",
    "KIND_SPAN",
    "KIND_NOMINATE",
    "KIND_DOMINATED",
    "NullHooks",
    "Inbox",
    "FaultedRun",
    "run_program",
]

# Payload kind codes.  One code per distinct payload shape an algorithm
# emits; the integer/float columns carry the field values.
KIND_DEGREE = 0  # {"degree": ival}
KIND_WEIGHT = 1  # {"weight": ival}
KIND_WEIGHT_CD = 2  # {"weight": ival, "closed_degree": int(fval)}
KIND_X = 3  # {"x": fval}
KIND_X_SELECTED = 4  # {"x": fval, "selected": True}
KIND_JOINED_S = 5  # {"joined_s": True}
KIND_SELECTED = 6  # {"selected": True}
KIND_JOINED = 7  # {"joined": True}
KIND_UNCOVERED = 8  # {"uncovered": bool(ival)}
KIND_SPAN = 9  # {"span": ival}
KIND_NOMINATE = 10  # {"nominate": True}
KIND_DOMINATED = 11  # {"dominated": bool(ival)}


class NullHooks:
    """The empty hook set: no faults, every edge delivers next round.

    Driver-based kernels run under this object when no fault plan is
    attached; the driver then behaves exactly like the reference engine's
    plain round loop (``stop_at_limit`` off, ``NonConvergenceError`` without
    the pending-node list, no per-round fault metrics).
    """

    stop_at_limit = False
    report_pending_nodes = False
    faulty_nodes: Tuple = ()
    crashed_now = None
    permanently_crashed = None

    def begin_round(self, round_index: int) -> None:
        pass

    def edge_fates(self, round_index: int):
        return None, None

    def crashed_count(self) -> int:
        return 0

    def live_edge_count(self) -> Optional[int]:
        return None


class Inbox:
    """One round's delivered messages, columnar and sorted by receiver.

    ``recv``/``send`` are node indices, ``kind`` the payload code, ``ival``/
    ``fval`` the payload columns.  Entries are grouped by receiver and, per
    receiver, ordered by original arrival position -- the reference inbox's
    insertion order.
    """

    __slots__ = ("n", "recv", "send", "kind", "ival", "fval")

    def __init__(self, n, recv, send, kind, ival, fval):
        self.n = n
        self.recv = recv
        self.send = send
        self.kind = kind
        self.ival = ival
        self.fval = fval

    def any_truthy(self, kind_code: int) -> np.ndarray:
        """Per-node: any entry of ``kind_code`` with a truthy value."""
        mask = (self.kind == kind_code) & (self.ival != 0)
        return np.bincount(self.recv[mask], minlength=self.n) > 0

    def count_truthy(self, kind_code: int) -> np.ndarray:
        """Per-node count of truthy entries of ``kind_code``."""
        mask = (self.kind == kind_code) & (self.ival != 0)
        return np.bincount(self.recv[mask], minlength=self.n)

    def ordered_float_sum(self, kind_codes, base: np.ndarray) -> np.ndarray:
        """``base[v] + fval`` summed over matching entries in inbox order.

        Replays the reference engine's left-to-right float accumulation:
        iteration ``k`` adds every receiver's ``k``-th matching entry in one
        scatter.  Entries of other kinds contribute ``payload.get("x", 0.0)
        == 0.0``, which is exact, so they are simply skipped.  Visiting
        receivers in descending entry-count order makes each iteration a
        prefix slice, so total work stays linear in the entry count instead
        of ``entries * max_count``.
        """
        mask = self.kind == kind_codes[0]
        for code in kind_codes[1:]:
            mask |= self.kind == code
        recv = self.recv[mask]
        values = self.fval[mask]
        out = base.astype(np.float64, copy=True)
        if recv.size:
            starts = np.flatnonzero(np.r_[True, recv[1:] != recv[:-1]])
            lengths = np.diff(np.r_[starts, recv.size])
            by_count = np.argsort(-lengths, kind="stable")
            starts = starts[by_count]
            neg_lengths = -lengths[by_count]
            max_len = int(lengths.max())
            live = np.searchsorted(neg_lengths, -np.arange(max_len), side="left")
            for k, prefix in enumerate(live.tolist()):
                # Receivers with a k-th entry form a prefix of the
                # count-descending order; one scatter hits each exactly once,
                # so per-slot adds still happen strictly left to right.
                idx = starts[:prefix] + k
                out[recv[idx]] += values[idx]
        return out


class FaultedRun:
    """Round-loop driver for kernels executing under fault hooks.

    Owns the mailbox and all emission/accounting; a *program* object supplies
    the per-round state transition (``finished`` mask, ``step``, ``outputs``).
    """

    def __init__(self, grid, hooks, *, budget, strict, metrics):
        self.grid = grid
        self.hooks = hooks
        self.budget = budget
        self.strict = strict
        self.metrics = metrics
        self.round_metrics: Optional[RoundMetrics] = None
        n = grid.n
        self.edge_src = np.repeat(np.arange(n, dtype=np.int64), grid.degrees)
        # src * n + dst is strictly increasing over the CSR edge order, so
        # (src, dst) -> edge position is a single searchsorted.
        self._edge_keys = self.edge_src * n + grid.indices
        self._mail: dict = {}
        self._fates_round = -1
        self._fates: Tuple[Optional[np.ndarray], Optional[np.ndarray]] = (None, None)
        # Stable transpose permutation: edge positions ordered by receiver,
        # per receiver by ascending sender -- exactly the order the inbox
        # sort would produce, computed once instead of every round.
        self._recv_order: Optional[np.ndarray] = None

    # -- edge helpers ------------------------------------------------------

    def edge_positions(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """CSR edge positions of the directed edges ``src -> dst``."""
        return np.searchsorted(self._edge_keys, src * self.grid.n + dst)

    def _edge_fates(self, round_index: int):
        if self._fates_round != round_index:
            self._fates = self.hooks.edge_fates(round_index)
            self._fates_round = round_index
        return self._fates

    # -- mailbox -----------------------------------------------------------

    def _push(self, arrival, recv, send, kind, ival, fval, by_recv=False):
        if recv.size:
            self._mail.setdefault(arrival, []).append(
                (recv, send, kind, ival, fval, by_recv)
            )

    def _collect(self, round_index, crashed_now, acting):
        """Assemble this round's inbox; returns ``(Inbox | None, dropped)``."""
        batches = self._mail.pop(round_index, None)
        if not batches:
            return None, 0
        multi = len(batches) > 1
        if multi:
            recv = np.concatenate([batch[0] for batch in batches])
            send = np.concatenate([batch[1] for batch in batches])
            kind = np.concatenate([batch[2] for batch in batches])
            ival = np.concatenate([batch[3] for batch in batches])
            fval = np.concatenate([batch[4] for batch in batches])
            by_recv = False
        else:
            recv, send, kind, ival, fval, by_recv = batches[0]
        dropped = 0
        if crashed_now is not None:
            hit = crashed_now[recv]
            crashed_entries = int(hit.sum())
            if crashed_entries:
                dropped = crashed_entries
                keep = ~hit
                recv, send = recv[keep], send[keep]
                kind, ival, fval = kind[keep], ival[keep], fval[keep]
        if multi and recv.size:
            # Reference inbox dict semantics per (receiver, sender): the
            # first arrival fixes the entry's position, the last fixes its
            # value; a single batch has unique pairs, so only multi-batch
            # rounds (latency) pay for the dedupe.  Concatenation index is
            # arrival position and strictly increasing, so one stable sort
            # on the fused (receiver, sender) key is exactly the
            # (recv, send, position) lexsort.
            n_nodes = np.int64(self.grid.n)
            key = recv.astype(np.int64) * n_nodes + send
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            new_pair = np.r_[True, key_sorted[1:] != key_sorted[:-1]]
            starts = np.flatnonzero(new_pair)
            lasts = order[np.r_[starts[1:], key_sorted.size] - 1]
            first_pos = order[starts]
            group_key = key_sorted[starts]
            group_recv = group_key // n_nodes
            final = np.lexsort((first_pos, group_recv))
            recv = group_recv[final]
            send = (group_key - group_recv * n_nodes)[final]
            kind, ival, fval = kind[lasts][final], ival[lasts][final], fval[lasts][final]
        elif recv.size and not by_recv:
            order = np.argsort(recv, kind="stable")
            recv, send = recv[order], send[order]
            kind, ival, fval = kind[order], ival[order], fval[order]
        if recv.size:
            to_acting = acting[recv]
            if not to_acting.all():
                recv, send = recv[to_acting], send[to_acting]
                kind = kind[to_acting]
                ival, fval = ival[to_acting], fval[to_acting]
        if not recv.size:
            return None, dropped
        return Inbox(self.grid.n, recv, send, kind, ival, fval), dropped

    # -- emission ----------------------------------------------------------

    def _account_kept(self, kept_count, bits):
        """Per-delivery accounting for ``kept_count`` messages of one size."""
        rm = self.round_metrics
        rm.messages += kept_count
        rm.bits += int(bits) * kept_count
        if int(bits) > rm.max_message_bits:
            rm.max_message_bits = int(bits)

    def _deliver(self, round_index, kept_edges, recv, send, kind, ival, fval,
                 by_recv=False):
        """Bucket kept directed edges by arrival round and push batches."""
        rm = self.round_metrics
        keep, delays = self._fates
        del keep
        if delays is None:
            self._push(round_index + 1, recv, send, kind, ival, fval, by_recv)
            return
        kept_delays = delays[kept_edges]
        delayed = int((kept_delays > 0).sum())
        rm.delayed_messages += delayed
        if not delayed:
            self._push(round_index + 1, recv, send, kind, ival, fval, by_recv)
            return
        # One stable sort groups the batch by delay; each group is then a
        # contiguous slice in the original order, so a receiver-sorted batch
        # stays receiver-sorted within every group.
        order = np.argsort(kept_delays, kind="stable")
        recv, send = recv[order], send[order]
        kind, ival, fval = kind[order], ival[order], fval[order]
        grouped = kept_delays[order]
        present = np.flatnonzero(np.bincount(grouped))
        bounds = np.searchsorted(grouped, present, side="left")
        ends = np.r_[bounds[1:], grouped.size]
        for delay, lo, hi in zip(present.tolist(), bounds.tolist(), ends.tolist()):
            self._push(
                round_index + 1 + delay,
                recv[lo:hi],
                send[lo:hi],
                kind[lo:hi],
                ival[lo:hi],
                fval[lo:hi],
                by_recv,
            )

    def broadcast(self, round_index, senders, kind, *, bits, values=None, fvalues=None):
        """Broadcast one payload kind from every sender in ``senders``.

        ``bits`` is a scalar or a per-node array; ``values``/``fvalues`` are
        per-node payload columns sampled at emission time (``None`` means a
        constant truthy flag / zero float).
        """
        grid = self.grid
        degrees = grid.degrees
        effective = senders & (degrees > 0)
        if not effective.any():
            return
        scalar_bits = np.isscalar(bits) or np.ndim(bits) == 0
        if self.strict and self.budget:
            if scalar_bits:
                if int(bits) > self.budget:
                    first = int(np.argmax(effective))
                    raise BandwidthViolation(
                        grid.node_order[first],
                        grid.first_neighbor_id(first),
                        int(bits),
                        self.budget,
                        round_index=round_index,
                    )
            else:
                oversized = effective & (bits > self.budget)
                if oversized.any():
                    first = int(np.argmax(oversized))
                    raise BandwidthViolation(
                        grid.node_order[first],
                        grid.first_neighbor_id(first),
                        int(bits[first]),
                        self.budget,
                        round_index=round_index,
                    )
        mask = np.repeat(effective, degrees)
        emitted = int(mask.sum())
        keep, _ = self._edge_fates(round_index)
        if keep is not None:
            mask &= keep
        if self._recv_order is None:
            self._recv_order = np.argsort(grid.indices, kind="stable")
        # Filtering the transpose permutation yields the kept edges already
        # in inbox order (by receiver, per receiver by ascending sender), so
        # the collect step never has to sort a broadcast batch.
        kept = self._recv_order[mask[self._recv_order]]
        self.round_metrics.dropped_messages += int(emitted - kept.size)
        if not kept.size:
            return
        src = self.edge_src[kept]
        if scalar_bits:
            self._account_kept(int(kept.size), bits)
        else:
            counts = np.bincount(src, minlength=grid.n)
            rm = self.round_metrics
            rm.messages += int(kept.size)
            rm.bits += int(bits @ counts)
            largest = int(bits[counts > 0].max())
            if largest > rm.max_message_bits:
                rm.max_message_bits = largest
        size = kept.size
        ival = np.ones(size, np.int64) if values is None else values[src]
        fval = np.zeros(size, np.float64) if fvalues is None else fvalues[src]
        self._deliver(
            round_index,
            kept,
            grid.indices[kept],
            src,
            np.full(size, kind, np.int64),
            ival,
            fval,
            by_recv=True,
        )

    def unicast(self, round_index, senders_idx, targets_idx, kind, *, bits):
        """One single-target flag message per sender (``senders_idx`` ascending)."""
        if not senders_idx.size:
            return
        grid = self.grid
        if self.strict and self.budget and int(bits) > self.budget:
            raise BandwidthViolation(
                grid.node_order[int(senders_idx[0])],
                grid.node_order[int(targets_idx[0])],
                int(bits),
                self.budget,
                round_index=round_index,
            )
        edges = self.edge_positions(senders_idx, targets_idx)
        keep, _ = self._edge_fates(round_index)
        mask = None if keep is None else keep[edges]
        if mask is not None:
            kept_edges = edges[mask]
            src, dst = senders_idx[mask], targets_idx[mask]
        else:
            kept_edges, src, dst = edges, senders_idx, targets_idx
        self.round_metrics.dropped_messages += int(edges.size - kept_edges.size)
        if not kept_edges.size:
            return
        self._account_kept(int(kept_edges.size), bits)
        size = kept_edges.size
        self._deliver(
            round_index,
            kept_edges,
            dst,
            src,
            np.full(size, kind, np.int64),
            np.ones(size, np.int64),
            np.zeros(size, np.float64),
        )

    def unicast_neighborhood(
        self,
        round_index,
        senders,
        fvalues,
        kind,
        sel_src,
        sel_dst,
        sel_kind,
        *,
        bits,
        sel_bits,
    ):
        """Per-neighbor payloads with one upgraded entry per selecting sender.

        Every node in ``senders`` sends ``{kind, fval}`` to each neighbor;
        senders listed in ``sel_src`` (ascending) send ``sel_kind`` (and pay
        ``sel_bits``) on the edge to ``sel_dst`` instead.  This is the
        unknown-parameters A-round: the ``x`` value goes everywhere, with
        ``selected: True`` piggybacked on the chosen dominator's copy.
        """
        grid = self.grid
        degrees = grid.degrees
        effective = senders & (degrees > 0)
        if not effective.any():
            return
        if self.strict and self.budget and max(int(bits), int(sel_bits)) > self.budget:
            if int(bits) > self.budget:
                # Every delivery violates; the per-node engines name the
                # first sender's first neighbor, whose payload carries the
                # selected flag when that neighbor is the chosen dominator.
                first = int(np.argmax(effective))
                receiver = grid.first_neighbor_id(first)
                reported = int(bits)
                slot = int(np.searchsorted(sel_src, first))
                if (
                    slot < sel_src.size
                    and int(sel_src[slot]) == first
                    and grid.node_order[int(sel_dst[slot])] == receiver
                ):
                    reported = int(sel_bits)
                raise BandwidthViolation(
                    grid.node_order[first],
                    receiver,
                    reported,
                    self.budget,
                    round_index=round_index,
                )
            if sel_src.size:
                raise BandwidthViolation(
                    grid.node_order[int(sel_src[0])],
                    grid.node_order[int(sel_dst[0])],
                    int(sel_bits),
                    self.budget,
                    round_index=round_index,
                )
        edges = np.flatnonzero(np.repeat(effective, degrees))
        kind_all = np.full(edges.size, kind, np.int64)
        bits_all = np.full(edges.size, int(bits), np.int64)
        if sel_src.size:
            sel_edges = self.edge_positions(sel_src, sel_dst)
            slots = np.searchsorted(edges, sel_edges)
            kind_all[slots] = sel_kind
            bits_all[slots] = int(sel_bits)
        keep, _ = self._edge_fates(round_index)
        if keep is None:
            kept, kept_kind, kept_bits = edges, kind_all, bits_all
        else:
            mask = keep[edges]
            kept, kept_kind, kept_bits = edges[mask], kind_all[mask], bits_all[mask]
        rm = self.round_metrics
        rm.dropped_messages += int(edges.size - kept.size)
        if not kept.size:
            return
        rm.messages += int(kept.size)
        rm.bits += int(kept_bits.sum())
        largest = int(kept_bits.max())
        if largest > rm.max_message_bits:
            rm.max_message_bits = largest
        src = self.edge_src[kept]
        self._deliver(
            round_index,
            kept,
            grid.indices[kept],
            src,
            kept_kind,
            np.ones(kept.size, np.int64),
            fvalues[src],
        )

    # -- the round loop ----------------------------------------------------

    def run(self, program, limit):
        """Drive ``program`` to completion; returns its outputs."""
        grid, hooks, metrics = self.grid, self.hooks, self.metrics
        metrics.faulty_nodes = hooks.faulty_nodes
        round_index = 0
        while True:
            pending = ~program.finished
            hooks.begin_round(round_index)
            permanently_crashed = hooks.permanently_crashed
            runnable = (
                pending
                if permanently_crashed is None
                else pending & ~permanently_crashed
            )
            live = int(runnable.sum())
            if not live:
                break
            if round_index >= limit:
                if hooks.stop_at_limit:
                    metrics.stalled_nodes = live
                    break
                if hooks.report_pending_nodes:
                    raise NonConvergenceError(
                        rounds=round_index,
                        pending=live,
                        pending_nodes=[
                            grid.node_order[int(i)] for i in np.flatnonzero(runnable)
                        ],
                    )
                raise NonConvergenceError(rounds=round_index, pending=live)
            crashed_now = hooks.crashed_now
            acting = runnable if crashed_now is None else runnable & ~crashed_now
            inbox, arrival_dropped = self._collect(round_index, crashed_now, acting)
            round_metrics = RoundMetrics(
                round_index=round_index, active_nodes=int(acting.sum())
            )
            round_metrics.dropped_messages = arrival_dropped
            round_metrics.crashed_nodes = hooks.crashed_count()
            round_metrics.live_edges = hooks.live_edge_count()
            self.round_metrics = round_metrics
            program.step(round_index, acting, inbox, self)
            metrics.record(round_metrics)
            round_index += 1
        return program.outputs()


def run_program(grid, hooks, program, *, budget, limit, strict):
    """Execute one driver-based kernel program; returns ``(outputs, metrics)``."""
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    driver = FaultedRun(
        grid, hooks if hooks is not None else NullHooks(), budget=budget,
        strict=strict, metrics=metrics,
    )
    outputs = driver.run(program, limit)
    return outputs, metrics
