"""The synchronous round executor."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

import networkx as nx

from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.errors import AlgorithmError, BandwidthViolation, NonConvergenceError
from repro.congest.message import Broadcast, estimate_payload_bits, word_size_bits
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network

__all__ = ["Simulator", "RunResult", "run_algorithm"]

#: Default multiple of ``log2(n)`` allowed per message.  The model allows any
#: fixed constant; 16 words comfortably fits the handful of scalar fields the
#: implemented algorithms exchange while still scaling as ``O(log n)``.
DEFAULT_BANDWIDTH_WORDS = 16

#: Default hard cap on rounds, as a safety net against non-terminating bugs.
DEFAULT_MAX_ROUNDS = 100_000


@dataclass
class RunResult:
    """Outputs plus metrics of one simulated execution."""

    algorithm_name: str
    outputs: Dict[Hashable, Any]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def selected_nodes(self) -> set:
        """Return the nodes that joined the computed set.

        The dominating set algorithms in this repository output a mapping
        with an ``"in_ds"`` flag per node; plain truthy outputs are also
        accepted so simple algorithms can return booleans directly.
        """
        selected = set()
        for node, value in self.outputs.items():
            if isinstance(value, dict):
                if value.get("in_ds"):
                    selected.add(node)
            elif value:
                selected.add(node)
        return selected


class Simulator:
    """Executes a :class:`SynchronousAlgorithm` on a :class:`Network`.

    Parameters
    ----------
    bandwidth_words:
        Per-message budget in units of ``ceil(log2(n + 1))`` bits.  Only
        enforced for algorithms with ``congest = True``.
    max_rounds:
        Hard limit on the number of rounds; exceeded limits raise
        :class:`NonConvergenceError`.  Algorithms may lower this via
        :meth:`SynchronousAlgorithm.max_rounds`.
    strict:
        When ``True`` (default) a bandwidth violation raises immediately;
        when ``False`` it is only recorded in the metrics (useful for
        exploratory runs).
    """

    def __init__(
        self,
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        strict: bool = True,
    ):
        self.bandwidth_words = bandwidth_words
        self.max_rounds = max_rounds
        self.strict = strict

    def run(self, network: Network, algorithm: SynchronousAlgorithm) -> RunResult:
        """Run ``algorithm`` on ``network`` until all nodes finish."""
        network.reset()
        budget = 0
        if algorithm.congest:
            budget = self.bandwidth_words * word_size_bits(max(2, network.n))
        metrics = RunMetrics(bandwidth_budget_bits=budget)

        for node_id in network.node_ids():
            algorithm.setup(network.context(node_id))

        limit = algorithm.max_rounds(network)
        if limit is None:
            limit = self.max_rounds
        limit = min(limit, self.max_rounds)

        # inboxes[v] maps neighbor -> payload delivered at the start of this round.
        inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
            node_id: {} for node_id in network.node_ids()
        }

        round_index = 0
        while True:
            active = [
                node_id
                for node_id in network.node_ids()
                if not network.context(node_id).finished
            ]
            if not active:
                break
            if round_index >= limit:
                raise NonConvergenceError(rounds=round_index, pending=len(active))

            round_metrics = RoundMetrics(round_index=round_index, active_nodes=len(active))
            next_inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
                node_id: {} for node_id in network.node_ids()
            }

            for node_id in active:
                context = network.context(node_id)
                outbox = algorithm.round(context, round_index, inboxes[node_id])
                if outbox is None:
                    continue
                if isinstance(outbox, Broadcast):
                    deliveries = {neighbor: outbox.payload for neighbor in context.neighbors}
                else:
                    deliveries = dict(outbox)
                for neighbor, payload in deliveries.items():
                    if not network.are_neighbors(node_id, neighbor):
                        raise AlgorithmError(
                            f"node {node_id!r} attempted to send to non-neighbor {neighbor!r}"
                        )
                    bits = estimate_payload_bits(payload, max(2, network.n))
                    if budget and bits > budget:
                        if self.strict:
                            raise BandwidthViolation(node_id, neighbor, bits, budget)
                    round_metrics.messages += 1
                    round_metrics.bits += bits
                    round_metrics.max_message_bits = max(round_metrics.max_message_bits, bits)
                    next_inboxes[neighbor][node_id] = payload

            metrics.record(round_metrics)
            inboxes = next_inboxes
            round_index += 1

        outputs = {
            node_id: algorithm.output(network.context(node_id))
            for node_id in network.node_ids()
        }
        return RunResult(algorithm_name=algorithm.name, outputs=outputs, metrics=metrics)


def run_algorithm(
    graph: nx.Graph,
    algorithm: SynchronousAlgorithm,
    alpha: Optional[int] = None,
    config: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    knows_max_degree: bool = True,
    bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    strict: bool = True,
) -> RunResult:
    """Convenience wrapper: build a :class:`Network` and run ``algorithm`` on it."""
    network = Network(
        graph,
        alpha=alpha,
        config=config,
        seed=seed,
        knows_max_degree=knows_max_degree,
    )
    simulator = Simulator(
        bandwidth_words=bandwidth_words, max_rounds=max_rounds, strict=strict
    )
    return simulator.run(network, algorithm)
