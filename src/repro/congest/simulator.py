"""The synchronous round executor.

The :class:`Simulator` owns the *model* parameters -- the CONGEST bandwidth
budget, the round limit, strictness -- and delegates the actual round loop to
a pluggable :class:`~repro.congest.engine.Engine`.  Two engines ship with the
repository: the ``"reference"`` engine (the per-message oracle loop) and the
``"batched"`` engine (a NumPy-vectorized fast path over CSR-style adjacency
arrays).  They are observationally identical; see
:mod:`repro.congest.engine` and ``tests/congest/test_engine_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

import networkx as nx

from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.engine import EngineSpec, get_engine
from repro.congest.message import word_size_bits
from repro.congest.metrics import RunMetrics
from repro.congest.network import Network

__all__ = ["Simulator", "RunResult", "run_algorithm", "resolve_budget_and_limit"]


def resolve_budget_and_limit(
    algorithm: SynchronousAlgorithm, network, bandwidth_words: int, max_rounds: int
):
    """Return ``(budget_bits, round_limit)`` for one execution.

    The one definition of the CONGEST budget formula and the round-limit
    min-merge, shared by :meth:`Simulator.run` and the network-free CSR
    kernel path -- ``network`` only needs ``n`` (and whatever the
    algorithm's ``max_rounds`` reads), so a ``CSRGraph`` qualifies.
    """
    budget = 0
    if algorithm.congest:
        budget = bandwidth_words * word_size_bits(max(2, network.n))
    limit = algorithm.max_rounds(network)
    if limit is None:
        limit = max_rounds
    return budget, min(limit, max_rounds)

#: Default multiple of ``log2(n)`` allowed per message.  The model allows any
#: fixed constant; 16 words comfortably fits the handful of scalar fields the
#: implemented algorithms exchange while still scaling as ``O(log n)``.
DEFAULT_BANDWIDTH_WORDS = 16

#: Default hard cap on rounds, as a safety net against non-terminating bugs.
DEFAULT_MAX_ROUNDS = 100_000


@dataclass
class RunResult:
    """Outputs plus metrics of one simulated execution."""

    algorithm_name: str
    outputs: Dict[Hashable, Any]
    metrics: RunMetrics

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def selected_nodes(self) -> set:
        """Return the nodes that joined the computed set.

        The dominating set algorithms in this repository output a mapping
        with an ``"in_ds"`` flag per node; plain truthy outputs are also
        accepted so simple algorithms can return booleans directly.
        """
        selected = set()
        for node, value in self.outputs.items():
            if isinstance(value, dict):
                if value.get("in_ds"):
                    selected.add(node)
            elif value:
                selected.add(node)
        return selected


class Simulator:
    """Executes a :class:`SynchronousAlgorithm` on a :class:`Network`.

    Parameters
    ----------
    bandwidth_words:
        Per-message budget in units of ``ceil(log2(n + 1))`` bits.  Only
        enforced for algorithms with ``congest = True``.
    max_rounds:
        Hard limit on the number of rounds; exceeded limits raise
        :class:`NonConvergenceError`.  Algorithms may lower this via
        :meth:`SynchronousAlgorithm.max_rounds`.
    strict:
        When ``True`` (default) a bandwidth violation raises immediately;
        when ``False`` it is only recorded in the metrics (useful for
        exploratory runs).
    engine:
        Round-execution strategy: ``"reference"`` (per-message oracle loop),
        ``"batched"`` (vectorized fast path), an
        :class:`~repro.congest.engine.Engine` instance, or ``None`` for the
        process-wide default (initially ``"reference"``).  ``None`` is
        resolved at each :meth:`run`, so a later
        :func:`~repro.congest.engine.set_default_engine` affects already
        constructed simulators.
    """

    def __init__(
        self,
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        strict: bool = True,
        engine: EngineSpec = None,
    ):
        self.bandwidth_words = bandwidth_words
        self.max_rounds = max_rounds
        self.strict = strict
        get_engine(engine)  # fail fast on unknown engine names
        self.engine_spec = engine

    @property
    def engine(self):
        """The engine the next :meth:`run` will use."""
        return get_engine(self.engine_spec)

    def run(self, network: Network, algorithm: SynchronousAlgorithm) -> RunResult:
        """Run ``algorithm`` on ``network`` until all nodes finish."""
        network.reset()
        budget, limit = resolve_budget_and_limit(
            algorithm, network, self.bandwidth_words, self.max_rounds
        )

        outputs, metrics = self.engine.execute(
            network, algorithm, budget=budget, limit=limit, strict=self.strict
        )
        return RunResult(algorithm_name=algorithm.name, outputs=outputs, metrics=metrics)


def run_algorithm(
    graph: nx.Graph,
    algorithm: SynchronousAlgorithm,
    alpha: Optional[int] = None,
    config: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    knows_max_degree: bool = True,
    bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    strict: bool = True,
    engine: EngineSpec = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`Network` and run ``algorithm`` on it.

    ``engine`` selects the round executor (``"reference"`` or ``"batched"``);
    see :class:`Simulator`.
    """
    network = Network(
        graph,
        alpha=alpha,
        config=config,
        seed=seed,
        knows_max_degree=knows_max_degree,
    )
    simulator = Simulator(
        bandwidth_words=bandwidth_words,
        max_rounds=max_rounds,
        strict=strict,
        engine=engine,
    )
    return simulator.run(network, algorithm)
