"""Message payloads and CONGEST bit accounting.

A payload is a small mapping from short string field names to scalar values
(``bool``, ``int``, ``float`` or short ``str``).  The paper's algorithms only
ever exchange packing values, weights and membership flags, all of which are
encodable in ``O(log n)`` bits: a packing value is always of the form
``(1 + eps)^i * tau_v / (Delta + 1)`` and is therefore determined by the
integer ``i`` together with the integer ``tau_v`` (both ``O(log n)`` bits for
polynomially bounded weights).  The simulator transmits the floating point
value for convenience but *accounts* for it as two machine words of
``ceil(log2(n + 1))`` bits, which keeps the bandwidth check meaningful
without forcing every algorithm to hand-encode integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Union

__all__ = ["Broadcast", "Payload", "estimate_payload_bits", "word_size_bits"]

Scalar = Union[bool, int, float, str, None]
Payload = Mapping[str, Scalar]


@dataclass(frozen=True)
class Broadcast:
    """Wrapper meaning "send this same payload to every neighbor".

    Broadcasting the same ``O(log n)``-bit message to all neighbors is
    allowed in CONGEST (each edge still carries only that one message).
    """

    payload: Payload


def word_size_bits(n: int) -> int:
    """Return ``ceil(log2(n + 1))``, the bit width of a node identifier."""
    return max(1, math.ceil(math.log2(n + 1)))


def estimate_payload_bits(payload: Payload, n: int) -> int:
    """Estimate how many bits ``payload`` needs on the wire.

    * ``bool`` and ``None``: 1 bit.
    * ``int``: its two's-complement bit length (at least 1).
    * ``float``: two identifier words (see module docstring).
    * ``str``: 6 bits per character (field names are not counted; a real
      implementation would fix the message format statically).
    """
    word = word_size_bits(n)
    bits = 0
    for value in payload.values():
        if value is None or isinstance(value, bool):
            bits += 1
        elif isinstance(value, int):
            bits += max(1, value.bit_length() + 1)
        elif isinstance(value, float):
            bits += 2 * word
        elif isinstance(value, str):
            bits += 6 * len(value)
        else:
            raise TypeError(
                f"payload field of unsupported type {type(value).__name__}; "
                "only bool/int/float/str/None scalars may be sent"
            )
    return bits
