"""Per-worker emission/assembly runtime for the sharded tier.

:class:`ShardedRun` is the object the kernel *programs*
(:class:`~repro.congest.kernels.primal_dual._FaultedPrimalDual` and friends)
talk to inside a worker -- the sharded counterpart of
:class:`~repro.congest.kernels.faults.FaultedRun`.  It exposes the same
emission surface (``broadcast`` / ``unicast`` / ``unicast_neighborhood`` /
``edge_positions``) over the shard-local grid, but instead of a mailbox it
writes the round's outgoing state into the parity-buffered shared-memory
lanes, and instead of ``_collect`` it *pulls* the next round's inbox out of
its own CSR rows plus the peers' lanes.

Byte-identity discipline
------------------------

* **Ordering.**  ``FaultedRun`` hands every program an inbox grouped by
  receiver and, per receiver, ordered by ascending global sender.  Local
  rows keep the global-ascending neighbor order (see
  :mod:`~repro.congest.sharded.partition`), so scanning own rows in row
  order replays that order exactly for broadcast and neighborhood batches;
  unicast batches are rebuilt with one lexsort on ``(receiver, global
  sender)``.  ``ordered_float_sum`` and every fold downstream then see the
  reference insertion order.
* **Accounting.**  Each worker accounts exactly the messages its *own*
  nodes emit, with the single-process formulas; the coordinator sums
  ``messages``/``bits`` and maxes ``max_message_bits``, reproducing
  ``RoundMetrics`` field by field.
* **Violations.**  Strict-budget violations are not raised as
  :class:`~repro.congest.errors.BandwidthViolation` in the worker (its
  custom ``__init__`` does not survive pickling) but shipped as structured
  candidates; the coordinator picks the candidate with the smallest global
  sender index, which is precisely the node ``np.argmax`` finds first on
  the unsharded grid.
* **Snapshots.**  Payload columns are sampled at emission time in the
  single-process driver (``values[src]``), so the own-node columns are
  copied when emitted -- the program mutates them before assembly runs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.congest.kernels.faults import Inbox
from repro.congest.metrics import RoundMetrics
from repro.congest.sharded.shmem import (
    ETYPE_BROADCAST,
    ETYPE_NEIGHBORHOOD,
    ETYPE_NONE,
    ETYPE_UNICAST,
    HDR_ETYPE,
    HDR_KIND,
    HDR_SEL_KIND,
    LaneViews,
)

__all__ = ["ShardedRun", "ShardViolation"]

#: Bytes per boundary-node lane slot (int64 + float64 + sent flag).
_NODE_SLOT_BYTES = 17


class ShardViolation(Exception):
    """A strict-budget violation candidate, as a picklable payload.

    ``payload`` carries ``sender_global`` (the global node index, the
    coordinator's tie-break key), the sender/receiver labels, the reported
    bits, and the round index.
    """

    def __init__(self, payload: Dict[str, Any]):
        super().__init__(payload.get("sender"))
        self.payload = payload


class ShardedRun:
    """Emission + inbox assembly over one shard's local grid and lanes."""

    def __init__(self, grid, spec, views: LaneViews, *, budget, strict):
        self.grid = grid
        self.spec = spec
        self.views = views
        self.budget = budget
        self.strict = strict
        self.shard = spec.index
        self.round_metrics: Optional[RoundMetrics] = None
        self.halo_bytes = 0
        local_n = grid.n
        self.edge_src = np.repeat(np.arange(local_n, dtype=np.int64), grid.degrees)
        # Local rows keep *global*-ascending neighbor order, so (src, dst)
        # keys are not sorted (halo locals sort after own); one argsort
        # permutation makes edge_positions a searchsorted again.
        keys = self.edge_src * local_n + grid.indices
        self._key_order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[self._key_order]
        # Peer shards this shard exchanges with (symmetric: undirected
        # cross edges induce both lane directions).
        self._peers = sorted(spec.in_recv)
        # Owner peer of every halo local id.
        self._halo_peer = np.full(local_n, -1, dtype=np.int64)
        for peer, ids in spec.in_nodes.items():
            self._halo_peer[ids] = peer
        # Own-emission snapshots, per parity (the receiver-side half of the
        # lane protocol for messages that never cross a shard boundary).
        self._own_out: list = [None, None]

    # -- shared helpers ----------------------------------------------------

    def edge_positions(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Local CSR edge positions of the directed edges ``src -> dst``."""
        return self._key_order[
            np.searchsorted(self._sorted_keys, src * np.int64(self.grid.n) + dst)
        ]

    def begin_round(self, round_index: int) -> None:
        """Reset this round's stats and clear the outgoing parity buffer."""
        parity = (round_index + 1) % 2
        self._own_out[parity] = None
        header = self.views.header(parity, self.shard)
        header[HDR_ETYPE] = ETYPE_NONE
        self.round_metrics = RoundMetrics(round_index=round_index)
        self.halo_bytes = 0

    def _violation(self, sender_local, receiver, bits, round_index):
        grid = self.grid
        sender_local = int(sender_local)
        raise ShardViolation(
            {
                "type": "violation",
                "sender_global": int(self.spec.own[sender_local]),
                "sender": grid.node_order[sender_local],
                "receiver": receiver,
                "bits": int(bits),
                "round": round_index,
            }
        )

    # -- emission ----------------------------------------------------------

    def broadcast(self, round_index, senders, kind, *, bits, values=None, fvalues=None):
        grid = self.grid
        degrees = grid.degrees
        effective = senders & (degrees > 0)
        if not effective.any():
            return
        scalar_bits = np.isscalar(bits) or np.ndim(bits) == 0
        if self.strict and self.budget:
            if scalar_bits:
                if int(bits) > self.budget:
                    first = int(np.argmax(effective))
                    self._violation(
                        first, grid.first_neighbor_id(first), int(bits), round_index
                    )
            else:
                oversized = effective & (bits > self.budget)
                if oversized.any():
                    first = int(np.argmax(oversized))
                    self._violation(
                        first, grid.first_neighbor_id(first), int(bits[first]),
                        round_index,
                    )
        kept = int(degrees[effective].sum())
        rm = self.round_metrics
        rm.messages += kept
        if scalar_bits:
            rm.bits += int(bits) * kept
            if int(bits) > rm.max_message_bits:
                rm.max_message_bits = int(bits)
        else:
            rm.bits += int(bits[effective] @ degrees[effective])
            largest = int(bits[effective].max())
            if largest > rm.max_message_bits:
                rm.max_message_bits = largest
        own_n = self.spec.own_count
        parity = (round_index + 1) % 2
        self._own_out[parity] = (
            ETYPE_BROADCAST,
            int(kind),
            0,
            effective[:own_n].copy(),
            None if values is None else values[:own_n].copy(),
            None if fvalues is None else fvalues[:own_n].copy(),
            None,
        )
        header = self.views.header(parity, self.shard)
        header[HDR_KIND] = int(kind)
        header[HDR_ETYPE] = ETYPE_BROADCAST
        for peer, nodes in self.spec.out_nodes.items():
            ival, fval, sent = self.views.node_lane(parity, self.shard, peer)
            sent[:] = effective[nodes]
            ival[:] = 1 if values is None else values[nodes]
            fval[:] = 0.0 if fvalues is None else fvalues[nodes]
            self.halo_bytes += nodes.size * _NODE_SLOT_BYTES

    def unicast(self, round_index, senders_idx, targets_idx, kind, *, bits):
        if not senders_idx.size:
            return
        grid = self.grid
        if self.strict and self.budget and int(bits) > self.budget:
            self._violation(
                senders_idx[0],
                grid.node_order[int(targets_idx[0])],
                int(bits),
                round_index,
            )
        rm = self.round_metrics
        size = int(senders_idx.size)
        rm.messages += size
        rm.bits += int(bits) * size
        if int(bits) > rm.max_message_bits:
            rm.max_message_bits = int(bits)
        own_n = self.spec.own_count
        parity = (round_index + 1) % 2
        own_mask = targets_idx < own_n
        self._own_out[parity] = (
            ETYPE_UNICAST,
            int(kind),
            0,
            senders_idx[own_mask].copy(),
            targets_idx[own_mask].copy(),
            None,
            None,
        )
        header = self.views.header(parity, self.shard)
        header[HDR_KIND] = int(kind)
        header[HDR_ETYPE] = ETYPE_UNICAST
        self._zero_edge_lanes(parity)
        cross = ~own_mask
        if cross.any():
            self._flag_cross_edges(parity, senders_idx[cross], targets_idx[cross])

    def unicast_neighborhood(
        self, round_index, senders, fvalues, kind, sel_src, sel_dst, sel_kind,
        *, bits, sel_bits,
    ):
        grid = self.grid
        degrees = grid.degrees
        effective = senders & (degrees > 0)
        if not effective.any():
            return
        if self.strict and self.budget and max(int(bits), int(sel_bits)) > self.budget:
            if int(bits) > self.budget:
                first = int(np.argmax(effective))
                receiver = grid.first_neighbor_id(first)
                reported = int(bits)
                slot = int(np.searchsorted(sel_src, first))
                if (
                    slot < sel_src.size
                    and int(sel_src[slot]) == first
                    and grid.node_order[int(sel_dst[slot])] == receiver
                ):
                    reported = int(sel_bits)
                self._violation(first, receiver, reported, round_index)
            if sel_src.size:
                self._violation(
                    sel_src[0],
                    grid.node_order[int(sel_dst[0])],
                    int(sel_bits),
                    round_index,
                )
            # No local selecting sender: this shard's deliveries all fit,
            # exactly like the unsharded emission falling through.
        total = int(degrees[effective].sum())
        sel_count = int(sel_src.size)
        rm = self.round_metrics
        rm.messages += total
        rm.bits += int(bits) * total + (int(sel_bits) - int(bits)) * sel_count
        if sel_count == total:
            largest = int(sel_bits)
        elif sel_count:
            largest = max(int(bits), int(sel_bits))
        else:
            largest = int(bits)
        if largest > rm.max_message_bits:
            rm.max_message_bits = largest
        own_n = self.spec.own_count
        parity = (round_index + 1) % 2
        own_sel = sel_dst < own_n
        self._own_out[parity] = (
            ETYPE_NEIGHBORHOOD,
            int(kind),
            int(sel_kind),
            effective[:own_n].copy(),
            fvalues[:own_n].copy(),
            sel_src[own_sel].copy(),
            sel_dst[own_sel].copy(),
        )
        header = self.views.header(parity, self.shard)
        header[HDR_KIND] = int(kind)
        header[HDR_SEL_KIND] = int(sel_kind)
        header[HDR_ETYPE] = ETYPE_NEIGHBORHOOD
        for peer, nodes in self.spec.out_nodes.items():
            ival, fval, sent = self.views.node_lane(parity, self.shard, peer)
            sent[:] = effective[nodes]
            ival[:] = 1
            fval[:] = fvalues[nodes]
            self.halo_bytes += nodes.size * _NODE_SLOT_BYTES
        self._zero_edge_lanes(parity)
        cross = ~own_sel
        if cross.any():
            self._flag_cross_edges(parity, sel_src[cross], sel_dst[cross])

    def _zero_edge_lanes(self, parity: int) -> None:
        for peer in self.spec.out_edge_keys:
            lane = self.views.edge_lane(parity, self.shard, peer)
            lane[:] = 0

    def _flag_cross_edges(self, parity, src, dst):
        """Set the edge-lane flag of each cross pair ``src -> dst``."""
        local_n = np.int64(self.grid.n)
        peer_of = self._halo_peer[dst]
        for peer in np.unique(peer_of).tolist():
            mask = peer_of == peer
            keys = src[mask] * local_n + dst[mask]
            slots = np.searchsorted(self.spec.out_edge_keys[peer], keys)
            lane = self.views.edge_lane(parity, self.shard, peer)
            lane[slots] = 1
            self.halo_bytes += int(mask.sum())

    # -- inbox assembly ----------------------------------------------------

    def assemble(self, round_index: int, acting: np.ndarray) -> Optional[Inbox]:
        """Pull this round's inbox from own rows + the peers' lanes."""
        parity = round_index % 2
        views = self.views
        own = self._own_out[parity]
        etype = ETYPE_NONE if own is None else own[0]
        kind = 0 if own is None else own[1]
        sel_kind = 0 if own is None else own[2]
        live_peers = []
        for peer in self._peers:
            header = views.header(parity, peer)
            peer_etype = int(header[HDR_ETYPE])
            if peer_etype == ETYPE_NONE:
                continue
            if etype == ETYPE_NONE:
                etype = peer_etype
                kind = int(header[HDR_KIND])
                sel_kind = int(header[HDR_SEL_KIND])
            elif peer_etype != etype or int(header[HDR_KIND]) != kind:
                raise RuntimeError(
                    f"shard {peer} emitted (etype={peer_etype}) while this round "
                    f"is (etype={etype}, kind={kind}) -- programs emit one "
                    "batch per round, so headers must agree"
                )
            live_peers.append(peer)
        if etype == ETYPE_NONE:
            return None
        if etype == ETYPE_UNICAST:
            return self._assemble_unicast(parity, own, live_peers, kind, acting)
        return self._assemble_rowscan(
            parity, own, live_peers, etype, kind, sel_kind, acting
        )

    def _assemble_rowscan(self, parity, own, live_peers, etype, kind, sel_kind, acting):
        """Broadcast / neighborhood: scan own rows for senders that emitted.

        Row-scan order is (receiver ascending, per receiver ascending global
        sender) -- byte-for-byte the order ``FaultedRun`` delivers both
        batch shapes in.
        """
        grid = self.grid
        spec = self.spec
        local_n = grid.n
        own_n = spec.own_count
        sent = np.zeros(local_n, dtype=bool)
        ival = np.ones(local_n, dtype=np.int64)
        fval = np.zeros(local_n, dtype=np.float64)
        if own is not None:
            sent[:own_n] = own[3]
            if etype == ETYPE_BROADCAST:
                if own[4] is not None:
                    ival[:own_n] = own[4]
                if own[5] is not None:
                    fval[:own_n] = own[5]
            else:
                fval[:own_n] = own[4]
        for peer in live_peers:
            lane = self.views.node_lane(parity, peer, self.shard)
            if lane is None:
                continue
            lane_ival, lane_fval, lane_sent = lane
            ids = spec.in_nodes[peer]
            sent[ids] = lane_sent.astype(bool)
            ival[ids] = lane_ival
            fval[ids] = lane_fval
        entries = np.flatnonzero(sent[grid.indices])
        if not entries.size:
            return None
        recv = self.edge_src[entries]
        send = grid.indices[entries]
        kind_arr = np.full(entries.size, kind, dtype=np.int64)
        if etype == ETYPE_NEIGHBORHOOD:
            positions = []
            if own is not None and own[5] is not None and own[5].size:
                # Own selected pair (u -> v): the entry lives at the
                # receiver-side slot (v -> u) of the row scan.
                positions.append(self.edge_positions(own[6], own[5]))
            for peer in live_peers:
                lane = self.views.edge_lane(parity, peer, self.shard)
                if lane is None:
                    continue
                flagged = np.flatnonzero(lane)
                if flagged.size:
                    positions.append(spec.in_edge_pos[peer][flagged])
            if positions:
                slots = np.searchsorted(entries, np.concatenate(positions))
                kind_arr[slots] = sel_kind
            out_ival = np.ones(entries.size, dtype=np.int64)
            out_fval = fval[send]
        else:
            out_ival = ival[send]
            out_fval = fval[send]
        return self._finish(recv, send, kind_arr, out_ival, out_fval, acting)

    def _assemble_unicast(self, parity, own, live_peers, kind, acting):
        spec = self.spec
        recv_parts, send_parts, global_parts = [], [], []
        if own is not None and own[3].size:
            recv_parts.append(own[4])
            send_parts.append(own[3])
            global_parts.append(spec.own[own[3]])
        for peer in live_peers:
            lane = self.views.edge_lane(parity, peer, self.shard)
            if lane is None:
                continue
            flagged = np.flatnonzero(lane)
            if flagged.size:
                recv_parts.append(spec.in_recv[peer][flagged])
                send_parts.append(spec.in_send[peer][flagged])
                global_parts.append(spec.in_send_global[peer][flagged])
        if not recv_parts:
            return None
        recv = np.concatenate(recv_parts)
        send = np.concatenate(send_parts)
        send_global = np.concatenate(global_parts)
        # Own local ids ascend with global ids, so (recv, global sender) is
        # exactly the single-process (receiver, ascending-sender) order.
        order = np.lexsort((send_global, recv))
        recv, send = recv[order], send[order]
        size = recv.size
        return self._finish(
            recv,
            send,
            np.full(size, kind, dtype=np.int64),
            np.ones(size, dtype=np.int64),
            np.zeros(size, dtype=np.float64),
            acting,
        )

    def _finish(self, recv, send, kind_arr, ival, fval, acting):
        to_acting = acting[recv]
        if not to_acting.all():
            recv, send = recv[to_acting], send[to_acting]
            kind_arr = kind_arr[to_acting]
            ival, fval = ival[to_acting], fval[to_acting]
        if not recv.size:
            return None
        return Inbox(self.grid.n, recv, send, kind_arr, ival, fval)
