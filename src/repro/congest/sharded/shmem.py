"""Shared-memory transport for the sharded tier.

One run allocates two ``multiprocessing.shared_memory`` blocks:

* a **control block** -- one int64 row per shard (live count, status, and
  the round's reduced metrics) plus one coordinator row carrying the
  command word; and
* a **lane block** -- the halo-exchange message lanes, double-buffered by
  round parity.  Per parity: a 4-word header per shard (emission type,
  payload kind, selected kind) and, per directed shard pair, a packed node
  lane (``ival`` int64 / ``fval`` float64 / ``sent`` uint8 over the pair's
  boundary nodes) plus an edge-flag lane (uint8 over the pair's boundary
  edges, canonical ``(u_global, v_global)`` order).

The per-round protocol is two barriers, with the coordinator as an extra
party: at the **publish** barrier every worker's control row and outgoing
lanes for the round are visible; at the **command** barrier the coordinator
has written CONTINUE / FINISH / ABORT.  Double buffering by parity makes a
third barrier unnecessary: a worker executing round ``r`` writes parity
``(r + 1) % 2`` while every reader of parity ``r % 2`` has necessarily
passed the round-``r`` publish barrier.

:class:`ShardTransport` is the seam between the worker loop and the wiring:
an mpi4py backend would implement the same surface with window puts and an
``MPI.Barrier`` instead of shared memory -- nothing in
:mod:`~repro.congest.sharded.worker` or the coordinator would change.
"""

from __future__ import annotations

import abc
from threading import BrokenBarrierError
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CMD_ABORT",
    "CMD_CONTINUE",
    "CMD_FINISH",
    "CTRL_BITS",
    "CTRL_HALO_BYTES",
    "CTRL_LIVE",
    "CTRL_MAXBITS",
    "CTRL_MESSAGES",
    "CTRL_STATUS",
    "CTRL_WIDTH",
    "ETYPE_BROADCAST",
    "ETYPE_NEIGHBORHOOD",
    "ETYPE_NONE",
    "ETYPE_UNICAST",
    "HDR_ETYPE",
    "HDR_KIND",
    "HDR_SEL_KIND",
    "LaneLayout",
    "LaneViews",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_VIOLATION",
    "ShardTransport",
    "SharedMemoryEndpoint",
    "SharedMemoryTransport",
    "TransportError",
]

# Control-row slots (one int64 row per shard).
CTRL_LIVE = 0
CTRL_STATUS = 1
CTRL_MESSAGES = 2
CTRL_BITS = 3
CTRL_MAXBITS = 4
CTRL_HALO_BYTES = 5
CTRL_WIDTH = 8

# Coordinator-row slots (row index == shard count).
_CMD_SLOT = 0

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_VIOLATION = 2

CMD_CONTINUE = 0
CMD_FINISH = 1
CMD_ABORT = 2

# Per-shard, per-parity lane header words.
HDR_ETYPE = 0
HDR_KIND = 1
HDR_SEL_KIND = 2
_HDR_WORDS = 4

ETYPE_NONE = 0
ETYPE_BROADCAST = 1
ETYPE_UNICAST = 2
ETYPE_NEIGHBORHOOD = 3


class TransportError(RuntimeError):
    """A worker died, a barrier broke, or a wait timed out."""


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class LaneLayout:
    """Byte offsets of every lane in the shared block (computed once).

    ``node_counts[a, b]`` / ``edge_counts[a, b]`` size the directed pair
    ``a -> b``; zero-width pairs get no lane.  Offsets are parity-relative;
    parity ``p`` lives at ``p * parity_stride``.
    """

    def __init__(self, shards: int, node_counts: np.ndarray, edge_counts: np.ndarray):
        self.shards = shards
        self.header_offsets: List[int] = []
        self.node_offsets: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        self.edge_offsets: Dict[Tuple[int, int], int] = {}
        self.node_widths: Dict[Tuple[int, int], int] = {}
        self.edge_widths: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for shard in range(shards):
            self.header_offsets.append(cursor)
            cursor += _HDR_WORDS * 8
        for a in range(shards):
            for b in range(shards):
                count = int(node_counts[a, b])
                if a == b or count == 0:
                    continue
                ival = cursor
                fval = ival + 8 * count
                sent = fval + 8 * count
                cursor = _align8(sent + count)
                self.node_offsets[(a, b)] = (ival, fval, sent)
                self.node_widths[(a, b)] = count
        for a in range(shards):
            for b in range(shards):
                count = int(edge_counts[a, b])
                if a == b or count == 0:
                    continue
                self.edge_offsets[(a, b)] = cursor
                self.edge_widths[(a, b)] = count
                cursor = _align8(cursor + count)
        self.parity_stride = max(8, cursor)
        self.total_bytes = 2 * self.parity_stride

    def ctrl_bytes(self) -> int:
        return (self.shards + 1) * CTRL_WIDTH * 8


class LaneViews:
    """NumPy views over one process's mapping of the lane + control blocks."""

    def __init__(self, layout: LaneLayout, lanes_buf, ctrl_buf):
        self._layout = layout
        self._lanes = lanes_buf
        self.ctrl = np.frombuffer(
            ctrl_buf, dtype=np.int64, count=(layout.shards + 1) * CTRL_WIDTH
        ).reshape(layout.shards + 1, CTRL_WIDTH)

    def header(self, parity: int, shard: int) -> np.ndarray:
        offset = parity * self._layout.parity_stride + self._layout.header_offsets[shard]
        return np.frombuffer(self._lanes, dtype=np.int64, count=_HDR_WORDS, offset=offset)

    def node_lane(
        self, parity: int, a: int, b: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """The ``(ival, fval, sent)`` views of pair ``a -> b`` (or ``None``)."""
        spot = self._layout.node_offsets.get((a, b))
        if spot is None:
            return None
        count = self._layout.node_widths[(a, b)]
        base = parity * self._layout.parity_stride
        ival = np.frombuffer(self._lanes, dtype=np.int64, count=count, offset=base + spot[0])
        fval = np.frombuffer(self._lanes, dtype=np.float64, count=count, offset=base + spot[1])
        sent = np.frombuffer(self._lanes, dtype=np.uint8, count=count, offset=base + spot[2])
        return ival, fval, sent

    def edge_lane(self, parity: int, a: int, b: int) -> Optional[np.ndarray]:
        """The edge-flag view of pair ``a -> b`` (or ``None``)."""
        offset = self._layout.edge_offsets.get((a, b))
        if offset is None:
            return None
        count = self._layout.edge_widths[(a, b)]
        return np.frombuffer(
            self._lanes, dtype=np.uint8, count=count,
            offset=parity * self._layout.parity_stride + offset,
        )

    def release(self) -> None:
        """Drop every exported view so the underlying mapping can close."""
        self.ctrl = None
        self._lanes = None


class ShardTransport(abc.ABC):
    """The worker's view of the run's wiring (shared-memory or MPI).

    The worker loop only ever calls this surface; the sharded tier's
    correctness argument (two barriers, parity double-buffering) is stated
    against it, not against shared memory specifically.
    """

    #: LaneViews over the message lanes + control block.
    views: LaneViews
    #: This worker's shard index.
    shard: int

    @abc.abstractmethod
    def wait_publish(self) -> None:
        """Enter the publish barrier (control row + out-lanes visible)."""

    @abc.abstractmethod
    def wait_command(self) -> int:
        """Enter the command barrier; return the coordinator's command."""

    @abc.abstractmethod
    def put_error(self, payload: Any) -> None:
        """Ship a structured error/violation record to the coordinator."""

    @abc.abstractmethod
    def put_outputs(self, payload: Any) -> None:
        """Ship this shard's final outputs to the coordinator."""

    @abc.abstractmethod
    def abort(self) -> None:
        """Break both barriers so every party unblocks with an error."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release this process's mappings (never unlinks)."""


class SharedMemoryEndpoint:
    """The picklable handle a worker process receives.

    Carries the shared-memory names, the layout, both barriers and both
    queues; :meth:`attach` maps the blocks in the worker and returns the
    concrete :class:`ShardTransport`.
    """

    def __init__(self, shard, ctrl_name, lanes_name, layout, barrier_publish,
                 barrier_command, errors, outputs, timeout):
        self.shard = shard
        self.ctrl_name = ctrl_name
        self.lanes_name = lanes_name
        self.layout = layout
        self.barrier_publish = barrier_publish
        self.barrier_command = barrier_command
        self.errors = errors
        self.outputs = outputs
        self.timeout = timeout

    def attach(self) -> "_SharedMemoryWorker":
        from multiprocessing import shared_memory

        ctrl = shared_memory.SharedMemory(name=self.ctrl_name)
        lanes = shared_memory.SharedMemory(name=self.lanes_name)
        # Workers share the coordinator's resource tracker (fork and spawn
        # both hand the tracker fd down), and its cache is a name *set* --
        # the attach-side register is a no-op and the coordinator's unlink
        # deregisters exactly once, so nothing to compensate here.
        return _SharedMemoryWorker(self, ctrl, lanes)


class _SharedMemoryWorker(ShardTransport):
    """Worker-side transport: barriers + queues + mapped views."""

    def __init__(self, endpoint: SharedMemoryEndpoint, ctrl, lanes):
        self.shard = endpoint.shard
        self._endpoint = endpoint
        self._ctrl = ctrl
        self._lanes = lanes
        self.views = LaneViews(endpoint.layout, lanes.buf, ctrl.buf)

    def wait_publish(self) -> None:
        try:
            self._endpoint.barrier_publish.wait(self._endpoint.timeout)
        except BrokenBarrierError as exc:
            raise TransportError("publish barrier broke") from exc

    def wait_command(self) -> int:
        try:
            self._endpoint.barrier_command.wait(self._endpoint.timeout)
        except BrokenBarrierError as exc:
            raise TransportError("command barrier broke") from exc
        return int(self.views.ctrl[self._endpoint.layout.shards, _CMD_SLOT])

    def put_error(self, payload: Any) -> None:
        self._endpoint.errors.put(payload)

    def put_outputs(self, payload: Any) -> None:
        self._endpoint.outputs.put(payload)

    def abort(self) -> None:
        self._endpoint.barrier_publish.abort()
        self._endpoint.barrier_command.abort()

    def close(self) -> None:
        self.views.release()
        for segment in (self._ctrl, self._lanes):
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views already dropped
                pass


class SharedMemoryTransport:
    """Coordinator-side owner of the run's shared state.

    Allocates the blocks, builds the barriers (``shards + 1`` parties --
    the coordinator participates in both) and the error/output queues, and
    hands each worker a :class:`SharedMemoryEndpoint`.

    Construction is exception-safe: the segments are named files in
    ``/dev/shm`` that outlive the process unless unlinked, so if anything
    after the first allocation raises (the second allocation, a barrier or
    queue the context refuses to build), every segment created so far is
    unlinked before the exception propagates -- a failed constructor leaks
    nothing.
    """

    def __init__(self, ctx, shards: int, node_counts, edge_counts,
                 timeout: float = 120.0):
        from multiprocessing import shared_memory

        self.shards = shards
        self.timeout = timeout
        self.layout = LaneLayout(shards, node_counts, edge_counts)
        self._ctrl = None
        self._lanes = None
        self.views: Optional[LaneViews] = None
        self._unlinked = False
        try:
            self._ctrl = shared_memory.SharedMemory(
                create=True, size=self.layout.ctrl_bytes()
            )
            self._lanes = shared_memory.SharedMemory(
                create=True, size=self.layout.total_bytes
            )
            # Shared memory is zero-filled on creation: every header starts at
            # ETYPE_NONE and every control row at zero, which is exactly the
            # round-0 state the protocol assumes.
            self.barrier_publish = ctx.Barrier(shards + 1)
            self.barrier_command = ctx.Barrier(shards + 1)
            self.errors = ctx.SimpleQueue()
            self.outputs = ctx.SimpleQueue()
            self.views = LaneViews(self.layout, self._lanes.buf, self._ctrl.buf)
        except BaseException:
            self.close()
            raise

    def endpoint(self, shard: int) -> SharedMemoryEndpoint:
        return SharedMemoryEndpoint(
            shard, self._ctrl.name, self._lanes.name, self.layout,
            self.barrier_publish, self.barrier_command,
            self.errors, self.outputs, self.timeout,
        )

    # -- coordinator-side protocol ----------------------------------------

    def wait_publish(self) -> None:
        try:
            self.barrier_publish.wait(self.timeout)
        except BrokenBarrierError as exc:
            raise TransportError("publish barrier broke or timed out") from exc

    def send_command(self, command: int) -> None:
        self.views.ctrl[self.shards, _CMD_SLOT] = command
        try:
            self.barrier_command.wait(self.timeout)
        except BrokenBarrierError as exc:
            raise TransportError("command barrier broke or timed out") from exc

    def abort(self) -> None:
        self.barrier_publish.abort()
        self.barrier_command.abort()

    def drain_errors(self) -> List[Any]:
        drained = []
        while not self.errors.empty():
            drained.append(self.errors.get())
        return drained

    def close(self) -> None:
        """Release mappings and unlink the segments (idempotent).

        Tolerates partially constructed state -- it is the cleanup arm of
        ``__init__`` as well as the normal teardown path, so any segment
        may be ``None``.
        """
        if self.views is not None:
            self.views.release()
        for segment in (self._ctrl, self._lanes):
            if segment is None:
                continue
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views already dropped
                pass
        if not self._unlinked:
            self._unlinked = True
            for segment in (self._ctrl, self._lanes):
                if segment is None:
                    continue
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
