"""The sharded multi-process execution tier (``engine="sharded"``).

Hash-partitions a :class:`~repro.congest.kernels.grid.KernelGrid` across N
worker processes; each worker executes the existing driver-based kernel
programs on its local shard, with a boundary halo exchange between rounds
over ``multiprocessing.shared_memory`` lanes.  Results are byte-identical
to the single-process kernel engine and independent of the shard count --
see :mod:`repro.congest.sharded.engine` for the discipline that makes both
hold.

Modules
-------

``partition``
    splitmix64 node ownership, per-shard local CSR construction, and the
    precomputed boundary node/edge lane tables.
``shmem``
    The shared-memory transport: control block, double-buffered message
    lanes, barriers, and the :class:`~repro.congest.sharded.shmem.ShardTransport`
    seam an mpi4py backend could implement instead.
``halo``
    :class:`~repro.congest.sharded.halo.ShardedRun` -- the per-worker
    emission/assembly runtime the kernel programs talk to (the sharded
    counterpart of :class:`~repro.congest.kernels.faults.FaultedRun`).
``worker``
    The worker process entry point and the program-builder registry.
``engine``
    The coordinator loop, :class:`~repro.congest.sharded.engine.ShardedEngine`,
    and the sharded-tier telemetry registry.
"""

from repro.congest.sharded.engine import (
    ShardedEngine,
    has_sharded_program,
    run_sharded_program,
    sharded_metrics,
)
from repro.congest.sharded.partition import ShardPlan, ShardSpec, build_partition, shard_owner

__all__ = [
    "ShardedEngine",
    "ShardPlan",
    "ShardSpec",
    "build_partition",
    "has_sharded_program",
    "run_sharded_program",
    "shard_owner",
    "sharded_metrics",
]
