"""Worker process entry point for the sharded tier.

A worker attaches the run's shared-memory transport, builds its shard-local
:class:`~repro.congest.kernels.grid.KernelGrid`, instantiates the *same*
driver-based kernel program the single-process engine would run, and then
loops the two-barrier round protocol:

1. publish the control row (pending count, status, and the previous round's
   reduced stats) and enter the **publish** barrier;
2. enter the **command** barrier and read the coordinator's verdict --
   ``CONTINUE`` steps one more round, ``FINISH`` ships the shard's outputs,
   ``ABORT`` returns immediately;
3. on ``CONTINUE``: assemble the round's inbox from own rows + peer lanes,
   call ``program.step`` against the :class:`~repro.congest.sharded.halo.ShardedRun`,
   and carry the round's stats into the next publish.

Failures never raise across the process boundary raw: strict-budget
violations and program exceptions become structured payloads on the error
queue *before* the publish barrier (a queue put is a pipe write, so it
happens-before the coordinator's status read), and the coordinator rebuilds
the exact single-process exception.  Transport errors (a broken barrier
means some other party died) exit quietly -- the coordinator reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.congest.kernels.grid import KernelGrid
from repro.congest.sharded.halo import ShardedRun, ShardViolation
from repro.congest.sharded.partition import ShardSpec
from repro.congest.sharded.shmem import (
    CMD_CONTINUE,
    CMD_FINISH,
    CTRL_BITS,
    CTRL_HALO_BYTES,
    CTRL_LIVE,
    CTRL_MAXBITS,
    CTRL_MESSAGES,
    CTRL_STATUS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_VIOLATION,
    SharedMemoryEndpoint,
    TransportError,
)
from repro.obs.metrics import peak_rss_kib

__all__ = ["PROGRAM_BUILDERS", "WorkerTask", "worker_main"]


def _patch_float_bits(program, n_global: int) -> None:
    """Rescale a program's float width to the *global* node count.

    ``_FaultedPrimalDual`` / ``_FaultedUnknownDegree`` derive their float
    message width from ``grid.n``; on a shard-local grid that would shrink
    the width (and the bandwidth accounting) relative to the single-process
    run, so it is re-derived from the global ``n`` here.
    """
    from repro.congest.message import word_size_bits

    program.float_bits = 2 * word_size_bits(max(2, n_global))


def _build_forest(grid, config, algorithm, seed, n_global):
    from repro.congest.kernels.forest import _FaultedForest

    return _FaultedForest(grid)


def _build_primal_dual(grid, config, algorithm, seed, n_global):
    from repro.congest.kernels.primal_dual import _FaultedPrimalDual

    program = _FaultedPrimalDual(grid, config, algorithm)
    _patch_float_bits(program, n_global)
    return program


def _build_lw_deterministic(grid, config, algorithm, seed, n_global):
    from repro.congest.kernels.baseline import _FaultedLWDeterministic

    return _FaultedLWDeterministic(grid, config)


def _build_lw_randomized(grid, config, algorithm, seed, n_global):
    from repro.congest.kernels.interleaved import _FaultedLWRandomized

    return _FaultedLWRandomized(grid, config, seed)


def _build_unknown_degree(grid, config, algorithm, seed, n_global):
    from repro.congest.kernels.interleaved import _FaultedUnknownDegree

    program = _FaultedUnknownDegree(grid, config, algorithm)
    _patch_float_bits(program, n_global)
    return program


#: Program-kind name -> builder.  Keys match
#: :data:`repro.congest.sharded.engine.SHARDED_PROGRAMS` values.
PROGRAM_BUILDERS = {
    "forest": _build_forest,
    "primal_dual": _build_primal_dual,
    "lw_deterministic": _build_lw_deterministic,
    "lw_randomized": _build_lw_randomized,
    "unknown_degree": _build_unknown_degree,
}


@dataclass
class WorkerTask:
    """Everything one worker process needs (picklable)."""

    endpoint: SharedMemoryEndpoint
    spec: ShardSpec
    program: str
    config: Dict[str, Any]
    algorithm: Any
    seed: Optional[int]
    budget: int
    strict: bool
    n_global: int


def _error_payload(exc: BaseException, shard: int, round_index: int) -> Dict[str, Any]:
    return {
        "type": "error",
        "shard": shard,
        "round": round_index,
        "exc_type": type(exc).__name__,
        "message": str(exc),
    }


def worker_main(task: WorkerTask) -> None:
    """Process entry point: attach, loop, and always release the mappings."""
    transport = task.endpoint.attach()
    try:
        _worker_loop(task, transport)
    except TransportError:
        # Some other party died or timed out; the coordinator reports it.
        pass
    except BaseException as exc:  # pragma: no cover - loop failures are caught inside
        try:
            transport.put_error(_error_payload(exc, task.spec.index, -1))
        finally:
            transport.abort()
    finally:
        transport.close()


def _worker_loop(task: WorkerTask, transport) -> None:
    spec = task.spec
    views = transport.views
    own_n = spec.own_count
    first_neighbor = None
    if spec.firsts is not None:
        firsts = spec.firsts
        first_neighbor = lambda index: firsts[index]  # noqa: E731
    grid = KernelGrid(
        spec.indptr, spec.indices, spec.weights, spec.labels,
        first_neighbor=first_neighbor,
    )
    run = ShardedRun(grid, spec, views, budget=task.budget, strict=task.strict)
    pending_error: Optional[Dict[str, Any]] = None
    program = None
    try:
        builder = PROGRAM_BUILDERS[task.program]
        program = builder(grid, task.config, task.algorithm, task.seed, task.n_global)
    except BaseException as exc:
        pending_error = _error_payload(exc, spec.index, 0)

    ctrl = views.ctrl[spec.index]
    stats = (0, 0, 0, 0)
    round_index = 0
    while True:
        if pending_error is not None or program is None:
            live = 0
            status = (
                STATUS_VIOLATION
                if pending_error and pending_error.get("type") == "violation"
                else STATUS_ERROR
            )
        else:
            live = int((~program.finished[:own_n]).sum())
            status = STATUS_OK
        ctrl[CTRL_LIVE] = live
        ctrl[CTRL_STATUS] = status
        ctrl[CTRL_MESSAGES] = stats[0]
        ctrl[CTRL_BITS] = stats[1]
        ctrl[CTRL_MAXBITS] = stats[2]
        ctrl[CTRL_HALO_BYTES] = stats[3]
        if pending_error is not None:
            # The queue put is a pipe write that happens-before our publish
            # barrier entry, so the coordinator's drain always finds it.
            transport.put_error(pending_error)
            pending_error = None
        transport.wait_publish()
        command = transport.wait_command()
        if command == CMD_FINISH:
            # Own rows only: the halo is most of the local grid on large
            # hash partitions, and its per-node dicts would dominate the
            # worker's peak RSS (the coordinator discards them anyway).
            outputs = {} if program is None else program.outputs(own_n)
            maxrss_kib = peak_rss_kib()
            transport.put_outputs((spec.index, outputs, maxrss_kib))
            return
        if command != CMD_CONTINUE:
            return
        acting = np.zeros(grid.n, dtype=bool)
        acting[:own_n] = ~program.finished[:own_n]
        run.begin_round(round_index)
        inbox = run.assemble(round_index, acting)
        try:
            program.step(round_index, acting, inbox, run)
        except ShardViolation as exc:
            payload = dict(exc.payload)
            payload["shard"] = spec.index
            pending_error = payload
        except BaseException as exc:
            pending_error = _error_payload(exc, spec.index, round_index)
        round_metrics = run.round_metrics
        stats = (
            int(round_metrics.messages),
            int(round_metrics.bits),
            int(round_metrics.max_message_bits),
            int(run.halo_bytes),
        )
        round_index += 1
