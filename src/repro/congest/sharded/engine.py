"""The sharded-tier coordinator and the ``"sharded"`` engine.

``run_sharded_program`` is the sharded counterpart of
:func:`repro.congest.kernels.faults.run_program`: it partitions the global
grid, spawns one worker process per shard, and drives the two-barrier round
protocol from the coordinator seat -- deciding CONTINUE / FINISH / ABORT
from the reduced control rows exactly where the single-process driver's
round loop decides from ``pending``.

Byte-identity discipline (the run-level half; the per-round half lives in
:mod:`~repro.congest.sharded.halo`):

* **Metrics.**  Each round's ``messages``/``bits`` are summed and
  ``max_message_bits`` maxed across shards from the single-process
  per-emission formulas, and ``active_nodes`` is the global pending count
  sampled where the driver samples it, so ``RunMetrics`` reduces field by
  field to the kernel engine's.
* **Outputs.**  Shards ship their *own* rows only; the merge inserts them
  in ascending global node order, reproducing the single-process output
  dict's insertion order (and hence its pickle bytes).
* **Errors.**  Pre-spawn validation replays the single-process raise
  precedence for config-level failures; worker-side failures arrive as
  structured payloads and are rebuilt as the exact exception -- violations
  resolve to the candidate with the smallest global sender index, which is
  the node the unsharded ``np.argmax`` reports.

Shard-count independence follows from the same discipline: nothing
observable depends on the partition, only on global node order.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.engine import Engine
from repro.congest.errors import (
    BandwidthViolation,
    EngineCapabilityError,
    NonConvergenceError,
)
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.sharded.partition import build_partition
from repro.congest.sharded.shmem import (
    CMD_ABORT,
    CMD_CONTINUE,
    CMD_FINISH,
    CTRL_BITS,
    CTRL_HALO_BYTES,
    CTRL_LIVE,
    CTRL_MAXBITS,
    CTRL_MESSAGES,
    CTRL_STATUS,
    STATUS_OK,
    SharedMemoryTransport,
    TransportError,
)
from repro.congest.sharded.worker import WorkerTask, worker_main
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SHARDED_PROGRAMS",
    "ShardedEngine",
    "has_sharded_program",
    "run_sharded_program",
    "sharded_metrics",
]

#: Telemetry registry for the sharded tier; the serve endpoint merges it
#: into ``/metrics`` next to the service registry.
sharded_metrics = MetricsRegistry()

#: Dotted algorithm class path -> worker program kind.  Mirrors (and must
#: stay a subset of) :data:`repro.congest.kernels.KERNELS` -- the sharded
#: tier distributes exactly the driver-based kernel programs.
SHARDED_PROGRAMS: Dict[str, str] = {
    "repro.core.trees.ForestMDSAlgorithm": "forest",
    "repro.core.weighted.WeightedMDSAlgorithm": "primal_dual",
    "repro.core.unweighted.UnweightedMDSAlgorithm": "primal_dual",
    "repro.baselines.lenzen_wattenhofer.LWDeterministicAlgorithm": "lw_deterministic",
    "repro.baselines.lenzen_wattenhofer.LWRandomizedAlgorithm": "lw_randomized",
    "repro.core.unknown_params.UnknownDegreeMDSAlgorithm": "unknown_degree",
}

#: How long the output-collection poll waits before declaring a dead worker.
_OUTPUT_POLL_SECONDS = 0.001


def _dotted(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def has_sharded_program(algorithm) -> bool:
    """Whether ``algorithm`` (an instance) executes on the sharded tier.

    Dispatch is by exact class, like the kernel tier: a subclass may change
    round behavior the distributed program does not replay.
    """
    return _dotted(type(algorithm)) in SHARDED_PROGRAMS


def _algorithm_label(algorithm) -> str:
    return getattr(algorithm, "name", type(algorithm).__name__)


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _prevalidate(program_kind: str, grid, config, algorithm, seed) -> None:
    """Replay the single-process raise precedence for config-level errors.

    These exceptions fire during program *construction* in the unsharded
    run; raising them here, before any process spawns, keeps the failure
    cheap and the message byte-identical.
    """
    if program_kind == "lw_randomized" and seed is None:
        raise ValueError(
            "the lw-randomized kernel needs the network seed to replay the "
            "per-node RNG streams"
        )
    if program_kind == "primal_dual" and grid.n:
        from repro.congest.kernels.primal_dual import _validated_schedule

        _validated_schedule(grid, config, algorithm)


def _rebuild_error(payloads: List[Dict[str, Any]], budget: int) -> BaseException:
    """Turn drained worker payloads into the single-process exception.

    Errors win over violations (a config-level raise precedes any emission
    in the unsharded round); among violations the candidate with the
    smallest global sender index is the node the unsharded ``np.argmax``
    finds first.
    """
    errors = [p for p in payloads if p.get("type") == "error"]
    if errors:
        return _reconstruct_exception(min(errors, key=lambda p: p.get("shard", 0)))
    violations = [p for p in payloads if p.get("type") == "violation"]
    if violations:
        pick = min(violations, key=lambda p: p["sender_global"])
        return BandwidthViolation(
            pick["sender"], pick["receiver"], pick["bits"], budget,
            round_index=pick["round"],
        )
    return TransportError("a shard worker failed without reporting an error")


def _reconstruct_exception(payload: Dict[str, Any]) -> BaseException:
    import builtins

    from repro.congest import errors as congest_errors

    name = payload.get("exc_type", "RuntimeError")
    candidate = getattr(congest_errors, name, None) or getattr(builtins, name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, BaseException)):
        candidate = RuntimeError
    message = payload.get("message", "")
    try:
        return candidate(message)
    except Exception:  # pragma: no cover - exotic constructor signature
        return RuntimeError(message)


def run_sharded_program(
    grid,
    config,
    algorithm,
    *,
    budget: int,
    limit: int,
    strict: bool,
    seed: Optional[int] = None,
    shards: Optional[int] = None,
    start_method: Optional[str] = None,
    barrier_timeout: Optional[float] = None,
    tracer: Optional[Any] = None,
) -> Tuple[dict, RunMetrics]:
    """Execute one kernel program across shard worker processes.

    Same contract as a kernel callable: returns ``(outputs, RunMetrics)``
    byte-identical to the single-process run.  ``shards`` defaults to 2;
    ``start_method`` to ``fork`` where available (``spawn`` requires the
    algorithm instance to be picklable); ``barrier_timeout`` bounds every
    barrier wait so a crashed worker surfaces as :class:`TransportError`
    instead of a hang.
    """
    program_kind = SHARDED_PROGRAMS.get(_dotted(type(algorithm)))
    if program_kind is None:
        raise EngineCapabilityError(
            f"algorithm {_algorithm_label(algorithm)!r} has no sharded program; "
            "engine='sharded' supports exactly the kerneled algorithms",
            algorithm=_algorithm_label(algorithm),
            engine="sharded",
        )
    _prevalidate(program_kind, grid, config, algorithm, seed)
    metrics = RunMetrics(bandwidth_budget_bits=budget)
    n_global = grid.n
    if n_global == 0:
        return {}, metrics
    shard_count = 2 if shards is None else int(shards)
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")

    node_labels = None if isinstance(grid.node_order, range) else grid.node_order
    first_neighbor = (
        grid.first_neighbor_id if grid._first_neighbor is not None else None
    )
    plan = build_partition(
        grid.indptr, grid.indices, grid.weights, shard_count,
        node_labels=node_labels, first_neighbor=first_neighbor,
    )
    ctx = multiprocessing.get_context(start_method or _default_start_method())
    timeout = 120.0 if barrier_timeout is None else float(barrier_timeout)
    transport = SharedMemoryTransport(
        ctx, shard_count, plan.node_counts, plan.edge_counts, timeout=timeout
    )
    workers = []
    # From here on the transport owns /dev/shm segments: *everything* after
    # construction runs inside the try whose finally unlinks them, so no
    # exception window can leak a segment.
    try:
        sharded_metrics.counter(
            "sharded_runs_total", "Sharded-tier runs started", program=program_kind
        ).inc()
        # Session hands the shared read-only MappingProxyType config straight
        # through; proxies cannot pickle, and the spawn start method pickles
        # every WorkerTask, so ship a plain-dict copy.
        config = dict(config) if config is not None else None
        for shard in range(shard_count):
            task = WorkerTask(
                endpoint=transport.endpoint(shard),
                spec=plan.specs[shard],
                program=program_kind,
                config=config,
                algorithm=algorithm,
                seed=seed,
                budget=budget,
                strict=strict,
                n_global=n_global,
            )
            process = ctx.Process(target=worker_main, args=(task,), daemon=True)
            process.start()
            workers.append(process)
        outputs = _coordinate(
            transport, plan, metrics, limit=limit, budget=budget,
            tracer=tracer, workers=workers,
        )
        return outputs, metrics
    finally:
        for process in workers:
            process.join(timeout=5)
        for process in workers:
            if process.is_alive():  # pragma: no cover - crash/abort cleanup
                process.terminate()
                process.join(timeout=5)
        # An in-flight exception's traceback pins the coordinator frames,
        # whose locals hold NumPy views over the shared blocks; with those
        # pointers exported, close() could not unmap and the segment would
        # fall to the GC (raising from __del__).  Error paths never need
        # the frame locals, so drop them before releasing the mappings.
        exception = sys.exc_info()[1]
        if exception is not None:
            traceback.clear_frames(exception.__traceback__)
        transport.close()


def _coordinate(transport, plan, metrics, *, limit, budget, tracer, workers):
    """The coordinator's round loop -- the driver loop, one barrier removed.

    At publish barrier ``r`` every control row carries the shard's pending
    count *before* round ``r`` and its stats *from* round ``r - 1``, so the
    loop records round ``r - 1``, then decides round ``r`` exactly like the
    single-process driver: statuses first (an exception aborts before its
    round is recorded), then convergence, then the round limit.
    """
    shards = plan.shards
    ctrl = transport.views.ctrl
    rounds_counter = sharded_metrics.counter(
        "sharded_rounds_total", "Rounds driven by the sharded coordinator"
    )
    halo_counter = sharded_metrics.counter(
        "sharded_halo_bytes_total", "Halo-exchange payload bytes shipped"
    )
    round_index = 0
    prev_live = 0
    try:
        while True:
            transport.wait_publish()
            statuses = ctrl[:shards, CTRL_STATUS]
            if (statuses != STATUS_OK).any():
                transport.send_command(CMD_ABORT)
                raise _rebuild_error(transport.drain_errors(), budget)
            if round_index > 0:
                halo_bytes = int(ctrl[:shards, CTRL_HALO_BYTES].sum())
                round_metrics = RoundMetrics(
                    round_index=round_index - 1,
                    messages=int(ctrl[:shards, CTRL_MESSAGES].sum()),
                    bits=int(ctrl[:shards, CTRL_BITS].sum()),
                    max_message_bits=int(ctrl[:shards, CTRL_MAXBITS].max()),
                    active_nodes=prev_live,
                )
                metrics.record(round_metrics)
                rounds_counter.inc()
                halo_counter.inc(halo_bytes)
                if tracer is not None:
                    tracer.event(
                        "sharded_round",
                        round=round_index - 1,
                        active_nodes=prev_live,
                        messages=round_metrics.messages,
                        halo_bytes=halo_bytes,
                    )
            live = int(ctrl[:shards, CTRL_LIVE].sum())
            if live == 0:
                transport.send_command(CMD_FINISH)
                break
            if round_index >= limit:
                transport.send_command(CMD_ABORT)
                raise NonConvergenceError(rounds=round_index, pending=live)
            transport.send_command(CMD_CONTINUE)
            prev_live = live
            round_index += 1
    except TransportError:
        payloads = transport.drain_errors()
        if payloads:
            raise _rebuild_error(payloads, budget) from None
        dead = [w.exitcode for w in workers if w.exitcode not in (0, None)]
        raise TransportError(
            f"shard worker(s) died mid-run (exit codes {dead})"
            if dead
            else "sharded transport broke mid-run"
        ) from None
    return _collect_outputs(transport, plan, workers, tracer)


def _collect_outputs(transport, plan, workers, tracer):
    """Merge shard outputs in ascending global node order.

    Column-name strings are canonicalised across shards: the single-process
    ``output_dicts`` shares one name object across every per-node dict, and
    ``result_bytes`` pickles with a memo, so equal-but-distinct unpickled
    names per shard would change the byte form without changing any value.
    """
    items: List[Optional[tuple]] = [None] * plan.specs[0].n_global
    names: Dict[str, str] = {}
    deadline = time.monotonic() + transport.timeout
    collected = 0
    while collected < plan.shards:
        if transport.outputs.empty():
            if time.monotonic() > deadline:
                raise TransportError("timed out collecting shard outputs")
            time.sleep(_OUTPUT_POLL_SECONDS)
            continue
        shard_index, shard_outputs, maxrss_kib = transport.outputs.get()
        for global_id, (node, row) in zip(
            plan.specs[shard_index].own.tolist(), shard_outputs.items()
        ):
            items[global_id] = (
                node,
                {names.setdefault(name, name): value for name, value in row.items()},
            )
        if tracer is not None:
            tracer.event(
                "sharded_shard",
                shard=shard_index,
                own_nodes=int(plan.specs[shard_index].own.size),
                maxrss_kib=maxrss_kib,
            )
        collected += 1
    return dict(item for item in items if item is not None)


class ShardedEngine(Engine):
    """The fourth execution tier: partitioned CSR kernels with halo exchange.

    Supports exactly the kerneled algorithms and only fault-free runs --
    anything else raises :class:`EngineCapabilityError` so sweeps surface
    the cell as a structured skip, never a silent fallback.
    """

    name = "sharded"
    universal = False

    def __init__(
        self,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        barrier_timeout: Optional[float] = None,
    ):
        self.shards = shards
        self.start_method = start_method
        self.barrier_timeout = barrier_timeout

    def execute(self, network, algorithm, *, budget, limit, strict, hooks=None):
        label = _algorithm_label(algorithm)
        if hooks is not None:
            raise EngineCapabilityError(
                "fault plans are not supported on engine='sharded'; run "
                "faulted cells on engine='kernel'",
                algorithm=label,
                engine=self.name,
                fault_model="faulted",
            )
        if not has_sharded_program(algorithm):
            raise EngineCapabilityError(
                f"algorithm {label!r} has no sharded program; engine='sharded' "
                "supports exactly the kerneled algorithms",
                algorithm=label,
                engine=self.name,
            )
        from repro.congest.kernels.grid import grid_from_network

        grid = grid_from_network(network)
        outputs, metrics = run_sharded_program(
            grid, network.config, algorithm,
            budget=budget, limit=limit, strict=strict,
            seed=network.seed, shards=self.shards,
            start_method=self.start_method,
            barrier_timeout=self.barrier_timeout,
        )
        metrics.engine_used = self.name
        return outputs, metrics
