"""Node partitioning and per-shard local CSR construction.

Ownership is a pure hash of the *global node index* (splitmix64 modulo the
shard count), so a partition is deterministic in ``(n, shards)`` and needs
no coordination.  Each shard's local universe is

* its **own** nodes (ascending global index), whose CSR rows are complete --
  every global neighbor appears, renumbered to a local id, with the row's
  global-ascending neighbor order preserved; followed by
* its **halo** nodes (ascending global index): foreign neighbors of own
  nodes.  Halo rows are empty (degree 0) -- halo state is written only by
  the round's incoming message lanes.

Keeping rows in global neighbor order (rather than sorted local ids) is
what lets the worker's pull-based inbox assembly replay the reference
engine's per-receiver insertion order exactly; the price is that local
``(src, dst) -> edge position`` lookups need an argsort permutation, which
:class:`~repro.congest.sharded.halo.ShardedRun` builds once.

The boundary tables are precomputed here, in the coordinator, per directed
shard pair ``(a, b)``:

* **node lanes** -- own nodes of ``a`` with at least one neighbor owned by
  ``b``, ascending global.  The mirror on ``b`` (halo nodes owned by ``a``,
  ascending global) is positionally identical, so a lane is just packed
  parallel arrays with no per-message framing.
* **edge lanes** -- the directed cross edges ``u in a -> v in b`` in
  canonical ``(u_global, v_global)`` order, with the receiver-side mirror
  carrying the local receiver id, the sender's halo id, and the local CSR
  position of the receiver's ``v -> u`` slot (for the unknown-parameters
  selected-edge upgrade).

Every global directed edge lands in exactly one shard's local rows, and
every cross edge in exactly one out-lane and its mirror -- the round-trip
property the hypothesis suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["GlobalIds", "ShardPlan", "ShardSpec", "build_partition", "shard_owner"]


def shard_owner(n: int, shards: int) -> np.ndarray:
    """Owner shard of every global node index: ``splitmix64(i) % shards``.

    splitmix64 is the standard 64-bit finalizer -- cheap, stateless, and
    well-mixed, so shard loads are balanced without any graph knowledge.
    ``shards == 1`` short-circuits to zeros (the identity partition).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return np.zeros(n, dtype=np.int64)
    z = np.arange(n, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return (z % np.uint64(shards)).astype(np.int64)


class GlobalIds:
    """A ``node_order`` over global *positional* ids, backed by an array.

    Wraps the concatenated own+halo global-index array so local grids on
    CSR-backed runs never materialise a Python list per node; ``__getitem__``
    and iteration yield plain Python ints (``repr`` of a NumPy scalar would
    poison the tie-break machinery).
    """

    __slots__ = ("_ids",)

    def __init__(self, ids: np.ndarray):
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [int(value) for value in self._ids[index]]
        return int(self._ids[index])

    def __iter__(self):
        return iter(self._ids.tolist())


@dataclass
class ShardSpec:
    """Everything one worker needs about its shard (picklable, array-backed)."""

    index: int
    n_global: int
    own: np.ndarray  # global indices of owned nodes, ascending
    halo: np.ndarray  # global indices of halo nodes, ascending
    indptr: np.ndarray  # local CSR over own rows + empty halo rows
    indices: np.ndarray  # local ids, global-ascending within each row
    weights: np.ndarray
    labels: Sequence  # global node ids/labels for own + halo, local order
    firsts: Optional[List] = None  # first-neighbor labels per own node (network grids)
    # Directed boundary tables, keyed by peer shard:
    out_nodes: Dict[int, np.ndarray] = field(default_factory=dict)  # local own ids
    in_nodes: Dict[int, np.ndarray] = field(default_factory=dict)  # local halo ids
    out_edge_keys: Dict[int, np.ndarray] = field(default_factory=dict)  # sorted src*ln+dst
    in_recv: Dict[int, np.ndarray] = field(default_factory=dict)  # local own recv ids
    in_send: Dict[int, np.ndarray] = field(default_factory=dict)  # local halo sender ids
    in_send_global: Dict[int, np.ndarray] = field(default_factory=dict)
    in_edge_pos: Dict[int, np.ndarray] = field(default_factory=dict)  # recv-row CSR slots

    @property
    def own_count(self) -> int:
        return int(self.own.size)

    @property
    def local_n(self) -> int:
        return int(self.own.size + self.halo.size)


@dataclass
class ShardPlan:
    """A full partition: ownership vector, shard specs, and lane sizing."""

    shards: int
    owner: np.ndarray
    specs: List[ShardSpec]
    node_counts: np.ndarray  # [a, b] = node-lane width of directed pair a -> b
    edge_counts: np.ndarray  # [a, b] = edge-lane width of directed pair a -> b

    @property
    def boundary_nodes(self) -> int:
        return int(self.node_counts.sum())

    @property
    def boundary_edges(self) -> int:
        return int(self.edge_counts.sum())


def build_partition(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    shards: int,
    *,
    node_labels: Optional[Sequence] = None,
    first_neighbor: Optional[Any] = None,
) -> ShardPlan:
    """Partition a global CSR graph into ``shards`` worker-local shards.

    ``node_labels`` is the global ``node_order`` (omit for positional CSR
    graphs, where labels *are* the global indices); ``first_neighbor`` is
    the optional label callback network-backed grids use for bandwidth
    violations -- it is evaluated here, in the coordinator, because the
    callback closes over per-node contexts and cannot cross the process
    boundary.
    """
    n = len(indptr) - 1
    owner = shard_owner(n, shards)
    degrees = np.diff(indptr).astype(np.int64)
    node_counts = np.zeros((shards, shards), dtype=np.int64)
    edge_counts = np.zeros((shards, shards), dtype=np.int64)
    specs: List[ShardSpec] = []
    positional = node_labels is None

    per_shard = []
    for k in range(shards):
        own = np.flatnonzero(owner == k)
        take = _row_positions(indptr, own)
        nbr = indices[take].astype(np.int64)
        nbr_owner = owner[nbr]
        own_deg = degrees[own]
        row_of_edge = np.repeat(np.arange(own.size, dtype=np.int64), own_deg)
        foreign = nbr_owner != k
        halo = np.unique(nbr[foreign])
        own_n = own.size
        local = np.empty(nbr.size, dtype=np.int64)
        local[~foreign] = np.searchsorted(own, nbr[~foreign])
        local[foreign] = own_n + np.searchsorted(halo, nbr[foreign])
        indptr_own = np.zeros(own_n + 1, dtype=np.int64)
        np.cumsum(own_deg, out=indptr_own[1:])
        indptr_local = np.concatenate(
            [indptr_own, np.full(halo.size, indptr_own[-1], dtype=np.int64)]
        )
        weights_local = np.concatenate([weights[own], weights[halo]])
        if positional:
            labels: Sequence = GlobalIds(np.concatenate([own, halo]))
            firsts = None
        else:
            labels = [node_labels[int(g)] for g in own] + [
                node_labels[int(g)] for g in halo
            ]
            firsts = None
            if first_neighbor is not None:
                firsts = [
                    first_neighbor(int(g)) if degrees[g] else None for g in own
                ]
        spec = ShardSpec(
            index=k,
            n_global=n,
            own=own,
            halo=halo,
            indptr=indptr_local,
            indices=local,
            weights=weights_local,
            labels=labels,
            firsts=firsts,
        )
        per_shard.append((spec, nbr, nbr_owner, row_of_edge, local))
        specs.append(spec)

    for k, (spec, nbr, nbr_owner, row_of_edge, local) in enumerate(per_shard):
        own = spec.own
        own_n = own.size
        local_n = spec.local_n
        halo = spec.halo
        halo_owner = owner[halo] if halo.size else np.empty(0, dtype=np.int64)
        for s in range(shards):
            if s == k:
                continue
            # Incoming node lane from s: halo nodes owned by s (ascending
            # global) -- positionally identical to s's out_nodes[k].
            in_nodes = own_n + np.flatnonzero(halo_owner == s)
            if in_nodes.size:
                spec.in_nodes[s] = in_nodes.astype(np.int64)
            # Outgoing node lane to s: own nodes with a neighbor owned by s.
            mask = nbr_owner == s
            if mask.any():
                out_rows = np.unique(row_of_edge[mask])
                spec.out_nodes[s] = out_rows
                node_counts[k, s] = out_rows.size
                # Outgoing edge lane to s: cross edges in row-major order,
                # which *is* (u_global, v_global) order -- rows ascend by
                # global owner id and, within a row, foreign locals ascend
                # with the global neighbor id.
                spec.out_edge_keys[s] = row_of_edge[mask] * local_n + local[mask]
                edge_counts[k, s] = int(mask.sum())
                # Receiver-side mirror of the *reverse* lane s -> k: cross
                # edges (u in s) -> (v = own row), reordered to s's
                # canonical (u_global, v_global) emission order.
                u_glob = nbr[mask]
                v_loc = row_of_edge[mask]
                order = np.lexsort((own[v_loc], u_glob))
                spec.in_recv[s] = v_loc[order]
                spec.in_send[s] = (own_n + np.searchsorted(halo, u_glob))[order]
                spec.in_send_global[s] = u_glob[order]
                spec.in_edge_pos[s] = np.flatnonzero(mask)[order]

    return ShardPlan(
        shards=shards,
        owner=owner,
        specs=specs,
        node_counts=node_counts,
        edge_counts=edge_counts,
    )


def _row_positions(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Flat positions of the CSR slices of ``rows``, concatenated in order.

    The classic vectorized ragged-gather: seed a ones vector, plant each
    row's jump at its slice boundary, and cumulative-sum.
    """
    starts = indptr[rows].astype(np.int64)
    lengths = (indptr[rows + 1].astype(np.int64)) - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = lengths > 0
    starts, lengths = starts[keep], lengths[keep]
    offsets = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.ones(total, dtype=np.int64)
    out[offsets] = starts
    out[offsets[1:]] -= starts[:-1] + lengths[:-1] - 1
    return np.cumsum(out)
