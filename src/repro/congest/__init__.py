"""A synchronous message-passing (CONGEST / LOCAL) simulator.

The paper's algorithms are stated for the standard CONGEST model: the
communication network is the input graph, nodes operate in synchronous
rounds, and each message carries ``O(log n)`` bits.  This subpackage
implements that model faithfully enough for the reproduction's purposes:

* :class:`repro.congest.network.Network` wraps a :class:`networkx.Graph`
  into a communication network with per-node weights and shared global
  knowledge (``n``, ``Delta``, ``alpha`` -- the paper assumes the latter two
  are known to all nodes).
* :class:`repro.congest.algorithm.SynchronousAlgorithm` is the abstract base
  class a distributed algorithm implements: a ``setup`` hook plus a ``round``
  function mapping the inbox to an outbox, with local-termination flags.
* :class:`repro.congest.simulator.Simulator` executes the algorithm round by
  round, records metrics (rounds, messages, bits) and enforces the CONGEST
  bandwidth budget, raising :class:`repro.congest.errors.BandwidthViolation`
  when a message is too large (the check can be relaxed to LOCAL).

The simulator is sequential under the hood (it is a simulator, not a
deployment), but algorithms only ever see the per-node view: their own state,
their neighbor ids, and the messages that arrived this round.
"""

from repro.congest.errors import (
    AlgorithmError,
    BandwidthViolation,
    CongestError,
    EngineCapabilityError,
    NonConvergenceError,
)
from repro.congest.message import Broadcast, estimate_payload_bits
from repro.congest.node import NodeContext
from repro.congest.network import Network
from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.engine import (
    BatchedEngine,
    Engine,
    ReferenceEngine,
    available_engines,
    get_default_engine,
    get_engine,
    set_default_engine,
)
from repro.congest.simulator import RunResult, Simulator, run_algorithm

__all__ = [
    "AlgorithmError",
    "BandwidthViolation",
    "BatchedEngine",
    "Broadcast",
    "CongestError",
    "Engine",
    "EngineCapabilityError",
    "Network",
    "NodeContext",
    "NonConvergenceError",
    "ReferenceEngine",
    "RoundMetrics",
    "RunMetrics",
    "RunResult",
    "Simulator",
    "SynchronousAlgorithm",
    "available_engines",
    "estimate_payload_bits",
    "get_default_engine",
    "get_engine",
    "run_algorithm",
    "set_default_engine",
]
