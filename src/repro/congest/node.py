"""Per-node view of the network exposed to distributed algorithms."""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Mapping, Tuple

__all__ = ["NodeContext"]


class NodeContext:
    """Everything a node knows locally.

    Instances are created by :class:`repro.congest.network.Network`; an
    algorithm receives them in its ``setup`` and ``round`` methods and stores
    its per-node variables in :attr:`state`.

    Attributes
    ----------
    node_id:
        The node's identifier (also usable as an ``O(log n)``-bit name).
    weight:
        The node's weight for the weighted dominating set problem (1 for
        unweighted inputs).
    neighbors:
        Tuple of neighbor identifiers.  In CONGEST a node may address each
        neighbor individually.
    config:
        Read-only mapping of globally known quantities (``n``, ``max_degree``,
        ``alpha`` and any algorithm parameters).  The paper assumes ``Delta``
        and ``alpha`` are global knowledge; Remarks 4.4/4.5 relax this and the
        corresponding algorithms simply ignore those entries.
    state:
        Mutable dictionary for the algorithm's per-node variables.
    rng:
        A :class:`random.Random` seeded deterministically from the network
        seed and the node id, for randomized algorithms.  Created lazily on
        first access: deterministic algorithms never touch it, and seeding a
        ``Random`` hashes the seed string with SHA-512, which is the dominant
        cost of building a large network.
    """

    __slots__ = ("node_id", "weight", "neighbors", "config", "state", "_seed", "_rng", "_finished")

    def __init__(
        self,
        node_id: Hashable,
        weight: int,
        neighbors: Tuple[Hashable, ...],
        config: Mapping[str, Any],
        seed: int,
    ):
        self.node_id = node_id
        self.weight = weight
        self.neighbors = neighbors
        self.config = config
        self.state: Dict[str, Any] = {}
        self._seed = seed
        self._rng: random.Random | None = None
        self._finished = False

    @property
    def rng(self) -> random.Random:
        if self._rng is None:
            # Seeding with a string is deterministic across processes (the
            # seed is hashed with SHA-512 internally), unlike hash() of a
            # string.
            self._rng = random.Random(f"{self._seed}:{self.node_id!r}")
        return self._rng

    def reseed(self, seed: int) -> None:
        """Reset the private random stream to its start for ``seed``.

        Used when a compiled network is reused for another execution: after
        ``reseed(s)`` the node's stream is indistinguishable from that of a
        freshly built node on a network with seed ``s``.
        """
        self._seed = seed
        self._rng = None

    @property
    def degree(self) -> int:
        """Number of neighbors."""
        return len(self.neighbors)

    @property
    def closed_degree(self) -> int:
        """``|N+(v)| = degree + 1``, as used throughout the paper."""
        return len(self.neighbors) + 1

    def finish(self) -> None:
        """Mark this node as locally terminated.

        A finished node stops sending messages; the simulator stops once all
        nodes are finished (or the round limit is reached).
        """
        self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeContext(id={self.node_id!r}, degree={self.degree}, weight={self.weight})"
