"""Exceptions raised by the CONGEST simulator."""

from __future__ import annotations

__all__ = [
    "CongestError",
    "BandwidthViolation",
    "AlgorithmError",
    "NonConvergenceError",
    "EngineCapabilityError",
]


class CongestError(Exception):
    """Base class for all simulator errors."""


class BandwidthViolation(CongestError):
    """A message exceeded the CONGEST per-edge, per-round bit budget.

    Attributes
    ----------
    sender / receiver:
        The endpoints of the offending message (also available together as
        the :attr:`edge` tuple, for log scraping and fault-scenario
        debugging).
    bits / budget:
        The estimated message size and the enforced per-message budget.
    round_index:
        The synchronous round in which the violation occurred, or ``None``
        when the raising context does not track rounds.
    """

    def __init__(self, sender, receiver, bits: int, budget: int, round_index=None):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        self.round_index = round_index
        where = "" if round_index is None else f" in round {round_index}"
        super().__init__(
            f"message on edge ({sender!r} -> {receiver!r}){where} needs ~{bits} bits, "
            f"but the CONGEST budget is {budget} bits"
        )

    @property
    def edge(self):
        """The offending ``(sender, receiver)`` link."""
        return (self.sender, self.receiver)


class EngineCapabilityError(CongestError):
    """A run asked an engine for a feature it does not provide.

    Raised instead of silently degrading -- e.g. the kernel engine refuses
    fault-injection hooks rather than executing the plan-free schedule and
    reporting fault-free metrics under an adversary the caller configured.

    ``algorithm`` / ``engine`` / ``fault_model`` (all optional) identify
    the capability-matrix cell that was asked for, so sweep skip records
    and service error responses can aggregate by structured cell key
    instead of scraping the message (see :attr:`cell`).
    """

    def __init__(
        self,
        message: str,
        algorithm=None,
        engine=None,
        fault_model=None,
    ):
        super().__init__(message)
        self.algorithm = algorithm
        self.engine = engine
        self.fault_model = fault_model

    @property
    def cell(self):
        """The ``(algorithm, engine, fault_model)`` capability cell key."""
        return (self.algorithm, self.engine, self.fault_model)


class AlgorithmError(CongestError):
    """An algorithm misused the simulator API (e.g. sent to a non-neighbor)."""


class NonConvergenceError(CongestError):
    """The algorithm did not terminate within the allowed number of rounds.

    ``pending_nodes`` (optional) names the still-running nodes -- adversarial
    runs populate it so that a stall caused by e.g. a crash window spanning a
    node's finish round can be traced to the specific nodes involved.
    """

    def __init__(self, rounds: int, pending: int, pending_nodes=None):
        self.rounds = rounds
        self.pending = pending
        self.pending_nodes = None if pending_nodes is None else tuple(pending_nodes)
        detail = ""
        if self.pending_nodes is not None:
            shown = ", ".join(repr(node) for node in self.pending_nodes[:8])
            if len(self.pending_nodes) > 8:
                shown += ", ..."
            detail = f": {shown}"
        super().__init__(
            f"algorithm did not terminate after {rounds} rounds "
            f"({pending} nodes still running{detail})"
        )
