"""Certified verification of algorithm runs.

The paper's theorems make three kinds of claims per algorithm: the output is
a dominating set, its weight is within a stated factor of OPT, and the number
of CONGEST rounds is bounded.  :func:`verify_run` checks all three for a
concrete execution and returns a :class:`VerificationReport`; the test-suite
and the benchmark harness are both built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import networkx as nx

from repro.analysis.opt import OptEstimate, estimate_opt
from repro.core.api import DominatingSetResult
from repro.core.packing import is_feasible_packing, packing_from_outputs, packing_value_sum
from repro.graphs.validation import is_dominating_set

__all__ = ["VerificationReport", "approximation_ratio", "verify_run"]


def approximation_ratio(weight: float, opt_value: float) -> float:
    """Return ``weight / opt_value`` guarding against degenerate optima."""
    if opt_value <= 0:
        return 1.0 if weight <= 0 else float("inf")
    return weight / opt_value


@dataclass
class VerificationReport:
    """Everything a test or a benchmark wants to assert about one run."""

    algorithm: str
    is_dominating: bool
    weight: float
    opt: OptEstimate
    ratio: float
    guarantee: Optional[float]
    within_guarantee: Optional[bool]
    rounds: int
    packing_feasible: Optional[bool]
    packing_sum: Optional[float]
    dual_bound_holds: Optional[bool]

    def summary(self) -> str:
        guarantee = "-" if self.guarantee is None else f"{self.guarantee:.2f}"
        return (
            f"{self.algorithm}: weight={self.weight:.0f} opt[{self.opt.kind}]="
            f"{self.opt.value:.2f} ratio={self.ratio:.3f} guarantee={guarantee} "
            f"rounds={self.rounds}"
        )


def verify_run(
    graph: nx.Graph,
    result: DominatingSetResult,
    opt: Optional[OptEstimate] = None,
    check_packing: bool = True,
) -> VerificationReport:
    """Verify a :class:`DominatingSetResult` against the graph and OPT.

    ``opt`` may be passed in to avoid recomputing it when many algorithms run
    on the same instance.  ``check_packing`` additionally validates the
    primal-dual certificate (only meaningful for the paper's algorithms whose
    outputs carry ``x_partial``).
    """
    if opt is None:
        opt = estimate_opt(graph)
    dominating = is_dominating_set(graph, result.dominating_set)
    ratio = approximation_ratio(result.weight, opt.value)
    within = None
    if result.guarantee is not None:
        # Ratios measured against an LP lower bound are upper bounds on the
        # true ratio, so comparing them to the guarantee stays conservative.
        within = ratio <= result.guarantee + 1e-9

    packing_feasible = None
    packing_sum = None
    dual_bound_holds = None
    if check_packing and result.outputs:
        sample = next(iter(result.outputs.values()))
        if isinstance(sample, Mapping) and "x_partial" in sample:
            packing = packing_from_outputs(result.outputs, key="x_partial")
            packing_feasible = is_feasible_packing(graph, packing)
            packing_sum = packing_value_sum(packing)
            dual_bound_holds = packing_sum <= opt.value + 1e-6

    return VerificationReport(
        algorithm=result.algorithm,
        is_dominating=dominating,
        weight=float(result.weight),
        opt=opt,
        ratio=ratio,
        guarantee=result.guarantee,
        within_guarantee=within,
        rounds=result.rounds,
        packing_feasible=packing_feasible,
        packing_sum=packing_sum,
        dual_bound_holds=dual_bound_holds,
    )
