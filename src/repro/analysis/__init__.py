"""Verification, OPT estimation and the experiment harness.

* :mod:`repro.analysis.verify` -- certified verification of algorithm runs:
  dominating-set validity, packing feasibility, approximation ratios against
  certified lower bounds.
* :mod:`repro.analysis.opt` -- the OPT-estimation policy used by the
  benchmarks (exact MILP below a size threshold, LP / packing dual bound
  above it).
* :mod:`repro.analysis.experiments` -- the experiment runner: workload
  construction, parameter sweeps, per-run records, aggregation.
* :mod:`repro.analysis.tables` -- plain-text table rendering of experiment
  results ("paper claim vs measured" rows) used by the benchmarks and the
  example scripts.
"""

from repro.analysis.verify import (
    VerificationReport,
    approximation_ratio,
    verify_run,
)
from repro.analysis.opt import OptEstimate, estimate_opt
from repro.analysis.experiments import (
    ExperimentRecord,
    aggregate_records,
    run_algorithm_on_instance,
    sweep,
)
from repro.analysis.tables import format_table, render_records

__all__ = [
    "ExperimentRecord",
    "OptEstimate",
    "VerificationReport",
    "aggregate_records",
    "approximation_ratio",
    "estimate_opt",
    "format_table",
    "render_records",
    "run_algorithm_on_instance",
    "sweep",
    "verify_run",
]
