"""Plain-text table rendering for experiment results.

The benchmark harness regenerates the paper's quantitative claims as tables
printed to stdout (and captured into EXPERIMENTS.md).  Rendering is kept
dependency-free: fixed-width columns, one header row, one row per record.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.experiments import ExperimentRecord

__all__ = ["format_table", "render_records", "render_summary"]


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[List[str]] = None) -> str:
    """Format dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        {column: _render_cell(row.get(column)) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(row[column].ljust(widths[column]) for column in columns)
        for row in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _render_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_records(
    records: Iterable[ExperimentRecord], columns: Optional[List[str]] = None
) -> str:
    """Render :class:`ExperimentRecord` objects as a table."""
    rows = [record.as_row() for record in records]
    default_columns = [
        "experiment",
        "instance",
        "algorithm",
        "n",
        "Delta",
        "alpha",
        "weight",
        "opt",
        "ratio",
        "guarantee",
        "rounds",
        "ok",
    ]
    return format_table(rows, columns=columns or default_columns)


def render_summary(summary: Dict[str, Dict[str, float]]) -> str:
    """Render the per-algorithm aggregate produced by ``aggregate_records``."""
    rows = []
    for algorithm, stats in sorted(summary.items()):
        row = {"algorithm": algorithm}
        row.update({key: stats[key] for key in ("runs", "mean_ratio", "max_ratio", "mean_rounds", "max_rounds", "violations")})
        rows.append(row)
    return format_table(rows)
