"""OPT estimation policy.

Every approximation-ratio measurement needs a denominator.  The policy,
recorded in DESIGN.md, is:

* up to :data:`EXACT_THRESHOLD` nodes -- solve the instance exactly with the
  MILP solver, so the reported ratio is the true ratio;
* above the threshold -- use the dominating set LP optimum, which is a lower
  bound on OPT; ratios measured against it are *upper bounds* on the true
  ratio, i.e. conservative for the purpose of checking the paper's
  guarantees.

The estimate records which of the two was used so tables can annotate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import networkx as nx

from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.baselines.lp import lp_dominating_set_lower_bound

__all__ = ["EXACT_THRESHOLD", "OptEstimate", "estimate_opt", "degree_lower_bound"]

#: Default node-count threshold below which the exact solver is used.
EXACT_THRESHOLD = 220


@dataclass
class OptEstimate:
    """A lower bound on OPT together with how it was obtained."""

    value: float
    exact: bool
    optimal_set: Optional[Set] = None
    method: Optional[str] = None

    @property
    def kind(self) -> str:
        if self.method is not None:
            return self.method
        return "exact" if self.exact else "lp-lower-bound"


def estimate_opt(
    graph: nx.Graph,
    exact_threshold: int = EXACT_THRESHOLD,
    force_exact: bool = False,
    force_lp: bool = False,
) -> OptEstimate:
    """Return the OPT estimate for ``graph`` under the policy above."""
    if force_exact and force_lp:
        raise ValueError("cannot force both exact and LP estimation")
    use_exact = force_exact or (
        not force_lp and graph.number_of_nodes() <= exact_threshold
    )
    if use_exact:
        optimal_set, weight = exact_minimum_weight_dominating_set(graph)
        return OptEstimate(value=float(weight), exact=True, optimal_set=optimal_set)
    return OptEstimate(value=lp_dominating_set_lower_bound(graph), exact=False)


def degree_lower_bound(graph: nx.Graph) -> OptEstimate:
    """Return the O(1)-time counting lower bound ``n / (Delta + 1)``.

    A node dominates itself and at most ``Delta`` neighbours, so any
    dominating set has at least ``n / (Delta + 1)`` members; with positive
    integer node weights (weight at least one everywhere, the convention of
    :mod:`repro.graphs.weights`) the same quantity lower-bounds the weight.
    Far looser than the LP bound, but free -- the scale experiments use it
    where even solving the LP would dominate the run (see the scenario
    registry's ``opt_mode="degree"``).
    """
    n = graph.number_of_nodes()
    if n == 0:
        return OptEstimate(value=0.0, exact=True, method="degree-lower-bound")
    max_degree = max(dict(graph.degree()).values(), default=0)
    return OptEstimate(
        value=max(1.0, n / (max_degree + 1)),
        exact=False,
        method="degree-lower-bound",
    )
