"""The experiment harness used by the benchmarks and the example scripts.

The benchmarks (one per experiment in DESIGN.md's per-experiment index) all
follow the same shape: build a workload of graph instances, run one or more
algorithms on each, verify every run, and report "paper claim vs measured"
rows.  This module centralises the shared pieces so each benchmark file only
declares *what* to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import networkx as nx

from repro.analysis.opt import OptEstimate, estimate_opt
from repro.analysis.verify import VerificationReport, verify_run
from repro.core.api import DominatingSetResult
from repro.graphs.generators import GraphInstance

__all__ = [
    "ExperimentRecord",
    "run_algorithm_on_instance",
    "sweep",
    "aggregate_records",
]

#: A solver is any callable mapping a graph instance to a DominatingSetResult,
#: e.g. ``lambda inst: solve_mds(inst.graph, alpha=inst.alpha, epsilon=0.2)``.
Solver = Callable[[GraphInstance], DominatingSetResult]


@dataclass
class ExperimentRecord:
    """One (algorithm, instance) measurement with its verification."""

    experiment: str
    algorithm: str
    instance: str
    n: int
    m: int
    max_degree: int
    alpha: int
    weight: float
    rounds: int
    ratio: float
    opt_value: float
    opt_kind: str
    guarantee: Optional[float]
    within_guarantee: Optional[bool]
    is_dominating: bool
    params: Dict[str, object] = field(default_factory=dict)
    # Message-complexity telemetry from RunMetrics (0 when the solver's
    # result carries no metrics, e.g. centralized baselines).  Deliberately
    # not in as_row(): tables keep their fixed columns, the scaling plots
    # read these directly.
    messages: int = 0
    total_bits: int = 0

    def as_row(self) -> Dict[str, object]:
        """Flatten into a plain dict for table rendering."""
        row = {
            "experiment": self.experiment,
            "algorithm": self.algorithm,
            "instance": self.instance,
            "n": self.n,
            "m": self.m,
            "Delta": self.max_degree,
            "alpha": self.alpha,
            "weight": round(self.weight, 2),
            "rounds": self.rounds,
            "ratio": round(self.ratio, 3),
            "opt": round(self.opt_value, 2),
            "opt_kind": self.opt_kind,
            "guarantee": None if self.guarantee is None else round(self.guarantee, 2),
            "ok": self.is_dominating and (self.within_guarantee in (True, None)),
        }
        row.update(self.params)
        return row


def run_algorithm_on_instance(
    experiment: str,
    instance: GraphInstance,
    solver: Solver,
    opt: Optional[OptEstimate] = None,
    params: Optional[Mapping[str, object]] = None,
) -> ExperimentRecord:
    """Run ``solver`` on ``instance``, verify it, and package a record."""
    result = solver(instance)
    if opt is None:
        opt = estimate_opt(instance.graph)
    report: VerificationReport = verify_run(instance.graph, result, opt=opt)
    metrics = getattr(result, "metrics", None)
    return ExperimentRecord(
        experiment=experiment,
        algorithm=result.algorithm,
        instance=instance.name,
        n=instance.n,
        m=instance.m,
        max_degree=instance.max_degree,
        alpha=instance.alpha,
        weight=float(result.weight),
        rounds=result.rounds,
        ratio=report.ratio,
        opt_value=report.opt.value,
        opt_kind=report.opt.kind,
        guarantee=result.guarantee,
        within_guarantee=report.within_guarantee,
        is_dominating=report.is_dominating,
        params=dict(params or {}),
        messages=0 if metrics is None else int(metrics.total_messages),
        total_bits=0 if metrics is None else int(metrics.total_bits),
    )


def sweep(
    experiment: str,
    instances: Iterable[GraphInstance],
    solvers: Mapping[str, Solver],
    share_opt: bool = True,
    params_for: Optional[Callable[[str, GraphInstance], Mapping[str, object]]] = None,
    opt_for: Optional[Callable[[nx.Graph], OptEstimate]] = None,
) -> List[ExperimentRecord]:
    """Run every solver on every instance and return the records.

    ``share_opt=True`` computes the OPT estimate once per instance and reuses
    it across solvers, which is what the comparison experiments want.
    ``opt_for`` overrides the OPT estimation policy (the default is
    :func:`repro.analysis.opt.estimate_opt`); the scenario registry uses it
    to select cheaper bounds for scale experiments.
    """
    estimator = opt_for or estimate_opt
    records: List[ExperimentRecord] = []
    for instance in instances:
        opt = estimator(instance.graph) if share_opt else None
        for label, solver in solvers.items():
            params = dict(params_for(label, instance)) if params_for else {}
            params.setdefault("solver_label", label)
            records.append(
                run_algorithm_on_instance(
                    experiment, instance, solver, opt=opt, params=params
                )
            )
    return records


def aggregate_records(records: Sequence[ExperimentRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate records per algorithm: mean/max ratio, mean/max rounds, failures.

    Returns ``{algorithm: {"runs", "mean_ratio", "max_ratio", "mean_rounds",
    "max_rounds", "violations"}}``; a violation is a run that either is not a
    dominating set or exceeds its stated guarantee.
    """
    grouped: Dict[str, List[ExperimentRecord]] = {}
    for record in records:
        grouped.setdefault(record.algorithm, []).append(record)
    summary: Dict[str, Dict[str, float]] = {}
    for algorithm, group in grouped.items():
        ratios = [record.ratio for record in group]
        rounds = [record.rounds for record in group]
        violations = sum(
            1
            for record in group
            if not record.is_dominating or record.within_guarantee is False
        )
        summary[algorithm] = {
            "runs": len(group),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_rounds": sum(rounds) / len(rounds),
            "max_rounds": max(rounds),
            "violations": violations,
        }
    return summary
