"""Declarative, graph-agnostic fault specifications for the scenario registry.

A :class:`FaultSpec` describes an adversarial *regime* -- "crash 20% of the
nodes at round 2", "drop 10% of messages per link", "churn 15% of the edges
every 4 rounds" -- without naming concrete nodes or edges.  It is the fault
analogue of :class:`repro.orchestration.registry.WeightSpec`: plain,
JSON-serialisable (``as_dict`` feeds the scenario content hash), picklable
across sweep worker processes, and *materialised* against a concrete graph
and sweep-cell seed into a :class:`~repro.faults.plan.FaultPlan` with real
node/edge identifiers.

Materialisation is deterministic: victims and churned edges are sampled with
a :class:`random.Random` seeded from the resolved spec seed (string-seeded,
so identical across processes), and the resulting plan carries the same seed
for its per-round omission/latency draws.  A fixed ``(spec, graph, seed)``
triple therefore reproduces the identical adversarial schedule everywhere --
the property the sweep cache and the cross-engine parity gates rely on.

:data:`FAULT_MODELS` names a catalogue of ready-made regimes; the CLI's
``--faults`` flag overlays one of them onto any registered scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

import networkx as nx

from repro.faults.plan import ChurnEvent, CrashFault, FaultPlan, ROUND_LIMIT_POLICIES

__all__ = ["FaultSpec", "FAULT_MODELS", "fault_model"]


@dataclass(frozen=True)
class FaultSpec:
    """A seeded adversarial regime, materialisable against any graph.

    Attributes
    ----------
    crash_fraction / crash_count:
        How many nodes crash (a fraction of ``n``, or an absolute count that
        takes precedence when given).  Victims are sampled uniformly.
    crash_at:
        First round the victims miss.
    recover_after:
        Downtime in rounds; ``None`` means crash-stop (never recover).
    drop_probability:
        Per-link, per-message omission probability (applied to every link).
    latency_max:
        Per-message uniform integer delay in ``[0, latency_max]`` whole
        rounds on every link (0 = synchronous delivery).
    churn_fraction / churn_period / churn_epochs:
        Every ``churn_period`` rounds (for ``churn_epochs`` epochs), a fresh
        ``churn_fraction`` of the input edges is removed; each removed batch
        is re-inserted one period later.
    seed:
        ``None`` derives the fault seed from the sweep cell seed (each cell
        sees a fresh adversary); a fixed integer pins the schedule.
    label:
        Short name recorded in experiment records (defaults to a summary).
    on_round_limit:
        Passed through to the plan; see :class:`FaultPlan`.
    """

    crash_fraction: float = 0.0
    crash_count: Optional[int] = None
    crash_at: int = 1
    recover_after: Optional[int] = None
    drop_probability: float = 0.0
    latency_max: int = 0
    churn_fraction: float = 0.0
    churn_period: int = 0
    churn_epochs: int = 8
    seed: Optional[int] = None
    label: Optional[str] = None
    on_round_limit: str = "stop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must lie in [0, 1], got {self.crash_fraction}")
        if self.crash_count is not None and self.crash_count < 0:
            raise ValueError(f"crash_count must be >= 0, got {self.crash_count}")
        if self.crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.recover_after is not None and self.recover_after < 1:
            raise ValueError(f"recover_after must be >= 1, got {self.recover_after}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must lie in [0, 1], got {self.drop_probability}"
            )
        if self.latency_max < 0:
            raise ValueError(f"latency_max must be >= 0, got {self.latency_max}")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError(f"churn_fraction must lie in [0, 1], got {self.churn_fraction}")
        if self.churn_fraction > 0.0 and self.churn_period < 1:
            raise ValueError("churn_fraction > 0 requires churn_period >= 1")
        if self.churn_epochs < 0:
            raise ValueError(f"churn_epochs must be >= 0, got {self.churn_epochs}")
        if self.on_round_limit not in ROUND_LIMIT_POLICIES:
            raise ValueError(
                f"on_round_limit must be one of {ROUND_LIMIT_POLICIES}, "
                f"got {self.on_round_limit!r}"
            )

    # -- identity ----------------------------------------------------------

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        parts = []
        if self.crash_count is not None or self.crash_fraction:
            amount = (
                str(self.crash_count)
                if self.crash_count is not None
                else f"{self.crash_fraction:.0%}"
            )
            kind = "stop" if self.recover_after is None else f"recover+{self.recover_after}"
            parts.append(f"crash[{amount},{kind}]")
        if self.drop_probability:
            parts.append(f"drop[{self.drop_probability}]")
        if self.latency_max:
            parts.append(f"latency[{self.latency_max}]")
        if self.churn_fraction and self.churn_period:
            parts.append(f"churn[{self.churn_fraction:.0%}/{self.churn_period}r]")
        return "+".join(parts) or "no-faults"

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form; part of the scenario content hash.

        The human ``label`` is excluded, mirroring how scenario descriptions
        and tags are excluded: relabelling must not invalidate caches.
        """
        return {
            "crash_fraction": self.crash_fraction,
            "crash_count": self.crash_count,
            "crash_at": self.crash_at,
            "recover_after": self.recover_after,
            "drop_probability": self.drop_probability,
            "latency_max": self.latency_max,
            "churn_fraction": self.churn_fraction,
            "churn_period": self.churn_period,
            "churn_epochs": self.churn_epochs,
            "seed": self.seed,
            "on_round_limit": self.on_round_limit,
        }

    # -- materialisation ---------------------------------------------------

    def resolved_seed(self, cell_seed: int) -> int:
        return self.seed if self.seed is not None else cell_seed

    def materialize(self, graph: nx.Graph, cell_seed: int = 0) -> FaultPlan:
        """Bind the regime to concrete nodes/edges of ``graph``, seeded.

        Sampling iterates the graph's own node/edge order, which is
        reproducible for graphs rebuilt from the same
        :class:`~repro.orchestration.registry.GraphSpec`, so materialisation
        is stable across processes.
        """
        seed = self.resolved_seed(cell_seed)
        rng = random.Random(f"faultspec:{seed}")

        crashes = []
        nodes = list(graph.nodes())
        if self.crash_count is not None:
            victim_count = min(self.crash_count, len(nodes))
        else:
            victim_count = min(int(round(self.crash_fraction * len(nodes))), len(nodes))
        if victim_count:
            recover = None if self.recover_after is None else self.crash_at + self.recover_after
            crashes = [
                CrashFault(node, start=self.crash_at, recover=recover)
                for node in rng.sample(nodes, victim_count)
            ]

        churn = []
        if self.churn_fraction and self.churn_period and self.churn_epochs:
            edges = [(u, v) for u, v in graph.edges()]
            per_epoch = min(int(round(self.churn_fraction * len(edges))), len(edges))
            if per_epoch:
                for epoch in range(1, self.churn_epochs + 1):
                    start = epoch * self.churn_period
                    for u, v in rng.sample(edges, per_epoch):
                        churn.append(ChurnEvent(start, "remove", u, v))
                        churn.append(ChurnEvent(start + self.churn_period, "insert", u, v))

        return FaultPlan(
            crashes=tuple(crashes),
            drop_probability=self.drop_probability,
            latency_high=self.latency_max,
            churn=tuple(churn),
            seed=seed,
            on_round_limit=self.on_round_limit,
        )


#: Named fault regimes, selectable from the CLI via ``--faults <name>`` and
#: reused by the built-in fault scenarios.  Seeds are left unpinned so each
#: sweep cell faces a fresh adversary drawn from the same regime.
FAULT_MODELS: Dict[str, FaultSpec] = {
    "crash5": FaultSpec(crash_fraction=0.05, crash_at=2, label="crash5"),
    "crash15": FaultSpec(crash_fraction=0.15, crash_at=2, label="crash15"),
    "crash30": FaultSpec(crash_fraction=0.30, crash_at=2, label="crash30"),
    "crash-recover": FaultSpec(
        crash_fraction=0.20, crash_at=2, recover_after=4, label="crash-recover"
    ),
    "lossy2": FaultSpec(drop_probability=0.02, label="lossy2"),
    "lossy10": FaultSpec(drop_probability=0.10, label="lossy10"),
    "lossy25": FaultSpec(drop_probability=0.25, label="lossy25"),
    "latency2": FaultSpec(latency_max=2, label="latency2"),
    "churn": FaultSpec(churn_fraction=0.15, churn_period=4, label="churn"),
    "chaos": FaultSpec(
        crash_fraction=0.10,
        crash_at=3,
        recover_after=3,
        drop_probability=0.05,
        latency_max=1,
        churn_fraction=0.10,
        churn_period=5,
        label="chaos",
    ),
}


def fault_model(name: str) -> FaultSpec:
    """Look up a named fault regime from :data:`FAULT_MODELS`."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_MODELS))
        raise KeyError(f"unknown fault model {name!r}; known models: {known}") from None
