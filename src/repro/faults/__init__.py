"""Fault injection and dynamic topology for the CONGEST simulator.

The idealized simulator executes synchronous, fault-free rounds on a static
graph.  This subpackage stresses the paper's algorithms under adversarial
network conditions instead:

* :mod:`repro.faults.plan`    -- declarative :class:`FaultPlan`: crash-stop /
  crash-recover node faults, per-link omission probability, per-link
  whole-round latency distributions, and scheduled edge churn;
* :mod:`repro.faults.session` -- the compiled runtime applied inside both
  engines' round loops (vectorized for the batched engine);
* :mod:`repro.faults.engine`  -- :class:`AdversarialEngine`, the wrapper
  usable anywhere an ``engine=`` is accepted;
* :mod:`repro.faults.spec`    -- graph-agnostic :class:`FaultSpec` regimes
  for the scenario registry, plus the :data:`FAULT_MODELS` catalogue behind
  the CLI's ``--faults`` flag.

Guarantees (enforced by ``tests/faults/``): an empty plan is byte-identical
to a plain engine run on both engines; a non-empty plan is deterministic in
``(plan, network, seed)`` across repeated runs, across processes, and across
engines.

Quickstart::

    from repro import solve_mds
    from repro.faults import AdversarialEngine, FaultSpec
    from repro.graphs import random_geometric_graph

    graph = random_geometric_graph(150, radius=0.14, seed=1)
    spec = FaultSpec(crash_fraction=0.2, crash_at=2, recover_after=4,
                     drop_probability=0.05)
    engine = AdversarialEngine(spec.materialize(graph, cell_seed=0))
    result = solve_mds(graph, epsilon=0.2, engine=engine)
    print(result.metrics.summary())
"""

from repro.faults.engine import AdversarialEngine
from repro.faults.plan import ChurnEvent, CrashFault, FaultPlan, LinkFault
from repro.faults.session import FaultSession
from repro.faults.spec import FAULT_MODELS, FaultSpec, fault_model

__all__ = [
    "AdversarialEngine",
    "ChurnEvent",
    "CrashFault",
    "FaultPlan",
    "LinkFault",
    "FaultSession",
    "FaultSpec",
    "FAULT_MODELS",
    "fault_model",
]
