"""Declarative fault plans: the *what* of adversarial network conditions.

A :class:`FaultPlan` is a concrete, seeded description of every deviation
from the idealized synchronous fault-free CONGEST network, bound to the node
and edge identifiers of one specific input graph:

* **node crashes** (:class:`CrashFault`) -- crash-stop (the node never acts
  again) and crash-recover (the node is down for a window of rounds, then
  resumes with its local state intact, having missed every message that
  arrived while it was down);
* **link faults** (:class:`LinkFault`) -- per-link message omission
  probability and per-link latency distributions that delay delivery by
  whole rounds, with plan-wide defaults for both;
* **topology churn** (:class:`ChurnEvent`) -- scheduled removal and
  re-insertion of input-graph edges.  The algorithm's *knowledge* (its
  neighbor list) is the static input graph; churn only changes which links
  currently deliver messages, the standard dynamic-network-with-static-
  footprint model.

Plans are plain frozen dataclasses: picklable (they cross the sweep runner's
process boundary inside scenario specs), hashable content (``as_dict`` is
JSON-ready), and engine-independent.  The runtime that applies a plan inside
an engine's round loop is :class:`repro.faults.session.FaultSession`; the
engine wrapper is :class:`repro.faults.engine.AdversarialEngine`.

Timing model (all rounds are the simulator's global round indices):

* a node with a crash window ``[start, recover)`` executes no round in that
  window; ``recover=None`` means crash-stop;
* a message sent in round ``r`` normally arrives at the start of round
  ``r + 1``; a latency draw of ``d`` extra rounds moves arrival to
  ``r + 1 + d``;
* a send attempt is dropped at *send* time when the link is churned out or
  the omission draw fires, and at *arrival* time when the receiver is
  crashed in the arrival round;
* churn events scheduled for round ``r`` take effect before round ``r``
  executes; inserts are applied before removes within one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["CrashFault", "LinkFault", "ChurnEvent", "FaultPlan"]

#: Accepted ``FaultPlan.on_round_limit`` policies.
ROUND_LIMIT_POLICIES = ("stop", "raise")


@dataclass(frozen=True)
class CrashFault:
    """One node-crash window.

    ``start`` is the first round the node misses; ``recover`` is the first
    round it executes again (``None`` = crash-stop, the node is down
    forever).  A recovering node keeps its local state but has missed every
    round and every message delivery inside the window.
    """

    node: Hashable
    start: int = 0
    recover: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"crash start must be >= 0, got {self.start}")
        if self.recover is not None and self.recover <= self.start:
            raise ValueError(
                f"crash recover round {self.recover} must be after start {self.start}"
            )

    @property
    def is_permanent(self) -> bool:
        return self.recover is None

    def as_dict(self) -> Dict[str, object]:
        return {"node": _ident(self.node), "start": self.start, "recover": self.recover}


@dataclass(frozen=True)
class LinkFault:
    """Per-link override of the plan-wide omission/latency defaults.

    The link is the undirected edge ``{u, v}``; the fault applies to both
    directions.  ``latency_low``/``latency_high`` bound a per-message uniform
    integer delay in whole rounds (``0``/``0`` = no extra latency).
    """

    u: Hashable
    v: Hashable
    drop_probability: float = 0.0
    latency_low: int = 0
    latency_high: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must lie in [0, 1], got {self.drop_probability}"
            )
        if self.latency_low < 0 or self.latency_high < self.latency_low:
            raise ValueError(
                f"latency bounds must satisfy 0 <= low <= high, got "
                f"[{self.latency_low}, {self.latency_high}]"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "u": _ident(self.u),
            "v": _ident(self.v),
            "drop_probability": self.drop_probability,
            "latency_low": self.latency_low,
            "latency_high": self.latency_high,
        }


@dataclass(frozen=True)
class ChurnEvent:
    """A scheduled topology change: remove or re-insert one input-graph edge."""

    round_index: int
    action: str  # "remove" | "insert"
    u: Hashable
    v: Hashable

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError(f"churn round must be >= 0, got {self.round_index}")
        if self.action not in ("remove", "insert"):
            raise ValueError(f"churn action must be 'remove' or 'insert', got {self.action!r}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "action": self.action,
            "u": _ident(self.u),
            "v": _ident(self.v),
        }


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded adversarial schedule for one network.

    Attributes
    ----------
    crashes:
        Crash windows; a node may appear in several non-overlapping windows.
    drop_probability / latency_low / latency_high:
        Plan-wide per-link defaults (see :class:`LinkFault`).
    links:
        Per-link overrides of the defaults.
    churn:
        Scheduled edge removals/insertions.  Only input-graph edges may be
        churned; the algorithms' neighbor knowledge is the static footprint.
    seed:
        Seed of the per-round omission/latency draws.  A fixed
        ``(plan, network)`` pair reproduces the exact same byte-level
        execution across repeated runs, engines, and processes.
    on_round_limit:
        ``"stop"`` (default) cuts an adversarial run off at the simulator's
        round limit, recording the unfinished nodes as
        ``RunMetrics.stalled_nodes`` -- faults can legitimately starve an
        algorithm of the messages it needs to finish.  ``"raise"`` keeps the
        fault-free behavior (:class:`~repro.congest.errors.NonConvergenceError`).
        Empty plans always raise, so they stay byte-identical to plain runs.
    """

    crashes: Tuple[CrashFault, ...] = ()
    drop_probability: float = 0.0
    latency_low: int = 0
    latency_high: int = 0
    links: Tuple[LinkFault, ...] = ()
    churn: Tuple[ChurnEvent, ...] = ()
    seed: int = 0
    on_round_limit: str = "stop"

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "churn", tuple(self.churn))
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must lie in [0, 1], got {self.drop_probability}"
            )
        if self.latency_low < 0 or self.latency_high < self.latency_low:
            raise ValueError(
                f"latency bounds must satisfy 0 <= low <= high, got "
                f"[{self.latency_low}, {self.latency_high}]"
            )
        if self.on_round_limit not in ROUND_LIMIT_POLICIES:
            raise ValueError(
                f"on_round_limit must be one of {ROUND_LIMIT_POLICIES}, "
                f"got {self.on_round_limit!r}"
            )
        windows: Dict[Hashable, list] = {}
        for crash in self.crashes:
            windows.setdefault(crash.node, []).append(crash)
        for node, node_windows in windows.items():
            ordered = sorted(node_windows, key=lambda c: c.start)
            for earlier, later in zip(ordered, ordered[1:]):
                if earlier.recover is None or later.start < earlier.recover:
                    raise ValueError(
                        f"node {node!r} has overlapping crash windows "
                        f"({earlier} and {later})"
                    )

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the plan changes nothing about a fault-free execution."""
        return (
            not self.crashes
            and self.drop_probability == 0.0
            and self.latency_high == 0
            and not self.churn
            and all(
                link.drop_probability == 0.0 and link.latency_high == 0
                for link in self.links
            )
        )

    @property
    def has_churn(self) -> bool:
        return bool(self.churn)

    def faulty_nodes(self) -> Tuple[Hashable, ...]:
        """Sorted tuple of every node with at least one crash window."""
        return tuple(sorted({crash.node for crash in self.crashes}, key=repr))

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form (used for content hashing)."""
        return {
            "crashes": [crash.as_dict() for crash in self.crashes],
            "drop_probability": self.drop_probability,
            "latency_low": self.latency_low,
            "latency_high": self.latency_high,
            "links": [link.as_dict() for link in self.links],
            "churn": [event.as_dict() for event in self.churn],
            "seed": self.seed,
            "on_round_limit": self.on_round_limit,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.crashes:
            permanent = sum(1 for crash in self.crashes if crash.is_permanent)
            recovering = len(self.crashes) - permanent
            parts.append(f"crashes={permanent} stop/{recovering} recover")
        if self.drop_probability:
            parts.append(f"drop_p={self.drop_probability}")
        if self.latency_high:
            parts.append(f"latency=[{self.latency_low},{self.latency_high}]")
        if self.links:
            parts.append(f"link_overrides={len(self.links)}")
        if self.churn:
            parts.append(f"churn_events={len(self.churn)}")
        return "no faults" if not parts else " ".join(parts)


def _ident(value: Hashable) -> object:
    """JSON-ready form of a node identifier (ints/strs pass through)."""
    if isinstance(value, (int, str, bool, float)) or value is None:
        return value
    return repr(value)
