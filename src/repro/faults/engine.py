"""The engine wrapper that runs any inner engine under a fault plan.

:class:`AdversarialEngine` composes with both built-in engines: it resolves
its inner engine per execution (so ``inner=None`` tracks the process-wide
default), compiles the plan into a fresh
:class:`~repro.faults.session.FaultSession`, and hands the session to the
inner engine's round loop through the ``hooks`` parameter of
:meth:`repro.congest.engine.Engine.execute`.  The reference engine applies
the session per delivery; the batched engine applies it with NumPy masks
over its CSR adjacency -- both produce byte-identical executions for a
fixed ``(plan, network, seed)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.congest.engine import Engine, EngineSpec, get_engine
from repro.faults.plan import FaultPlan
from repro.faults.session import FaultSession

__all__ = ["AdversarialEngine"]


class AdversarialEngine(Engine):
    """Run an inner engine with a :class:`FaultPlan` applied in its round loop.

    Parameters
    ----------
    plan:
        The adversarial schedule; ``None`` means the empty plan, under which
        every execution is byte-identical to the plain inner engine (the
        zero-fault parity guarantee enforced by ``tests/faults/``).
    inner:
        The wrapped engine: a registered name, an :class:`Engine` instance,
        or ``None`` for the process-wide default.  Resolved at each
        :meth:`execute`, like ``engine=None`` on the simulator.
    hook_wrapper:
        Optional callable applied to the freshly built
        :class:`FaultSession` before it reaches the inner engine; the
        observability layer uses it to interpose a delegating
        :class:`~repro.obs.trace.TracingHooks` proxy (round timestamps)
        without the engines or the fault runtime knowing tracing exists.
        ``None`` (the default) passes the session through untouched.
    """

    name = "adversarial"

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        inner: EngineSpec = None,
        hook_wrapper: Optional[Callable[[FaultSession], Any]] = None,
    ):
        if isinstance(inner, AdversarialEngine) or (
            isinstance(inner, type) and issubclass(inner, AdversarialEngine)
        ):
            raise ValueError("AdversarialEngine cannot wrap another AdversarialEngine")
        self.plan = plan if plan is not None else FaultPlan()
        self.inner_spec = inner
        self.hook_wrapper = hook_wrapper

    @property
    def inner(self) -> Engine:
        """The engine the next :meth:`execute` will wrap."""
        return get_engine(self.inner_spec)

    def execute(self, network, algorithm, *, budget, limit, strict, hooks=None):
        if hooks is not None:
            raise ValueError(
                "AdversarialEngine provides its own hooks and cannot be nested"
            )
        inner = self.inner
        if isinstance(inner, AdversarialEngine):
            raise ValueError("AdversarialEngine cannot wrap another AdversarialEngine")
        session = FaultSession(self.plan, network)
        hooks = session if self.hook_wrapper is None else self.hook_wrapper(session)
        return inner.execute(
            network,
            algorithm,
            budget=budget,
            limit=limit,
            strict=strict,
            hooks=hooks,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdversarialEngine({self.plan.describe()}, inner={self.inner_spec!r})"
