"""The compiled fault runtime: applies a :class:`FaultPlan` inside a round loop.

A :class:`FaultSession` is created per execution (by
:class:`repro.faults.engine.AdversarialEngine`) and handed to the inner
engine as its ``hooks`` object.  It owns everything both engines need:

* the **compiled plan** -- CSR adjacency over directed edges (neighbor lists
  sorted by global node order), per-edge omission probabilities and latency
  bounds, crash and churn event schedules keyed by round;
* the **per-round randomness** -- one uniform array per directed edge per
  round, drawn from ``numpy``'s seeded generator.  Decisions are a pure
  function of ``(plan seed, round, directed edge)``, never of iteration
  order, which is what makes the reference engine's per-delivery path and
  the batched engine's mask-based path agree bit for bit;
* the **in-flight mailbox** -- messages buffered by arrival round, in
  ``(send round, sender order)`` sequence, so inbox insertion order (which
  algorithms observe through float accumulation) is engine-independent.

The delivery entry points mirror the engines: :meth:`route` decides the
fate of a single delivery (the reference engine's per-message loop),
:meth:`broadcast` decides a whole broadcast at once with NumPy masks over
the sender's CSR slice (the batched engine's vectorized loop), and
:meth:`edge_fates` exposes the full per-round edge decision arrays in one
call (the kernel tier's faulted driver,
:mod:`repro.congest.kernels.faults`).  All read the same per-round uniform
arrays, so an execution is byte-identical whichever engine runs it --
``tests/faults/`` enforces this.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.congest.network import Network
from repro.faults.plan import FaultPlan

__all__ = ["FaultSession"]

#: Mask keeping plan seeds inside numpy's SeedSequence domain.
_SEED_MASK = (1 << 63) - 1


class FaultSession:
    """Round-loop hooks implementing a :class:`FaultPlan` for one execution.

    ``report_pending_nodes`` tells the kernel driver that a hooked run's
    :class:`~repro.congest.errors.NonConvergenceError` carries the pending
    node list, matching ``Engine._execute_hooked``.

    The session implements the engine hook protocol documented in
    :mod:`repro.congest.engine`: ``begin_round`` / ``runnable`` / ``acting``
    for crash handling, ``route`` / ``broadcast`` / ``collect`` for the
    delivery path, and the metric accessors ``crashed_count`` /
    ``live_edge_count`` / ``faulty_nodes`` / ``stop_at_limit``.
    """

    #: Hooked runs report the pending node list in NonConvergenceError
    #: (matching ``Engine._execute_hooked``); the kernel driver keys on this.
    report_pending_nodes = True

    def __init__(self, plan: FaultPlan, network: Network):
        # CSR over directed edges (neighbor lists sorted by global node
        # order, the batched engine's canonical order) comes from the
        # network's cached layout: compiled once per network and shared by
        # every fault session executed on it.
        layout = network.layout()
        indptr, indices, edge_pos = layout.csr()
        self._compile(
            plan,
            network,
            layout.node_order,
            layout.index_of,
            indptr,
            indices,
            edge_pos,
            network.m,
        )

    @classmethod
    def for_csr(cls, plan: FaultPlan, csr_graph) -> "FaultSession":
        """Compile ``plan`` directly against a CSR graph for the kernel tier.

        CSR node ids *are* their indices, so the identity order stands in
        for the layout's node order.  The resulting session makes exactly
        the decisions :meth:`route`/:meth:`broadcast` would make on the
        equivalent ``Network`` (same CSR edge positions, same seeded
        uniforms), which is what keeps kernel runs on ``CSRGraph`` inputs
        byte-identical to reference runs on ``to_networkx()``.
        """
        session = cls.__new__(cls)
        n = int(csr_graph.n)
        indptr = csr_graph.indptr
        indices = csr_graph.indices
        edge_pos = getattr(csr_graph, "_fault_edge_pos", None)
        if edge_pos is None:
            sources = [i for i in range(n) for _ in range(int(indptr[i + 1]) - int(indptr[i]))]
            edge_pos = {
                (src, int(dst)): e for e, (src, dst) in enumerate(zip(sources, indices))
            }
            csr_graph._fault_edge_pos = edge_pos
        session._compile(
            plan,
            None,
            list(range(n)),
            {i: i for i in range(n)},
            indptr,
            indices,
            edge_pos,
            len(indices) // 2,
        )
        return session

    def _compile(
        self,
        plan: FaultPlan,
        network: Optional[Network],
        node_order: List[Hashable],
        index_of: Dict[Hashable, int],
        indptr,
        indices,
        edge_pos: Dict[Tuple[int, int], int],
        undirected_edges: int,
    ) -> None:
        import numpy as np

        self._np = np
        self.plan = plan
        self.network = network
        self.stop_at_limit = (not plan.is_empty()) and plan.on_round_limit == "stop"
        self.faulty_nodes: Tuple[Hashable, ...] = plan.faulty_nodes()
        self._report_topology = not plan.is_empty()

        self.node_order = node_order
        n = len(node_order)
        self._index_of = index_of
        self._indptr, self._indices, self._edge_pos = indptr, indices, edge_pos
        edge_count = len(self._indices)

        # Directed edge keys (src * n + dst) in CSR order; strictly
        # increasing whenever neighbor lists follow the canonical node order,
        # which lets the compile loops resolve edge positions with a single
        # searchsorted instead of per-edge dict lookups.
        self._sorted_edge_keys = None
        if edge_count:
            degrees = np.diff(np.asarray(indptr, dtype=np.int64))
            keys = np.repeat(
                np.arange(n, dtype=np.int64), degrees
            ) * n + np.asarray(indices, dtype=np.int64)
            if edge_count == 1 or bool((np.diff(keys) > 0).all()):
                self._sorted_edge_keys = keys

        # Per-edge omission probability and latency bounds (defaults plus
        # per-link overrides; a link override applies to both directions).
        drop_p = np.full(edge_count, float(plan.drop_probability))
        lat_low = np.full(edge_count, int(plan.latency_low), dtype=np.int64)
        lat_high = np.full(edge_count, int(plan.latency_high), dtype=np.int64)
        self._apply_link_overrides(plan, drop_p, lat_low, lat_high)
        self._drop_p = drop_p
        self._lat_low = lat_low
        self._lat_span = lat_high - lat_low + 1
        self._has_drops = bool((drop_p > 0.0).any()) if edge_count else False
        self._has_latency = bool((lat_high > 0).any()) if edge_count else False

        # Link aliveness (churn) over directed edges, plus the undirected
        # live-edge counter reported in the per-round metrics.
        self._alive = np.ones(edge_count, dtype=bool)
        self._live_undirected = undirected_edges
        # Inserts before removes within a round: an edge both re-inserted
        # (end of its downtime) and freshly removed in the same round ends up
        # removed, which is the natural reading of the schedule.
        ordered_churn = sorted(
            plan.churn, key=lambda event: (event.round_index, event.action != "insert")
        )
        churn_events = self._compile_churn_vec(ordered_churn) if ordered_churn else {}
        if churn_events is None:
            churn_events = {}
            for event in ordered_churn:
                e_uv, e_vu = self._directed_pair(event.u, event.v, "churn event")
                churn_events.setdefault(event.round_index, []).append(
                    (e_uv, e_vu, event.action == "insert")
                )
        self._churn_events = churn_events

        # Crash windows compiled to per-round down/up toggles.
        self._crashed_now = np.zeros(n, dtype=bool)
        self._permanently_crashed = np.zeros(n, dtype=bool)
        crash_events: Dict[int, List[Tuple[int, bool, bool]]] = {}
        for crash in plan.crashes:
            if crash.node not in index_of:
                raise ValueError(f"crash fault names unknown node {crash.node!r}")
            i = index_of[crash.node]
            crash_events.setdefault(crash.start, []).append((i, True, crash.is_permanent))
            if crash.recover is not None:
                crash_events.setdefault(crash.recover, []).append((i, False, False))
        for events in crash_events.values():
            # Recoveries before crashes within a round: one window may end
            # exactly where a node's next window starts (back-to-back
            # windows), and the down toggle must win regardless of the
            # order the plan listed them in.
            events.sort(key=lambda event: event[1])
        self._crash_events = crash_events

        # In-flight messages: arrival round -> [(receiver index, sender id,
        # payload)], appended in (send round, sender order) sequence.
        self._arrivals: Dict[int, List[Tuple[int, Hashable, Any]]] = {}

        self._round = -1
        self._seed = (int(plan.seed)) & _SEED_MASK
        self._uniform_round = -1
        self._drop_u = None
        self._lat_u = None

    # ------------------------------------------------------------------ #
    # Compilation helpers
    # ------------------------------------------------------------------ #

    def _apply_link_overrides(self, plan, drop_p, lat_low, lat_high) -> None:
        """Scatter per-link drop/latency overrides into the edge columns.

        Large plans (a latency or chaos regime touches most links) resolve
        every edge position in a few array operations; anything the fast
        path cannot express exactly -- unknown labels, edges outside the
        graph, duplicate overrides of one link (where the later entry must
        win, in plan order) -- falls back to the scalar loop, which also
        raises the precise per-link errors.
        """
        links = plan.links
        if not links:
            return
        np = self._np
        index_of = self._index_of
        count = len(links)
        try:
            u_idx = np.fromiter((index_of[link.u] for link in links), np.int64, count)
            v_idx = np.fromiter((index_of[link.v] for link in links), np.int64, count)
        except KeyError:
            self._apply_link_overrides_slow(plan, drop_p, lat_low, lat_high)
            return
        pos = self._edge_positions_vec(u_idx, v_idx)
        if pos is None or np.unique(np.concatenate(pos)).size != 2 * count:
            self._apply_link_overrides_slow(plan, drop_p, lat_low, lat_high)
            return
        pos_uv, pos_vu = pos
        dp = np.fromiter((link.drop_probability for link in links), np.float64, count)
        ll = np.fromiter((link.latency_low for link in links), np.int64, count)
        lh = np.fromiter((link.latency_high for link in links), np.int64, count)
        for pos in (pos_uv, pos_vu):
            drop_p[pos] = dp
            lat_low[pos] = ll
            lat_high[pos] = lh

    def _apply_link_overrides_slow(self, plan, drop_p, lat_low, lat_high) -> None:
        for link in plan.links:
            for e in self._directed_pair(link.u, link.v, "link fault"):
                drop_p[e] = link.drop_probability
                lat_low[e] = link.latency_low
                lat_high[e] = link.latency_high

    def _compile_churn_vec(self, ordered_churn):
        """Per-round ``(e_uv, e_vu, alive)`` array triples, or ``None``.

        ``None`` sends the caller to the scalar loop: unknown labels or
        edges (where it raises the precise error), unsorted CSR keys, or a
        round touching the same undirected edge twice (where the toggles
        must apply strictly in plan order).
        """
        np = self._np
        index_of = self._index_of
        count = len(ordered_churn)
        try:
            u_idx = np.fromiter(
                (index_of[e.u] for e in ordered_churn), np.int64, count
            )
            v_idx = np.fromiter(
                (index_of[e.v] for e in ordered_churn), np.int64, count
            )
        except KeyError:
            return None
        pos = self._edge_positions_vec(u_idx, v_idx)
        if pos is None:
            return None
        pos_uv, pos_vu = pos
        rounds = np.fromiter(
            (e.round_index for e in ordered_churn), np.int64, count
        )
        alive = np.fromiter(
            (e.action == "insert" for e in ordered_churn), bool, count
        )
        undirected = np.minimum(pos_uv, pos_vu)
        edge_count = np.int64(len(self._indices))
        if np.unique(rounds * edge_count + undirected).size != count:
            return None
        # ordered_churn is sorted by round, so each round is a slice.
        bounds = np.flatnonzero(np.r_[True, rounds[1:] != rounds[:-1]])
        ends = np.r_[bounds[1:], count]
        return {
            int(rounds[lo]): (pos_uv[lo:hi], pos_vu[lo:hi], alive[lo:hi])
            for lo, hi in zip(bounds.tolist(), ends.tolist())
        }

    def _edge_positions_vec(self, u_idx, v_idx):
        """Positions of directed edges ``u -> v`` and ``v -> u``, or ``None``.

        ``None`` means the fast path cannot answer -- the CSR keys are not
        sorted, or some named edge is absent -- and the caller must take the
        scalar path (which raises the precise error for missing edges).
        """
        np = self._np
        keys = self._sorted_edge_keys
        if keys is None:
            return None
        n = np.int64(len(self.node_order))
        key_uv = u_idx * n + v_idx
        key_vu = v_idx * n + u_idx
        pos_uv = np.searchsorted(keys, key_uv).clip(max=keys.size - 1)
        pos_vu = np.searchsorted(keys, key_vu).clip(max=keys.size - 1)
        if (keys[pos_uv] != key_uv).any() or (keys[pos_vu] != key_vu).any():
            return None
        return pos_uv, pos_vu

    def _directed_pair(self, u: Hashable, v: Hashable, what: str) -> Tuple[int, int]:
        index_of = self._index_of
        if u not in index_of or v not in index_of:
            raise ValueError(f"{what} names unknown node in edge ({u!r}, {v!r})")
        key_uv = (index_of[u], index_of[v])
        key_vu = (index_of[v], index_of[u])
        if key_uv not in self._edge_pos:
            raise ValueError(
                f"{what} names edge ({u!r}, {v!r}) which is not in the input graph; "
                "faults apply to the static footprint only"
            )
        return self._edge_pos[key_uv], self._edge_pos[key_vu]

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #

    def begin_round(self, round_index: int) -> None:
        """Apply the crash/churn toggles scheduled for ``round_index``."""
        self._round = round_index
        for i, down, permanent in self._crash_events.get(round_index, ()):
            self._crashed_now[i] = down
            if permanent:
                self._permanently_crashed[i] = True
        events = self._churn_events.get(round_index)
        if events is None:
            return
        if isinstance(events, list):
            # Scalar fallback format: apply toggles strictly in plan order.
            for e_uv, e_vu, alive in events:
                if bool(self._alive[e_uv]) != alive:
                    self._live_undirected += 1 if alive else -1
                self._alive[e_uv] = alive
                self._alive[e_vu] = alive
            return
        # Array format: each undirected edge appears at most once per round,
        # so the toggles commute and apply as one scatter per direction.
        e_uv, e_vu, alive = events
        current = self._alive[e_uv]
        self._live_undirected += int((alive & ~current).sum())
        self._live_undirected -= int((~alive & current).sum())
        self._alive[e_uv] = alive
        self._alive[e_vu] = alive

    def runnable(self, index: int) -> bool:
        """False iff the node is permanently crashed (it will never act again)."""
        return not self._permanently_crashed[index]

    def acting(self, index: int) -> bool:
        """False iff the node is crashed in the current round."""
        return not self._crashed_now[index]

    @property
    def crashed_now(self):
        """Boolean mask (n,) of nodes crashed in the current round.  Read-only."""
        return self._crashed_now

    @property
    def permanently_crashed(self):
        """Boolean mask (n,) of nodes that will never act again.  Read-only."""
        return self._permanently_crashed

    def crashed_count(self) -> int:
        return int(self._crashed_now.sum())

    def live_edge_count(self) -> Optional[int]:
        """Current topology size, or ``None`` when the plan is empty."""
        return self._live_undirected if self._report_topology else None

    # ------------------------------------------------------------------ #
    # Per-round randomness
    # ------------------------------------------------------------------ #

    def _ensure_uniforms(self) -> None:
        if self._uniform_round == self._round:
            return
        rng = self._np.random.default_rng((self._seed, self._round))
        edge_count = len(self._indices)
        if self._has_drops:
            self._drop_u = rng.random(edge_count)
        if self._has_latency:
            self._lat_u = rng.random(edge_count)
        self._uniform_round = self._round

    # ------------------------------------------------------------------ #
    # Delivery: scalar path (reference engine, unicast everywhere)
    # ------------------------------------------------------------------ #

    def route(
        self, round_index: int, sender_index: int, receiver_index: int, payload: Any
    ) -> Optional[int]:
        """Decide one delivery's fate; buffer it unless dropped.

        Returns ``None`` when the message is dropped at send time (dead link
        or omission draw), else the number of *extra* rounds of latency
        (``0`` = normal next-round delivery).
        """
        e = self._edge_pos[(sender_index, receiver_index)]
        if not self._alive[e]:
            return None
        if self._has_drops:
            self._ensure_uniforms()
            if self._drop_u[e] < self._drop_p[e]:
                return None
        delay = 0
        if self._has_latency:
            self._ensure_uniforms()
            delay = int(self._lat_low[e]) + int(self._lat_u[e] * self._lat_span[e])
        self._arrivals.setdefault(round_index + 1 + delay, []).append(
            (receiver_index, self.node_order[sender_index], payload)
        )
        return delay

    # ------------------------------------------------------------------ #
    # Delivery: vectorized path (batched engine broadcasts)
    # ------------------------------------------------------------------ #

    def broadcast(
        self, round_index: int, sender_index: int, payload: Any
    ) -> Tuple[int, int, int]:
        """Decide a whole broadcast's fate with masks over the CSR slice.

        Returns ``(kept, dropped, delayed)`` delivery counts; every kept
        delivery (delayed or not) is buffered for its arrival round.
        """
        np = self._np
        lo = int(self._indptr[sender_index])
        hi = int(self._indptr[sender_index + 1])
        if lo == hi:
            return 0, 0, 0
        keep = self._alive[lo:hi]
        if self._has_drops:
            self._ensure_uniforms()
            keep = keep & (self._drop_u[lo:hi] >= self._drop_p[lo:hi])
        kept_local = np.nonzero(keep)[0]
        kept = int(kept_local.size)
        dropped = (hi - lo) - kept
        if not kept:
            return 0, dropped, 0

        sender_id = self.node_order[sender_index]
        receivers = self._indices[lo:hi]
        if not self._has_latency:
            bucket = self._arrivals.setdefault(round_index + 1, [])
            for p in kept_local:
                bucket.append((int(receivers[p]), sender_id, payload))
            return kept, dropped, 0

        self._ensure_uniforms()
        delays = (self._lat_u[lo:hi] * self._lat_span[lo:hi]).astype(np.int64) + (
            self._lat_low[lo:hi]
        )
        kept_delays = delays[kept_local]
        delayed = int((kept_delays > 0).sum())
        for delay in np.unique(kept_delays):
            bucket = self._arrivals.setdefault(round_index + 1 + int(delay), [])
            for p in kept_local[kept_delays == delay]:
                bucket.append((int(receivers[p]), sender_id, payload))
        return kept, dropped, delayed

    # ------------------------------------------------------------------ #
    # Delivery: whole-round path (kernel faulted driver)
    # ------------------------------------------------------------------ #

    def edge_fates(self, round_index: int) -> Tuple[Any, Optional[Any]]:
        """All per-edge decisions for sends in ``round_index``, in one call.

        Returns ``(keep, delays)`` over the directed-edge array: ``keep[e]``
        is ``True`` iff a message sent over edge ``e`` this round survives
        (link alive and the omission draw passes), and ``delays`` is either
        ``None`` (no latency anywhere in the plan) or the per-edge extra
        latency in rounds.  The arrays are views/derivations of the same
        seeded per-round uniforms :meth:`route` and :meth:`broadcast` read,
        so a driver that applies them in CSR edge order reproduces the
        reference engine's decisions bit for bit.  Callers must not mutate
        the returned arrays.
        """
        np = self._np
        self._round = round_index
        keep = self._alive
        delays = None
        if self._has_drops:
            self._ensure_uniforms()
            keep = keep & (self._drop_u >= self._drop_p)
        if self._has_latency:
            self._ensure_uniforms()
            delays = (self._lat_u * self._lat_span).astype(np.int64) + self._lat_low
        return keep, delays

    # ------------------------------------------------------------------ #
    # Inbox assembly
    # ------------------------------------------------------------------ #

    def collect(self, round_index: int) -> Tuple[Dict[Hashable, Dict[Hashable, Any]], int]:
        """Deliver the messages arriving at ``round_index``.

        Returns ``(inboxes, dropped)`` where ``inboxes`` maps receiver id to
        its inbox dict (insertion-ordered by send round, then sender order)
        and ``dropped`` counts arrivals lost because the receiver is crashed
        this round.
        """
        entries = self._arrivals.pop(round_index, None)
        if not entries:
            return {}, 0
        inboxes: Dict[Hashable, Dict[Hashable, Any]] = {}
        crashed_now = self._crashed_now
        node_order = self.node_order
        dropped = 0
        for receiver_index, sender_id, payload in entries:
            if crashed_now[receiver_index]:
                dropped += 1
                continue
            receiver_id = node_order[receiver_index]
            inbox = inboxes.get(receiver_id)
            if inbox is None:
                inboxes[receiver_id] = {sender_id: payload}
            else:
                inbox[sender_id] = payload
        return inboxes, dropped
