"""The compiled fault runtime: applies a :class:`FaultPlan` inside a round loop.

A :class:`FaultSession` is created per execution (by
:class:`repro.faults.engine.AdversarialEngine`) and handed to the inner
engine as its ``hooks`` object.  It owns everything both engines need:

* the **compiled plan** -- CSR adjacency over directed edges (neighbor lists
  sorted by global node order), per-edge omission probabilities and latency
  bounds, crash and churn event schedules keyed by round;
* the **per-round randomness** -- one uniform array per directed edge per
  round, drawn from ``numpy``'s seeded generator.  Decisions are a pure
  function of ``(plan seed, round, directed edge)``, never of iteration
  order, which is what makes the reference engine's per-delivery path and
  the batched engine's mask-based path agree bit for bit;
* the **in-flight mailbox** -- messages buffered by arrival round, in
  ``(send round, sender order)`` sequence, so inbox insertion order (which
  algorithms observe through float accumulation) is engine-independent.

The two delivery entry points mirror the two engines: :meth:`route` decides
the fate of a single delivery (the reference engine's per-message loop),
:meth:`broadcast` decides a whole broadcast at once with NumPy masks over
the sender's CSR slice (the batched engine's vectorized loop).  Both read
the same per-round arrays, so an execution is byte-identical whichever
engine runs it -- ``tests/faults/`` enforces this.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.congest.network import Network
from repro.faults.plan import FaultPlan

__all__ = ["FaultSession"]

#: Mask keeping plan seeds inside numpy's SeedSequence domain.
_SEED_MASK = (1 << 63) - 1


class FaultSession:
    """Round-loop hooks implementing a :class:`FaultPlan` for one execution.

    The session implements the engine hook protocol documented in
    :mod:`repro.congest.engine`: ``begin_round`` / ``runnable`` / ``acting``
    for crash handling, ``route`` / ``broadcast`` / ``collect`` for the
    delivery path, and the metric accessors ``crashed_count`` /
    ``live_edge_count`` / ``faulty_nodes`` / ``stop_at_limit``.
    """

    def __init__(self, plan: FaultPlan, network: Network):
        import numpy as np

        self._np = np
        self.plan = plan
        self.network = network
        self.stop_at_limit = (not plan.is_empty()) and plan.on_round_limit == "stop"
        self.faulty_nodes: Tuple[Hashable, ...] = plan.faulty_nodes()
        self._report_topology = not plan.is_empty()

        # CSR over directed edges (neighbor lists sorted by global node
        # order, the batched engine's canonical order) comes from the
        # network's cached layout: compiled once per network and shared by
        # every fault session executed on it.
        layout = network.layout()
        node_order: List[Hashable] = layout.node_order
        self.node_order = node_order
        n = len(node_order)
        index_of = layout.index_of
        self._index_of = index_of
        self._indptr, self._indices, self._edge_pos = layout.csr()
        edge_count = len(self._indices)

        # Per-edge omission probability and latency bounds (defaults plus
        # per-link overrides; a link override applies to both directions).
        drop_p = np.full(edge_count, float(plan.drop_probability))
        lat_low = np.full(edge_count, int(plan.latency_low), dtype=np.int64)
        lat_high = np.full(edge_count, int(plan.latency_high), dtype=np.int64)
        for link in plan.links:
            for e in self._directed_pair(link.u, link.v, "link fault"):
                drop_p[e] = link.drop_probability
                lat_low[e] = link.latency_low
                lat_high[e] = link.latency_high
        self._drop_p = drop_p
        self._lat_low = lat_low
        self._lat_span = lat_high - lat_low + 1
        self._has_drops = bool((drop_p > 0.0).any()) if edge_count else False
        self._has_latency = bool((lat_high > 0).any()) if edge_count else False

        # Link aliveness (churn) over directed edges, plus the undirected
        # live-edge counter reported in the per-round metrics.
        self._alive = np.ones(edge_count, dtype=bool)
        self._live_undirected = network.m
        churn_events: Dict[int, List[Tuple[int, int, bool]]] = {}
        # Inserts before removes within a round: an edge both re-inserted
        # (end of its downtime) and freshly removed in the same round ends up
        # removed, which is the natural reading of the schedule.
        ordered_churn = sorted(
            plan.churn, key=lambda event: (event.round_index, event.action != "insert")
        )
        for event in ordered_churn:
            e_uv, e_vu = self._directed_pair(event.u, event.v, "churn event")
            churn_events.setdefault(event.round_index, []).append(
                (e_uv, e_vu, event.action == "insert")
            )
        self._churn_events = churn_events

        # Crash windows compiled to per-round down/up toggles.
        self._crashed_now = np.zeros(n, dtype=bool)
        self._permanently_crashed = np.zeros(n, dtype=bool)
        crash_events: Dict[int, List[Tuple[int, bool, bool]]] = {}
        for crash in plan.crashes:
            if crash.node not in index_of:
                raise ValueError(f"crash fault names unknown node {crash.node!r}")
            i = index_of[crash.node]
            crash_events.setdefault(crash.start, []).append((i, True, crash.is_permanent))
            if crash.recover is not None:
                crash_events.setdefault(crash.recover, []).append((i, False, False))
        for events in crash_events.values():
            # Recoveries before crashes within a round: one window may end
            # exactly where a node's next window starts (back-to-back
            # windows), and the down toggle must win regardless of the
            # order the plan listed them in.
            events.sort(key=lambda event: event[1])
        self._crash_events = crash_events

        # In-flight messages: arrival round -> [(receiver index, sender id,
        # payload)], appended in (send round, sender order) sequence.
        self._arrivals: Dict[int, List[Tuple[int, Hashable, Any]]] = {}

        self._round = -1
        self._seed = (int(plan.seed)) & _SEED_MASK
        self._uniform_round = -1
        self._drop_u = None
        self._lat_u = None

    # ------------------------------------------------------------------ #
    # Compilation helpers
    # ------------------------------------------------------------------ #

    def _directed_pair(self, u: Hashable, v: Hashable, what: str) -> Tuple[int, int]:
        index_of = self._index_of
        if u not in index_of or v not in index_of:
            raise ValueError(f"{what} names unknown node in edge ({u!r}, {v!r})")
        key_uv = (index_of[u], index_of[v])
        key_vu = (index_of[v], index_of[u])
        if key_uv not in self._edge_pos:
            raise ValueError(
                f"{what} names edge ({u!r}, {v!r}) which is not in the input graph; "
                "faults apply to the static footprint only"
            )
        return self._edge_pos[key_uv], self._edge_pos[key_vu]

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #

    def begin_round(self, round_index: int) -> None:
        """Apply the crash/churn toggles scheduled for ``round_index``."""
        self._round = round_index
        for i, down, permanent in self._crash_events.get(round_index, ()):
            self._crashed_now[i] = down
            if permanent:
                self._permanently_crashed[i] = True
        for e_uv, e_vu, alive in self._churn_events.get(round_index, ()):
            if bool(self._alive[e_uv]) != alive:
                self._live_undirected += 1 if alive else -1
            self._alive[e_uv] = alive
            self._alive[e_vu] = alive

    def runnable(self, index: int) -> bool:
        """False iff the node is permanently crashed (it will never act again)."""
        return not self._permanently_crashed[index]

    def acting(self, index: int) -> bool:
        """False iff the node is crashed in the current round."""
        return not self._crashed_now[index]

    def crashed_count(self) -> int:
        return int(self._crashed_now.sum())

    def live_edge_count(self) -> Optional[int]:
        """Current topology size, or ``None`` when the plan is empty."""
        return self._live_undirected if self._report_topology else None

    # ------------------------------------------------------------------ #
    # Per-round randomness
    # ------------------------------------------------------------------ #

    def _ensure_uniforms(self) -> None:
        if self._uniform_round == self._round:
            return
        rng = self._np.random.default_rng((self._seed, self._round))
        edge_count = len(self._indices)
        if self._has_drops:
            self._drop_u = rng.random(edge_count)
        if self._has_latency:
            self._lat_u = rng.random(edge_count)
        self._uniform_round = self._round

    # ------------------------------------------------------------------ #
    # Delivery: scalar path (reference engine, unicast everywhere)
    # ------------------------------------------------------------------ #

    def route(
        self, round_index: int, sender_index: int, receiver_index: int, payload: Any
    ) -> Optional[int]:
        """Decide one delivery's fate; buffer it unless dropped.

        Returns ``None`` when the message is dropped at send time (dead link
        or omission draw), else the number of *extra* rounds of latency
        (``0`` = normal next-round delivery).
        """
        e = self._edge_pos[(sender_index, receiver_index)]
        if not self._alive[e]:
            return None
        if self._has_drops:
            self._ensure_uniforms()
            if self._drop_u[e] < self._drop_p[e]:
                return None
        delay = 0
        if self._has_latency:
            self._ensure_uniforms()
            delay = int(self._lat_low[e]) + int(self._lat_u[e] * self._lat_span[e])
        self._arrivals.setdefault(round_index + 1 + delay, []).append(
            (receiver_index, self.node_order[sender_index], payload)
        )
        return delay

    # ------------------------------------------------------------------ #
    # Delivery: vectorized path (batched engine broadcasts)
    # ------------------------------------------------------------------ #

    def broadcast(
        self, round_index: int, sender_index: int, payload: Any
    ) -> Tuple[int, int, int]:
        """Decide a whole broadcast's fate with masks over the CSR slice.

        Returns ``(kept, dropped, delayed)`` delivery counts; every kept
        delivery (delayed or not) is buffered for its arrival round.
        """
        np = self._np
        lo = int(self._indptr[sender_index])
        hi = int(self._indptr[sender_index + 1])
        if lo == hi:
            return 0, 0, 0
        keep = self._alive[lo:hi]
        if self._has_drops:
            self._ensure_uniforms()
            keep = keep & (self._drop_u[lo:hi] >= self._drop_p[lo:hi])
        kept_local = np.nonzero(keep)[0]
        kept = int(kept_local.size)
        dropped = (hi - lo) - kept
        if not kept:
            return 0, dropped, 0

        sender_id = self.node_order[sender_index]
        receivers = self._indices[lo:hi]
        if not self._has_latency:
            bucket = self._arrivals.setdefault(round_index + 1, [])
            for p in kept_local:
                bucket.append((int(receivers[p]), sender_id, payload))
            return kept, dropped, 0

        self._ensure_uniforms()
        delays = (self._lat_u[lo:hi] * self._lat_span[lo:hi]).astype(np.int64) + (
            self._lat_low[lo:hi]
        )
        kept_delays = delays[kept_local]
        delayed = int((kept_delays > 0).sum())
        for delay in np.unique(kept_delays):
            bucket = self._arrivals.setdefault(round_index + 1 + int(delay), [])
            for p in kept_local[kept_delays == delay]:
                bucket.append((int(receivers[p]), sender_id, payload))
        return kept, dropped, delayed

    # ------------------------------------------------------------------ #
    # Inbox assembly
    # ------------------------------------------------------------------ #

    def collect(self, round_index: int) -> Tuple[Dict[Hashable, Dict[Hashable, Any]], int]:
        """Deliver the messages arriving at ``round_index``.

        Returns ``(inboxes, dropped)`` where ``inboxes`` maps receiver id to
        its inbox dict (insertion-ordered by send round, then sender order)
        and ``dropped`` counts arrivals lost because the receiver is crashed
        this round.
        """
        entries = self._arrivals.pop(round_index, None)
        if not entries:
            return {}, 0
        inboxes: Dict[Hashable, Dict[Hashable, Any]] = {}
        crashed_now = self._crashed_now
        node_order = self.node_order
        dropped = 0
        for receiver_index, sender_id, payload in entries:
            if crashed_now[receiver_index]:
                dropped += 1
                continue
            receiver_id = node_order[receiver_index]
            inbox = inboxes.get(receiver_id)
            if inbox is None:
                inboxes[receiver_id] = {sender_id: payload}
            else:
                inbox[sender_id] = payload
        return inboxes, dropped
