"""Remarks 4.4 and 4.5: the settings where ``Delta`` or ``alpha`` are unknown.

The main algorithms assume every node knows the maximum degree ``Delta`` and
the arboricity bound ``alpha``.  The paper sketches two adaptations:

* **Remark 4.4 (unknown Delta).**  Initialise the packing value of ``v`` with
  ``tau_v / max_{u in N+(v)} |N+(u)|`` instead of ``tau_v / (Delta+1)``, and
  interleave an extra step into every iteration: any still-undominated node
  whose packing value already exceeds ``lambda * tau_v`` immediately adds a
  minimum-weight member of its closed neighborhood to the final dominating
  set.  After ``O(log Delta / eps)`` iterations every node is dominated and
  the ``(2*alpha+1)*(1+eps)`` analysis goes through unchanged.

* **Remark 4.5 (unknown alpha).**  First compute a low out-degree orientation
  with the Barenboim--Elkin peeling procedure, let each node use the maximum
  out-degree in its closed neighborhood as a local arboricity estimate
  ``alpha_hat_v``, and run the same interleaved algorithm with the per-node
  threshold ``lambda_v = 1/((2*alpha_hat_v+1)*(1+eps))`` and initial packing
  values ``tau_v / (n+1)``.  The approximation becomes
  ``(2*alpha+1)*(2+O(eps))`` and the round complexity depends on ``log n``
  rather than ``log Delta``.

Reproduction note (documented substitution): Barenboim--Elkin's peeling needs
an upper bound on the arboricity as its threshold.  Since ``alpha`` is
exactly what is unknown here, our implementation follows a fixed doubling
schedule of threshold estimates ``1, 2, 4, ...`` (all nodes know ``n``, so
the schedule is globally agreed without communication).  This preserves the
out-degree guarantee -- every node's out-degree is at most ``(2+eps)`` times
the estimate in force when it is peeled, which is below ``2*(2+eps)*alpha`` --
at the price of a worst-case ``O(log^2 n / eps)`` orientation stage instead
of the remark's ``O(log n / eps)``.  The measured approximation factors are
unaffected, which is what benchmark E7 verifies.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.congest.algorithm import Outbox, SynchronousAlgorithm
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext
from repro.core.partial import theorem11_lambda

__all__ = ["UnknownDegreeMDSAlgorithm", "UnknownArboricityMDSAlgorithm"]


class _InterleavedPrimalDual(SynchronousAlgorithm):
    """Shared machinery for the interleaved (Remark 4.4 / 4.5) iterations.

    Each iteration of the interleaved algorithm takes three rounds:

    * **round A** -- termination check (a node stops once it and all its
      neighbors are dominated), the *extra step* (an undominated node whose
      packing value exceeds its threshold sends a "selected" message to a
      minimum-weight member of its closed neighborhood, or joins directly if
      it is itself the minimum), and the packing-value broadcast;
    * **round B** -- process selections, compute ``X_v`` and join the partial
      set when saturated, announce joins;
    * **round C** -- absorb join announcements, apply the ``(1+eps)``
      increase to still-undominated nodes, report domination status.

    Subclasses define how many setup rounds precede the iterations and how
    the per-node packing value and threshold are initialised.
    """

    congest = True

    def __init__(self, epsilon: float = 0.1):
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.epsilon = epsilon

    # -- subclass interface --------------------------------------------- #

    def setup_rounds(self, node: NodeContext) -> int:
        """Number of rounds before the first iteration round."""
        raise NotImplementedError

    def setup_round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        """Handle one of the setup rounds; must initialise ``x``, ``tau``, ``lambda``."""
        raise NotImplementedError

    def fallback_setup(self, node: NodeContext) -> None:
        """Initialise ``tau``/``lambda`` for a node that slept through setup.

        Fault-free runs never call this: the setup rounds always run.  Under
        fault injection a crash window can cover the round that learns
        ``tau`` and ``lambda``; the recovering node then falls back to local
        knowledge (its own weight, its locally best arboricity estimate) so
        the run degrades instead of dying on ``None`` arithmetic.
        """
        state = node.state
        if state["tau"] is None:
            state["tau"] = node.weight
        if state["lambda"] is None:
            state["lambda"] = theorem11_lambda(self._fallback_alpha(node), self.epsilon)

    def _fallback_alpha(self, node: NodeContext) -> int:
        """The arboricity estimate used by :meth:`fallback_setup`."""
        return max(1, node.config.get("alpha") or 1)

    # -- shared state ---------------------------------------------------- #

    def setup(self, node: NodeContext) -> None:
        node.state.update(
            {
                "x": 0.0,
                "tau": None,
                "lambda": None,
                "in_s": False,
                "in_s_prime": False,
                "dominated": False,
                "neighbor_weights": {},
                "neighbor_dominated": {neighbor: False for neighbor in node.neighbors},
                "increase_count": 0,
                "iterations_executed": 0,
            }
        )

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        setup_rounds = self.setup_rounds(node)
        if round_index < setup_rounds:
            return self.setup_round(node, round_index, inbox)
        offset = (round_index - setup_rounds) % 3
        if offset == 0:
            return self._round_a(node, inbox)
        if offset == 1:
            return self._round_b(node, inbox)
        return self._round_c(node, inbox)

    # -- the three iteration rounds --------------------------------------#

    def _round_a(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        # Absorb domination reports from the previous round C.
        for neighbor, message in inbox.items():
            if message.get("dominated"):
                state["neighbor_dominated"][neighbor] = True
        if state["dominated"] and all(state["neighbor_dominated"].values()):
            node.finish()
            return None
        if state["lambda"] is None or state["tau"] is None:
            self.fallback_setup(node)
        state["iterations_executed"] += 1

        outbox = {neighbor: {"x": state["x"]} for neighbor in node.neighbors}
        if not state["dominated"] and state["x"] > state["lambda"] * state["tau"]:
            target = self._cheapest_dominator(node)
            if target == node.node_id:
                state["in_s_prime"] = True
                state["dominated"] = True
                state["announce_join"] = True
            else:
                outbox[target] = {"x": state["x"], "selected": True}
        return outbox

    def _round_b(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        load = state["x"]
        selected = False
        for message in inbox.values():
            load += float(message.get("x", 0.0))
            if message.get("selected"):
                selected = True
        if selected and not state["in_s_prime"]:
            state["in_s_prime"] = True
            state["dominated"] = True
            state["announce_join"] = True
        if not state["in_s"] and load >= node.weight / (1.0 + self.epsilon):
            state["in_s"] = True
            state["dominated"] = True
            state["announce_join"] = True
        if state.pop("announce_join", False):
            return Broadcast({"joined": True})
        return None

    def _round_c(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        if any(message.get("joined") for message in inbox.values()):
            state["dominated"] = True
        if not state["dominated"]:
            state["x"] *= 1.0 + self.epsilon
            state["increase_count"] += 1
        return Broadcast({"dominated": bool(state["dominated"])})

    # -- helpers ---------------------------------------------------------#

    def _cheapest_dominator(self, node: NodeContext) -> Hashable:
        state = node.state
        best_node = node.node_id
        best_weight = node.weight
        for neighbor, weight in sorted(
            state["neighbor_weights"].items(), key=lambda item: repr(item[0])
        ):
            if weight < best_weight:
                best_node = neighbor
                best_weight = weight
        return best_node

    def output(self, node: NodeContext) -> Dict[str, object]:
        state = node.state
        return {
            "in_ds": bool(state["in_s"] or state["in_s_prime"]),
            "in_partial": bool(state["in_s"]),
            "in_extension": bool(state["in_s_prime"]),
            "x_partial": float(state["x"]),
            "x": float(state["x"]),
            "tau": state["tau"],
            "iterations": int(state["iterations_executed"]),
            "alpha_estimate": state.get("alpha_hat"),
            "fallback_join": False,
        }


class UnknownDegreeMDSAlgorithm(_InterleavedPrimalDual):
    """Remark 4.4: Theorem 1.1 without global knowledge of ``Delta``.

    Requires ``alpha`` to be known (it enters ``lambda``); run it on a network
    created with ``knows_max_degree=False`` to verify that nothing reads
    ``Delta``.
    """

    name = "dory-ghaffari-ilchi-unknown-delta"

    def __init__(self, epsilon: float = 0.1):
        super().__init__(epsilon=epsilon)

    def setup_rounds(self, node: NodeContext) -> int:
        return 2

    def setup_round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        if round_index == 0:
            return Broadcast({"weight": node.weight, "closed_degree": node.closed_degree})
        # Round 1: initialise tau, lambda and the packing value.
        alpha = node.config.get("alpha")
        if alpha is None:
            raise ValueError("Remark 4.4 still assumes alpha is global knowledge")
        neighbor_weights = {}
        max_closed_degree = node.closed_degree
        for neighbor, message in inbox.items():
            if "weight" not in message:  # foreign delayed payload (fault injection)
                continue
            neighbor_weights[neighbor] = int(message["weight"])
            max_closed_degree = max(max_closed_degree, int(message["closed_degree"]))
        state["neighbor_weights"] = neighbor_weights
        state["tau"] = min([node.weight] + list(neighbor_weights.values()))
        state["lambda"] = theorem11_lambda(alpha, self.epsilon)
        state["x"] = state["tau"] / max_closed_degree
        return None

    def max_rounds(self, network) -> Optional[int]:
        max_degree = max(1, network.max_degree)
        iterations = int(math.log(max_degree + 1) / math.log1p(self.epsilon)) + 6
        return 2 + 3 * iterations + 6


class UnknownArboricityMDSAlgorithm(_InterleavedPrimalDual):
    """Remark 4.5: ``(2*alpha+1)*(2+O(eps))``-approximation without knowing ``alpha``.

    Every node must know ``n`` (always available in our networks).  The
    algorithm first computes a low out-degree orientation by threshold
    peeling on a fixed doubling schedule (see the module docstring for the
    documented deviation from the remark), derives the local estimate
    ``alpha_hat_v`` = maximum out-degree in the closed neighborhood, and then
    runs the interleaved iterations with ``lambda_v`` built from that local
    estimate and packing values initialised to ``tau_v / (n+1)``.
    """

    name = "dory-ghaffari-ilchi-unknown-alpha"

    def __init__(self, epsilon: float = 0.25):
        super().__init__(epsilon=epsilon)

    # -- schedule --------------------------------------------------------#

    def _peeling_phases_per_block(self, n: int) -> int:
        """Enough phases to exhaust a graph whose arboricity matches the block estimate."""
        return max(1, math.ceil(math.log(n + 1) / math.log1p(self.epsilon / 2.0))) + 1

    def _block_count(self, n: int) -> int:
        """Doubling estimates ``1, 2, 4, ...`` up to ``n`` cover every possible arboricity."""
        return max(1, math.ceil(math.log2(max(2, n)))) + 1

    def setup_rounds(self, node: NodeContext) -> int:
        n = node.config["n"]
        return 1 + self._block_count(n) * self._peeling_phases_per_block(n) + 2

    def _fallback_alpha(self, node: NodeContext) -> int:
        # alpha is unknown here; the best local stand-in for a node that
        # slept through the estimate exchange is its own out-degree.
        return max(1, int(node.state.get("out_degree") or 0))

    # -- setup rounds -----------------------------------------------------#

    def setup(self, node: NodeContext) -> None:
        super().setup(node)
        node.state.update(
            {
                "peeled": False,
                "peeled_neighbors": set(),
                "out_degree": 0,
                "neighbor_out_degrees": {},
            }
        )

    def setup_round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        n = node.config["n"]
        phases_per_block = self._peeling_phases_per_block(n)
        blocks = self._block_count(n)
        peel_rounds = blocks * phases_per_block

        if round_index == 0:
            return Broadcast({"weight": node.weight})
        if round_index == 1:
            state["neighbor_weights"] = {
                neighbor: int(message["weight"])
                for neighbor, message in inbox.items()
                if "weight" in message
            }
            state["tau"] = min([node.weight] + list(state["neighbor_weights"].values()))
        if 1 <= round_index <= peel_rounds:
            return self._peeling_round(node, round_index - 1, inbox, phases_per_block)
        if round_index == peel_rounds + 1:
            # Peeling is over; absorb the last announcements and publish the out-degree.
            self._absorb_peels(node, inbox)
            return Broadcast({"out_degree": state["out_degree"]})
        # Final setup round: derive the local arboricity estimate and thresholds.
        for neighbor, message in inbox.items():
            if "out_degree" not in message:  # foreign delayed payload (fault injection)
                continue
            state["neighbor_out_degrees"][neighbor] = int(message["out_degree"])
        alpha_hat = max([state["out_degree"]] + list(state["neighbor_out_degrees"].values()))
        alpha_hat = max(1, alpha_hat)
        state["alpha_hat"] = alpha_hat
        state["lambda"] = theorem11_lambda(alpha_hat, self.epsilon)
        if state["tau"] is None:
            # Fault-free runs set tau in round 1; a node whose crash window
            # covered that round falls back to its own weight (always a
            # member of N+(v)) so the run degrades instead of crashing.
            state["tau"] = node.weight
        state["x"] = state["tau"] / (n + 1)
        return None

    def _peeling_round(
        self,
        node: NodeContext,
        phase_index: int,
        inbox: Dict[Hashable, dict],
        phases_per_block: int,
    ) -> Outbox:
        state = node.state
        self._absorb_peels(node, inbox)
        if state["peeled"]:
            return None
        estimate = 2 ** (phase_index // phases_per_block)
        threshold = (2.0 + self.epsilon) * estimate
        remaining = node.degree - len(state["peeled_neighbors"])
        if remaining <= threshold:
            state["peeled"] = True
            state["out_degree"] = remaining
            return Broadcast({"peeled": True})
        return None

    def _absorb_peels(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> None:
        for neighbor, message in inbox.items():
            if message.get("peeled"):
                node.state["peeled_neighbors"].add(neighbor)

    def max_rounds(self, network) -> Optional[int]:
        n = max(2, network.n)
        setup = 1 + self._block_count(n) * self._peeling_phases_per_block(n) + 2
        iterations = int(math.log(n + 1) / math.log1p(self.epsilon)) + 6
        return setup + 3 * iterations + 6
