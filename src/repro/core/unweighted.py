"""Theorem 3.1: the unweighted warm-up algorithm of Section 3.

Section 3 of the paper is the unit-weight special case of the Section 4
machinery: the partial phase is the Lemma 4.1 procedure with ``tau_v = 1``
and ``lambda = 1/((2*alpha+1)*(1+eps))``, and the extension simply adds every
undominated node to the dominating set.  With the tie-breaking rule of
:func:`repro.core.weighted.select_cheapest_dominator` (prefer yourself when
weights tie), the weighted extension degenerates to exactly that, so this
class is a thin, intention-revealing wrapper whose only additional job is to
*assert* that the input really is unweighted.
"""

from __future__ import annotations

from repro.congest.node import NodeContext
from repro.core.weighted import WeightedMDSAlgorithm

__all__ = ["UnweightedMDSAlgorithm"]


class UnweightedMDSAlgorithm(WeightedMDSAlgorithm):
    """Deterministic ``(2*alpha+1)*(1+eps)`` approximation for unweighted MDS.

    Runs in ``O(log(Delta/alpha)/eps)`` CONGEST rounds (Theorem 3.1).  The
    implementation is shared with :class:`WeightedMDSAlgorithm`; see that
    class for the round schedule.
    """

    name = "dory-ghaffari-ilchi-unweighted"

    def setup(self, node: NodeContext) -> None:
        if node.weight != 1:
            raise ValueError(
                "UnweightedMDSAlgorithm requires unit weights; "
                "use WeightedMDSAlgorithm for weighted instances"
            )
        super().setup(node)
