"""Packing values and weak-duality bounds (Section 2 of the paper).

The paper's algorithms are primal-dual: every node ``v`` carries a *packing
value* ``x_v >= 0`` subject to the constraint that for every node ``u``,

    ``X_u = sum_{v in N+(u)} x_v <= w_u``.

Lemma 2.1 (weak duality) then gives ``sum_v x_v <= OPT``, the weight of a
minimum weight dominating set.  The algorithms bound the weight of the set
they output against ``sum_v x_v``, so verifying feasibility of the final
packing plus the claimed inequality *certifies* the approximation factor on
every individual run -- this is exactly what the test-suite and the
benchmark harness do.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping

import networkx as nx

from repro.graphs.weights import node_weight

__all__ = [
    "FEASIBILITY_TOLERANCE",
    "packing_from_outputs",
    "neighborhood_load",
    "is_feasible_packing",
    "packing_value_sum",
    "certified_lower_bound",
]

#: Relative slack allowed when checking feasibility, to absorb floating point
#: rounding in the ``(1 + eps)`` multiplications.
FEASIBILITY_TOLERANCE = 1e-9


def packing_from_outputs(
    outputs: Mapping[Hashable, Mapping[str, object]], key: str = "x_partial"
) -> Dict[Hashable, float]:
    """Extract a packing ``{node: x}`` from per-node algorithm outputs."""
    packing = {}
    for node, record in outputs.items():
        value = record.get(key, 0.0) if isinstance(record, Mapping) else 0.0
        packing[node] = float(value or 0.0)
    return packing


def neighborhood_load(graph: nx.Graph, packing: Mapping[Hashable, float], node: Hashable) -> float:
    """Return ``X_node = sum over the closed neighborhood of the packing``."""
    load = packing.get(node, 0.0)
    for neighbor in graph.neighbors(node):
        load += packing.get(neighbor, 0.0)
    return load


def is_feasible_packing(
    graph: nx.Graph,
    packing: Mapping[Hashable, float],
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> bool:
    """Check the packing constraint ``X_u <= w_u`` at every node ``u``.

    A relative ``tolerance`` absorbs floating point error; the algorithms
    maintain feasibility exactly in exact arithmetic (Observation 4.2).
    """
    if any(value < -tolerance for value in packing.values()):
        return False
    for node in graph.nodes():
        weight = node_weight(graph, node)
        if neighborhood_load(graph, packing, node) > weight * (1.0 + tolerance):
            return False
    return True


def packing_value_sum(packing: Mapping[Hashable, float]) -> float:
    """Return ``sum_v x_v``; by Lemma 2.1 this lower-bounds OPT when feasible."""
    return float(sum(packing.values()))


def certified_lower_bound(graph: nx.Graph, packing: Mapping[Hashable, float]) -> float:
    """Return ``sum_v x_v`` if the packing is feasible, else raise ``ValueError``.

    The returned value is a certified lower bound on the weight of every
    dominating set of ``graph`` (Lemma 2.1), usable as the denominator of a
    conservative approximation-ratio measurement.
    """
    if not is_feasible_packing(graph, packing):
        raise ValueError("packing violates the closed-neighborhood constraints")
    return packing_value_sum(packing)
