"""Theorem 1.1: deterministic ``(2*alpha+1)*(1+eps)`` approximation for weighted MDS.

The algorithm runs the Lemma 4.1 partial phase with
``lambda = 1 / ((2*alpha+1)*(1+eps))`` and then, for every node ``v`` left
undominated, adds one minimum-weight node of ``N+(v)`` (a node of weight
``tau_v``) to the dominating set.  The total weight is at most
``(2*alpha+1)*(1+eps) * OPT`` and the round complexity is
``O(log(Delta/alpha) / eps)`` in the CONGEST model.

Distributed implementation of the extension: every node learned its
neighbors' weights in round 0, so an undominated node locally selects the
minimum-weight member of its closed neighborhood (ties broken towards itself
and then by node id, so the choice is deterministic) and sends it a one-bit
"you are selected" message; selected nodes join the dominating set in the
next round.  This costs two extra rounds.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.congest.algorithm import Outbox
from repro.congest.node import NodeContext
from repro.core.partial import PrimalDualBase

__all__ = ["WeightedMDSAlgorithm", "select_cheapest_dominator"]


def select_cheapest_dominator(node: NodeContext) -> Hashable:
    """Return the minimum-weight member of ``N+(v)``, preferring ``v`` itself.

    Ties are broken first towards the node itself (so the unweighted
    algorithm degenerates to "undominated nodes join themselves", exactly the
    set ``T`` of Theorem 3.1) and then by the string representation of the
    node id, making the outcome deterministic.
    """
    state = node.state
    best_node = node.node_id
    best_weight = node.weight
    for neighbor, weight in sorted(state["neighbor_weights"].items(), key=lambda item: repr(item[0])):
        if weight < best_weight:
            best_node = neighbor
            best_weight = weight
    return best_node


class WeightedMDSAlgorithm(PrimalDualBase):
    """Deterministic weighted MDS approximation (Theorem 1.1).

    Parameters
    ----------
    epsilon:
        Approximation slack; the guarantee is ``(2*alpha+1)*(1+eps)``.
    lambda_value:
        Override for the Lemma 4.1 threshold, used by ablation experiments.
        ``None`` (default) uses the paper's ``1/((2*alpha+1)*(1+eps))``.
    """

    name = "dory-ghaffari-ilchi-deterministic"

    def __init__(self, epsilon: float = 0.1, lambda_value=None):
        super().__init__(epsilon=epsilon, lambda_value=lambda_value)

    def approximation_guarantee(self, alpha: int) -> float:
        """The proven worst-case approximation factor for arboricity ``alpha``."""
        return (2 * alpha + 1) * (1.0 + self.epsilon)

    # ------------------------------------------------------------------ #
    # Extension: one selection round plus one join round
    # ------------------------------------------------------------------ #

    def on_finalize(self, node: NodeContext) -> Outbox:
        state = node.state
        if state["dominated"]:
            return None
        target = select_cheapest_dominator(node)
        state["selected_dominator"] = target
        if target == node.node_id:
            state["in_s_prime"] = True
            state["dominated"] = True
            return None
        return {target: {"selected": True}}

    def extension_round(
        self, node: NodeContext, extension_index: int, inbox: Dict[Hashable, dict]
    ) -> Outbox:
        # Fault-free runs only ever reach extension_index 0 (the node
        # finishes immediately); a crash-recover node that slept through it
        # re-enters at a later index and must still absorb and terminate,
        # otherwise it would stall the run forever.
        state = node.state
        if any(message.get("selected") for message in inbox.values()):
            state["in_s_prime"] = True
            state["dominated"] = True
        node.finish()
        return None

    def extension_round_bound(self, network) -> int:
        return 2
