"""Legacy convenience helpers, now thin wrappers over the unified run API.

.. deprecated::
    The per-algorithm ``solve_*`` helpers are kept for backward
    compatibility and produce byte-identical results, but new code should
    use the declarative API instead::

        import repro

        spec = repro.RunSpec(graph=graph, algorithm="deterministic",
                             params={"epsilon": 0.2}, engine="batched")
        result = repro.execute(spec)                  # one-shot

        with repro.Session() as session:              # compile once, run many
            for result in session.run_many(base=spec, seeds=range(16)):
                ...

    Each helper below builds the equivalent :class:`~repro.run.RunSpec` and
    calls :func:`repro.execute`; ``tests/run/test_parity_grid.py`` enforces
    that the two paths match byte for byte across the full algorithm x
    graph-family grid.  The helpers emit a :class:`DeprecationWarning` (once
    per call site, under Python's default warning filters).

Every function returns a :class:`DominatingSetResult` carrying the set, its
weight, the CONGEST round count, the raw per-node outputs and the traffic
metrics.  ``engine`` selects the simulator backend exactly as before
(``"reference"``, ``"batched"``, an engine instance, or ``None`` for the
process-wide default).
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.run import DominatingSetResult, RunSpec, execute, registry_lookup

__all__ = [
    "DominatingSetResult",
    "solve_mds",
    "solve_weighted_mds",
    "solve_mds_randomized",
    "solve_mds_general",
    "solve_mds_forest",
    "solve_mds_unknown_degree",
    "solve_mds_unknown_arboricity",
    "solve_with_algorithm",
    "SOLVERS",
    "resolve_solver",
]


def _deprecated(helper: str, algorithm: str) -> None:
    warnings.warn(
        f"{helper}() is a legacy wrapper; build a repro.RunSpec("
        f"algorithm={algorithm!r}, ...) and use repro.execute / repro.Session "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )


def solve_mds(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Deterministic ``(2*alpha+1)*(1+eps)`` approximation (Theorems 1.1 / 3.1).

    Dispatches to the unweighted warm-up algorithm when every node weight is
    one, and to the weighted algorithm otherwise.  ``alpha`` defaults to the
    degeneracy of the graph, a certified upper bound on the arboricity.
    """
    _deprecated("solve_mds", "deterministic")
    return execute(
        RunSpec(
            graph=graph,
            algorithm="deterministic",
            params={"epsilon": epsilon},
            alpha=alpha,
            seed=seed,
            engine=engine,
        )
    )


def solve_weighted_mds(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Deterministic weighted MDS approximation (Theorem 1.1), regardless of weights."""
    _deprecated("solve_weighted_mds", "weighted")
    return execute(
        RunSpec(
            graph=graph,
            algorithm="weighted",
            params={"epsilon": epsilon},
            alpha=alpha,
            seed=seed,
            engine=engine,
        )
    )


def solve_mds_randomized(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    t: int = 1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Randomized ``alpha + O(alpha/t)`` expected approximation (Theorem 1.2)."""
    _deprecated("solve_mds_randomized", "randomized")
    return execute(
        RunSpec(
            graph=graph,
            algorithm="randomized",
            params={"t": t},
            alpha=alpha,
            seed=seed,
            engine=engine,
        )
    )


def solve_mds_general(
    graph: nx.Graph, k: int = 2, seed: int = 0, engine: EngineSpec = None
) -> DominatingSetResult:
    """Randomized ``O(k * Delta^(2/k))`` approximation for general graphs (Theorem 1.3)."""
    _deprecated("solve_mds_general", "general")
    return execute(
        RunSpec(graph=graph, algorithm="general", params={"k": k}, seed=seed, engine=engine)
    )


def solve_mds_forest(
    graph: nx.Graph, seed: int = 0, engine: EngineSpec = None
) -> DominatingSetResult:
    """Single-round 3-approximation on forests (Observation A.1, unweighted)."""
    _deprecated("solve_mds_forest", "forest")
    return execute(RunSpec(graph=graph, algorithm="forest", seed=seed, engine=engine))


def solve_mds_unknown_degree(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Remark 4.4: the Theorem 1.1 guarantee without global knowledge of ``Delta``."""
    _deprecated("solve_mds_unknown_degree", "unknown-degree")
    return execute(
        RunSpec(
            graph=graph,
            algorithm="unknown-degree",
            params={"epsilon": epsilon},
            alpha=alpha,
            seed=seed,
            engine=engine,
        )
    )


def solve_mds_unknown_arboricity(
    graph: nx.Graph,
    epsilon: float = 0.25,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Remark 4.5: ``(2*alpha+1)*(2+O(eps))`` approximation without knowing ``alpha``."""
    _deprecated("solve_mds_unknown_arboricity", "unknown-arboricity")
    return execute(
        RunSpec(
            graph=graph,
            algorithm="unknown-arboricity",
            params={"epsilon": epsilon},
            seed=seed,
            engine=engine,
        )
    )


def solve_with_algorithm(
    graph: nx.Graph,
    algorithm,
    alpha: Optional[int] = None,
    seed: int = 0,
    engine: EngineSpec = None,
    knows_max_degree: bool = True,
    guarantee: Optional[float] = None,
) -> DominatingSetResult:
    """Run an arbitrary CONGEST algorithm and package the standard result.

    The escape hatch behind the ``solve_*`` helpers: anything implementing
    the simulator's algorithm protocol can be executed and verified through
    the same :class:`DominatingSetResult` pipeline.  Equivalent to a
    :class:`~repro.run.RunSpec` with an algorithm *instance*.
    """
    return execute(
        RunSpec(
            graph=graph,
            algorithm=algorithm,
            alpha=alpha,
            seed=seed,
            engine=engine,
            knows_max_degree=knows_max_degree,
            guarantee=guarantee,
        )
    )


#: Named registry of the paper's legacy solver entry points.  Kept for
#: backward compatibility; the canonical registry (including the baseline
#: solvers) is :data:`repro.run.ALGORITHMS`.
SOLVERS: Dict[str, Any] = {
    "deterministic": solve_mds,
    "weighted": solve_weighted_mds,
    "randomized": solve_mds_randomized,
    "general": solve_mds_general,
    "forest": solve_mds_forest,
    "unknown-degree": solve_mds_unknown_degree,
    "unknown-arboricity": solve_mds_unknown_arboricity,
}


def resolve_solver(name: str):
    """Return the ``solve_*`` function registered under ``name``.

    Unknown names raise a ``KeyError`` listing the available solvers, via
    the same :func:`repro.run.registry_lookup` helper the ``RunSpec``
    validation uses.
    """
    return registry_lookup(SOLVERS, name, "solver")
