"""High-level convenience API for the paper's algorithms.

These helpers wrap the CONGEST machinery so that a downstream user who just
wants "a good dominating set of this networkx graph" never has to touch the
simulator directly::

    import networkx as nx
    from repro import solve_mds

    graph = nx.petersen_graph()
    result = solve_mds(graph, alpha=3, epsilon=0.2)
    print(result.dominating_set, result.weight, result.rounds)

Every function returns a :class:`DominatingSetResult` that carries the set,
its weight, the number of CONGEST rounds the distributed execution took, the
raw per-node outputs and the traffic metrics.

Engine selection
----------------

Every helper accepts an ``engine`` keyword selecting the simulator's round
executor:

* ``engine="reference"`` -- the per-message oracle loop (the initial
  process-wide default; see :func:`repro.congest.engine.get_default_engine`);
* ``engine="batched"`` -- a NumPy-vectorized fast path that batches broadcast
  delivery, metric aggregation and bandwidth checks per round (5-10x faster
  on the benchmark-scale graphs, observationally identical results);
* an :class:`repro.congest.engine.Engine` instance, for custom executors;
* ``None`` -- use the process-wide default, see
  :func:`repro.congest.engine.set_default_engine`.

The two built-in engines produce identical outputs, round counts and traffic
metrics on every algorithm (enforced by ``tests/congest/test_engine_parity.py``),
so the choice is purely a performance knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Set

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.simulator import RunResult, run_algorithm
from repro.congest.metrics import RunMetrics
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.core.trees import ForestMDSAlgorithm
from repro.core.unknown_params import UnknownArboricityMDSAlgorithm, UnknownDegreeMDSAlgorithm
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.validation import dominating_set_weight, is_dominating_set

__all__ = [
    "DominatingSetResult",
    "solve_mds",
    "solve_weighted_mds",
    "solve_mds_randomized",
    "solve_mds_general",
    "solve_mds_forest",
    "solve_mds_unknown_degree",
    "solve_mds_unknown_arboricity",
    "solve_with_algorithm",
    "SOLVERS",
    "resolve_solver",
]


@dataclass
class DominatingSetResult:
    """The outcome of running one dominating-set algorithm on one graph."""

    algorithm: str
    dominating_set: Set[Hashable]
    weight: int
    rounds: int
    is_valid: bool
    metrics: RunMetrics
    outputs: Dict[Hashable, Any] = field(repr=False, default_factory=dict)
    guarantee: Optional[float] = None

    def __len__(self) -> int:
        return len(self.dominating_set)


def _package(graph: nx.Graph, result: RunResult, guarantee: Optional[float] = None) -> DominatingSetResult:
    selected = result.selected_nodes()
    return DominatingSetResult(
        algorithm=result.algorithm_name,
        dominating_set=selected,
        weight=dominating_set_weight(graph, selected),
        rounds=result.rounds,
        is_valid=is_dominating_set(graph, selected),
        metrics=result.metrics,
        outputs=result.outputs,
        guarantee=guarantee,
    )


def _resolve_alpha(graph: nx.Graph, alpha: Optional[int]) -> int:
    if alpha is not None:
        if alpha < 1:
            raise ValueError("alpha must be at least 1")
        return alpha
    return max(1, arboricity_upper_bound(graph))


def _is_unweighted(graph: nx.Graph) -> bool:
    return all(graph.nodes[node].get("weight", 1) == 1 for node in graph.nodes())


def solve_mds(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Deterministic ``(2*alpha+1)*(1+eps)`` approximation (Theorems 1.1 / 3.1).

    Dispatches to the unweighted warm-up algorithm when every node weight is
    one, and to the weighted algorithm otherwise.  ``alpha`` defaults to the
    degeneracy of the graph, a certified upper bound on the arboricity.
    """
    alpha = _resolve_alpha(graph, alpha)
    if _is_unweighted(graph):
        algorithm = UnweightedMDSAlgorithm(epsilon=epsilon)
    else:
        algorithm = WeightedMDSAlgorithm(epsilon=epsilon)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed, engine=engine)
    return _package(graph, result, guarantee=algorithm.approximation_guarantee(alpha))


def solve_weighted_mds(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Deterministic weighted MDS approximation (Theorem 1.1), regardless of weights."""
    alpha = _resolve_alpha(graph, alpha)
    algorithm = WeightedMDSAlgorithm(epsilon=epsilon)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed, engine=engine)
    return _package(graph, result, guarantee=algorithm.approximation_guarantee(alpha))


def solve_mds_randomized(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    t: int = 1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Randomized ``alpha + O(alpha/t)`` expected approximation (Theorem 1.2)."""
    alpha = _resolve_alpha(graph, alpha)
    algorithm = RandomizedMDSAlgorithm(t=t)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed, engine=engine)
    return _package(graph, result, guarantee=algorithm.approximation_guarantee(alpha))


def solve_mds_general(
    graph: nx.Graph, k: int = 2, seed: int = 0, engine: EngineSpec = None
) -> DominatingSetResult:
    """Randomized ``O(k * Delta^(2/k))`` approximation for general graphs (Theorem 1.3)."""
    algorithm = GeneralGraphMDSAlgorithm(k=k)
    max_degree = max(dict(graph.degree()).values(), default=0)
    result = run_algorithm(graph, algorithm, alpha=None, seed=seed, engine=engine)
    return _package(graph, result, guarantee=algorithm.approximation_guarantee(max_degree))


def solve_mds_forest(
    graph: nx.Graph, seed: int = 0, engine: EngineSpec = None
) -> DominatingSetResult:
    """Single-round 3-approximation on forests (Observation A.1, unweighted)."""
    algorithm = ForestMDSAlgorithm()
    result = run_algorithm(graph, algorithm, seed=seed, engine=engine)
    return _package(graph, result, guarantee=3.0)


def solve_mds_unknown_degree(
    graph: nx.Graph,
    alpha: Optional[int] = None,
    epsilon: float = 0.1,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Remark 4.4: the Theorem 1.1 guarantee without global knowledge of ``Delta``."""
    alpha = _resolve_alpha(graph, alpha)
    algorithm = UnknownDegreeMDSAlgorithm(epsilon=epsilon)
    result = run_algorithm(
        graph, algorithm, alpha=alpha, seed=seed, knows_max_degree=False, engine=engine
    )
    return _package(graph, result, guarantee=(2 * alpha + 1) * (1 + epsilon))


def solve_mds_unknown_arboricity(
    graph: nx.Graph,
    epsilon: float = 0.25,
    seed: int = 0,
    engine: EngineSpec = None,
) -> DominatingSetResult:
    """Remark 4.5: ``(2*alpha+1)*(2+O(eps))`` approximation without knowing ``alpha``."""
    algorithm = UnknownArboricityMDSAlgorithm(epsilon=epsilon)
    result = run_algorithm(
        graph, algorithm, alpha=None, seed=seed, knows_max_degree=False, engine=engine
    )
    alpha = max(1, arboricity_upper_bound(graph))
    return _package(graph, result, guarantee=(2 * alpha + 1) * (2 + 3 * epsilon))


def solve_with_algorithm(
    graph: nx.Graph,
    algorithm,
    alpha: Optional[int] = None,
    seed: int = 0,
    engine: EngineSpec = None,
    knows_max_degree: bool = True,
    guarantee: Optional[float] = None,
) -> DominatingSetResult:
    """Run an arbitrary CONGEST algorithm and package the standard result.

    This is the escape hatch behind the ``solve_*`` helpers: anything that
    implements the simulator's algorithm protocol -- the paper's algorithms
    with non-default parameters, the distributed baselines
    (:mod:`repro.baselines`), or ablation variants -- can be executed and
    verified through the same :class:`DominatingSetResult` pipeline the
    experiment harness consumes.  ``guarantee`` is attached verbatim (pass
    ``None`` for heuristics with no proven factor).
    """
    result = run_algorithm(
        graph,
        algorithm,
        alpha=alpha,
        seed=seed,
        knows_max_degree=knows_max_degree,
        engine=engine,
    )
    return _package(graph, result, guarantee=guarantee)


#: Named registry of the paper's solver entry points, used by the scenario
#: registry (:mod:`repro.orchestration.registry`) to reference solvers by
#: name in declarative, hashable scenario specs.
SOLVERS: Dict[str, Any] = {
    "deterministic": solve_mds,
    "weighted": solve_weighted_mds,
    "randomized": solve_mds_randomized,
    "general": solve_mds_general,
    "forest": solve_mds_forest,
    "unknown-degree": solve_mds_unknown_degree,
    "unknown-arboricity": solve_mds_unknown_arboricity,
}


def resolve_solver(name: str):
    """Return the ``solve_*`` function registered under ``name``."""
    try:
        return SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise KeyError(f"unknown solver {name!r}; known solvers: {known}") from None
