"""Lemma 4.6 and Theorem 1.2: the randomized ``alpha*(1+o(1))`` algorithm.

After the partial phase, every undominated node ``v`` carries a packing value
``x_v >= lambda * tau_v`` (property (b) of Lemma 4.1).  Lemma 4.6 exploits
this with an iterative sampling procedure: nodes whose closed neighborhood
holds at least a ``1/gamma`` fraction of their weight in *undominated*
packing value form the candidate set ``Gamma``; candidates are sampled with a
probability that grows geometrically (``1/(Delta+1), gamma/(Delta+1), ...``)
until it reaches one, at which point all remaining candidates join.  Between
phases the packing values of still-undominated nodes are scaled up by
``gamma``, which keeps the per-phase sub-packing feasible and forces every
node to be dominated after ``ceil(log_gamma(1/lambda))`` phases.  The
expected weight added per phase is at most ``gamma*(gamma+1) * OPT``
(Lemma 4.8), and the whole extension takes
``O(log_gamma(1/lambda) * log_gamma(Delta))`` CONGEST rounds.

Theorem 1.2 plugs in ``eps = 1/(4t)``, ``lambda = eps/(alpha+1)`` and
``gamma = max(2, alpha^(1/(2t)))``, obtaining an expected
``(alpha + O(alpha/t))``-approximation in ``O(t * log Delta)`` rounds.

Round schedule of the extension (two rounds per sampling iteration):

* round A -- recompute ``X_u`` from the packing values broadcast in the
  previous round, update ``Gamma`` membership, sample, announce joins;
* round B -- absorb join announcements (become dominated), apply the
  end-of-phase ``gamma`` scaling if this was the last iteration of a phase,
  and re-broadcast the packing value if still undominated.

One trailing safety round lets any node that is somehow still undominated
join itself; the paper proves this cannot happen, and the test-suite asserts
that the fallback is never used.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.congest.algorithm import Outbox
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext
from repro.core.partial import PrimalDualBase

__all__ = [
    "Lemma46Extension",
    "RandomizedMDSAlgorithm",
    "theorem12_parameters",
]


def theorem12_parameters(alpha: int, t: int) -> Dict[str, float]:
    """Return the ``epsilon``, ``lambda`` and ``gamma`` used by Theorem 1.2.

    ``t`` trades approximation for rounds: the guarantee is
    ``alpha + O(alpha/t)`` in ``O(t*log Delta)`` rounds, for
    ``1 <= t <= alpha/log(alpha)``.
    """
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    if t < 1:
        raise ValueError("t must be at least 1")
    epsilon = 1.0 / (4.0 * t)
    lambda_value = epsilon / (alpha + 1)
    gamma = max(2.0, alpha ** (1.0 / (2.0 * t)))
    return {"epsilon": epsilon, "lambda": lambda_value, "gamma": gamma}


class Lemma46Extension(PrimalDualBase):
    """Primal-dual partial phase followed by the Lemma 4.6 sampling extension.

    Parameters
    ----------
    epsilon, lambda_value, skip_partial:
        Forwarded to :class:`PrimalDualBase` (the Lemma 4.1 partial phase).
    gamma:
        The sampling/scaling parameter of Lemma 4.6 (must exceed 1).  It may
        also be ``None``, in which case :meth:`resolve_gamma` must be
        overridden by a subclass that derives it from global knowledge.
    """

    name = "lemma46-extension"

    def __init__(
        self,
        epsilon: float = 0.25,
        lambda_value=None,
        gamma: Optional[float] = None,
        skip_partial: bool = False,
    ):
        super().__init__(epsilon=epsilon, lambda_value=lambda_value, skip_partial=skip_partial)
        if gamma is not None and gamma <= 1:
            raise ValueError("gamma must exceed 1")
        self.gamma = gamma

    # -- parameter resolution ------------------------------------------- #

    def resolve_gamma(self, node: NodeContext) -> float:
        if self.gamma is None:
            raise ValueError("gamma was not provided and no subclass derives it")
        return float(self.gamma)

    # -- schedule ------------------------------------------------------- #

    @staticmethod
    def _iterations_per_phase(max_degree: int, gamma: float) -> int:
        """``r = ceil(log_gamma(Delta + 1)) + 1`` (so the last probability is 1)."""
        return max(1, math.ceil(math.log(max_degree + 1) / math.log(gamma))) + 1

    @staticmethod
    def _phase_count(lambda_value: float, gamma: float) -> int:
        """``t = ceil(log_gamma(1 / lambda))`` phases."""
        return max(1, math.ceil(math.log(1.0 / lambda_value) / math.log(gamma)))

    def setup_extension(self, node: NodeContext) -> None:
        state = node.state
        gamma = self.resolve_gamma(node)
        max_degree = node.config["max_degree"]
        iterations = self._iterations_per_phase(max_degree, gamma)
        phases = self._phase_count(state["lambda"], gamma)
        state["ext_gamma"] = gamma
        state["ext_iterations"] = iterations
        state["ext_phases"] = phases
        state["ext_total_rounds"] = phases * 2 * iterations
        state["in_gamma"] = False

    # -- extension rounds ----------------------------------------------- #

    def on_finalize(self, node: NodeContext) -> Outbox:
        state = node.state
        if state["dominated"]:
            return None
        return Broadcast({"x": state["x"]})

    def extension_round(
        self, node: NodeContext, extension_index: int, inbox: Dict[Hashable, dict]
    ) -> Outbox:
        state = node.state
        total = state["ext_total_rounds"]
        if extension_index >= total:
            # Safety net: the paper proves every node is dominated by now.
            if not state["dominated"]:
                state["in_s_prime"] = True
                state["dominated"] = True
                state["fallback_join"] = True
            node.finish()
            return None

        iterations = state["ext_iterations"]
        within_phase = extension_index % (2 * iterations)
        iteration = within_phase // 2
        if within_phase % 2 == 0:
            return self._sampling_round(node, iteration, inbox)
        return self._absorb_round(node, iteration, inbox)

    def _sampling_round(
        self, node: NodeContext, iteration: int, inbox: Dict[Hashable, dict]
    ) -> Outbox:
        """Round A: recompute ``X_u``, update ``Gamma``, sample, announce."""
        state = node.state
        gamma = state["ext_gamma"]
        load = 0.0
        for message in inbox.values():
            load += float(message.get("x", 0.0))
        if not state["dominated"]:
            load += state["x"]
        state["ext_load"] = load

        eligible = not state["in_s"] and not state["in_s_prime"]
        threshold = node.weight / gamma
        if iteration == 0:
            state["in_gamma"] = eligible and load >= threshold
        elif state["in_gamma"] and (not eligible or load < threshold):
            state["in_gamma"] = False

        if not state["in_gamma"]:
            return None
        max_degree = node.config["max_degree"]
        probability = min(1.0, gamma ** iteration / (max_degree + 1))
        if node.rng.random() < probability:
            state["in_s_prime"] = True
            state["dominated"] = True
            state["in_gamma"] = False
            return Broadcast({"joined_ext": True})
        return None

    def _absorb_round(
        self, node: NodeContext, iteration: int, inbox: Dict[Hashable, dict]
    ) -> Outbox:
        """Round B: absorb joins, end-of-phase scaling, re-broadcast packing."""
        state = node.state
        if any(message.get("joined_ext") for message in inbox.values()):
            state["dominated"] = True
        if state["dominated"]:
            return None
        if iteration == state["ext_iterations"] - 1:
            # Between phases, undominated packing values are scaled by gamma;
            # the per-phase sub-packing stays feasible because every node not
            # in S u S' finished the phase with X_u <= w_u / gamma.
            state["x"] *= state["ext_gamma"]
        return Broadcast({"x": state["x"]})

    # -- bookkeeping ----------------------------------------------------- #

    def extension_round_bound(self, network) -> int:
        gamma = self.gamma if self.gamma is not None else 2.0
        max_degree = max(1, network.max_degree)
        iterations = self._iterations_per_phase(max_degree, gamma)
        # The phase count depends on lambda, which may be alpha-dependent.
        # lambda is never smaller than 1/(16 n^2 (Delta+1)) for any sensible
        # parameterisation, so the following is a safe (loose) cap; the
        # algorithm itself stops after its exact per-node schedule anyway.
        smallest_lambda = 1.0 / (16.0 * max(2, network.n) ** 2 * (max_degree + 1))
        phases = max(1, math.ceil(math.log(1.0 / smallest_lambda) / math.log(gamma)))
        return phases * 2 * iterations + 8


class RandomizedMDSAlgorithm(Lemma46Extension):
    """Theorem 1.2: expected ``(alpha + O(alpha/t))``-approximation.

    Parameters
    ----------
    t:
        The trade-off parameter, ``1 <= t <= alpha/log(alpha)``.  Larger ``t``
        sharpens the approximation towards ``alpha`` and increases the round
        complexity to ``O(t * log Delta)``.

    The ``epsilon``, ``lambda`` and ``gamma`` values are derived from ``t``
    and the globally known ``alpha`` exactly as in the proof of Theorem 1.2:
    ``eps = 1/(4t)``, ``lambda = eps/(alpha+1)``, ``gamma = max(2, alpha^(1/(2t)))``.
    """

    name = "dory-ghaffari-ilchi-randomized"

    def __init__(self, t: int = 1):
        if t < 1:
            raise ValueError("t must be at least 1")
        self.t = t
        epsilon = 1.0 / (4.0 * t)

        def theorem12_lambda(alpha, eps):
            if alpha is None:
                raise ValueError("Theorem 1.2 assumes alpha is global knowledge")
            return eps / (alpha + 1)

        super().__init__(
            epsilon=epsilon,
            lambda_value=theorem12_lambda,
            gamma=None,
            skip_partial=False,
        )

    def resolve_gamma(self, node: NodeContext) -> float:
        alpha = node.config.get("alpha")
        if alpha is None:
            raise ValueError("Theorem 1.2 assumes alpha is global knowledge")
        return max(2.0, alpha ** (1.0 / (2.0 * self.t)))

    def approximation_guarantee(self, alpha: int) -> float:
        """Expected approximation factor ``alpha + O(alpha/t)`` (constant ~ per proof)."""
        params = theorem12_parameters(alpha, self.t)
        gamma = params["gamma"]
        lambda_value = params["lambda"]
        partial = alpha / (1.0 / (1.0 + params["epsilon"]) - lambda_value * (alpha + 1))
        extension = gamma * (gamma + 1) * math.ceil(math.log(1.0 / lambda_value) / math.log(gamma))
        return partial + extension
