"""Observation A.1: a single-round 3-approximation on forests (arboricity 1).

On a forest, taking every internal (non-leaf) node yields a dominating set of
size at most three times the optimum.  The distributed implementation costs a
single communication round, which is only needed to patch up the two corner
cases the one-line description glosses over:

* an isolated node must dominate itself, and
* a connected component that is a single edge has no internal node at all, so
  one of its two endpoints (the one with the smaller identifier) joins.

Both are resolved by exchanging degrees with the neighbors once.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.congest.algorithm import Outbox, SynchronousAlgorithm
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext

__all__ = ["ForestMDSAlgorithm"]


class ForestMDSAlgorithm(SynchronousAlgorithm):
    """The trivial forest algorithm of Observation A.1 (unweighted).

    Output format matches the primal-dual algorithms (``{"in_ds": bool}``) so
    the same harness code can evaluate it.
    """

    name = "forest-nonleaf-3approx"

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        if round_index == 0:
            if node.degree == 0:
                # Isolated node: no communication needed, dominate yourself.
                state["in_ds"] = True
                node.finish()
                return None
            return Broadcast({"degree": node.degree})
        # Round 1: all neighbor degrees are known.
        if node.degree >= 2:
            state["in_ds"] = True
        elif node.degree == 1:
            if not inbox:
                # Fault-free runs always deliver the single neighbor's degree;
                # under fault injection (message loss, crashed neighbor) the
                # leaf cannot tell whether its neighbor is internal, so it
                # joins -- the conservative choice that keeps itself dominated.
                state["in_ds"] = True
            else:
                (neighbor, message), = inbox.items()
                neighbor_degree = int(message["degree"])
                if neighbor_degree == 1:
                    # Two-node component: exactly one endpoint joins.
                    state["in_ds"] = repr(node.node_id) < repr(neighbor)
                else:
                    state["in_ds"] = False
        node.finish()
        return None

    def output(self, node: NodeContext) -> Dict[str, object]:
        return {"in_ds": bool(node.state.get("in_ds", False))}

    def max_rounds(self, network) -> int:
        return 3
