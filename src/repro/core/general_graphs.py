"""Theorem 1.3: ``O(k * Delta^(2/k))``-approximation for general graphs.

Theorem 1.3 is a byproduct of Lemma 4.6: start from the *empty* partial set
``S`` with initial packing values ``x_v = tau_v / (Delta + 1)`` (which
trivially satisfy property (b) with ``lambda = 1/(Delta+1)``) and run the
sampling extension with ``gamma = Delta^(1/k)``.  The output is a dominating
set of expected weight at most ``Delta^(1/k) * (Delta^(1/k)+1) * (k+1) * OPT``
computed in ``O(k^2)`` CONGEST rounds.  This improves the classic
Kuhn--Wattenhofer / KMW bound by a ``log Delta`` factor and needs no
arboricity assumption at all.
"""

from __future__ import annotations

import math

from repro.congest.node import NodeContext
from repro.core.randomized import Lemma46Extension

__all__ = ["GeneralGraphMDSAlgorithm"]


class GeneralGraphMDSAlgorithm(Lemma46Extension):
    """Randomized dominating set approximation for arbitrary graphs.

    Parameters
    ----------
    k:
        The trade-off parameter of Theorem 1.3.  The expected approximation
        factor is ``Delta^(1/k) * (Delta^(1/k) + 1) * (k + 1)`` and the round
        complexity ``O(k^2)``.
    """

    name = "dory-ghaffari-ilchi-general-graphs"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        super().__init__(
            epsilon=0.5,  # unused: the partial phase is skipped
            lambda_value=lambda alpha, eps: 0.0,  # placeholder, overridden in setup
            gamma=None,
            skip_partial=True,
        )

    def resolve_lambda(self, node: NodeContext) -> float:
        max_degree = node.config["max_degree"]
        return 1.0 / (max_degree + 1)

    def resolve_gamma(self, node: NodeContext) -> float:
        max_degree = node.config["max_degree"]
        return max(2.0, (max_degree + 1) ** (1.0 / self.k))

    def approximation_guarantee(self, max_degree: int) -> float:
        """The expected approximation factor proved in Theorem 1.3."""
        gamma = max(2.0, (max_degree + 1) ** (1.0 / self.k))
        return gamma * (gamma + 1) * (self.k + 1)

    def expected_round_bound(self, max_degree: int) -> int:
        """``O(k^2)``: phases times iterations, both about ``k``."""
        gamma = max(2.0, (max_degree + 1) ** (1.0 / self.k))
        iterations = max(1, math.ceil(math.log(max_degree + 1) / math.log(gamma))) + 1
        phases = max(1, math.ceil(math.log(max_degree + 1) / math.log(gamma)))
        return 2 * phases * iterations + 8
