"""Shared primal-dual machinery: the partial dominating set of Lemma 4.1.

Both the deterministic algorithm (Theorem 1.1 / Theorem 3.1) and the
randomized algorithm (Theorem 1.2) start by building a *partial* dominating
set ``S`` with the two properties of Lemma 4.1:

(a) ``w_S <= alpha * (1/(1+eps) - lambda*(alpha+1))^{-1} * sum_{v in N+(S)} x_v``
(b) every node left undominated by ``S`` has packing value ``x_v >= lambda * tau_v``,

where ``tau_v = min_{u in N+(v)} w_u`` and ``{x_v}`` is a feasible packing.
They then differ only in how the undominated remainder is covered -- the
"extension".  :class:`PrimalDualBase` implements the partial phase as a
synchronous CONGEST algorithm and exposes two hooks, :meth:`on_finalize` and
:meth:`extension_round`, that concrete algorithms override to implement
their extension.

Round schedule
--------------

==============================  =====================================================
round index                     action
==============================  =====================================================
0                               broadcast own weight (needed for ``tau_v``)
1 (= P1 of iteration 1)         compute ``tau_v``, initialise ``x_v = tau_v/(Delta+1)``,
                                broadcast ``x_v``   (when ``r = 0`` this round instead
                                acts as the finalize round)
2i     (= P2 of iteration i)    compute ``X_v``; if ``X_v >= w_v/(1+eps)`` join ``S``
                                and announce it
2i+1   (= P1 of iteration i+1)  process announcements (mark dominated / freeze), apply
                                the ``(1+eps)`` increase to still-undominated nodes,
                                broadcast ``x_v``
2r+1   (finalize)               process the last announcements, apply the last
                                increase, then hand over to the extension hooks
2r+2, ...                       extension rounds (subclass specific)
==============================  =====================================================

Every iteration of the paper costs two communication rounds here, so the
measured round count is ``2r + O(1)`` with
``r = O(log(Delta * lambda) / eps)`` exactly as in Lemma 4.1.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Optional, Union

from repro.congest.algorithm import Outbox, SynchronousAlgorithm
from repro.congest.message import Broadcast
from repro.congest.node import NodeContext

__all__ = [
    "PrimalDualBase",
    "PartialDominatingSet",
    "partial_iteration_count",
    "theorem11_lambda",
]

LambdaSpec = Union[float, Callable[[int, float], float], None]


def theorem11_lambda(alpha: int, epsilon: float) -> float:
    """The ``lambda`` used by Theorem 1.1/3.1: ``1 / ((2*alpha+1) * (1+eps))``."""
    return 1.0 / ((2 * alpha + 1) * (1.0 + epsilon))


def partial_iteration_count(max_degree: int, epsilon: float, lambda_value: float) -> int:
    """Return ``r``, the number of iterations of the Lemma 4.1 procedure.

    ``r`` is the smallest integer with ``(1+eps)^r / (Delta+1) > lambda``;
    equivalently ``(1+eps)^(r-1)/(Delta+1) <= lambda``.  When
    ``lambda < 1/(Delta+1)`` the procedure is skipped entirely (``r = 0``)
    and the partial set is empty, exactly as in the proof of Lemma 4.1.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    base = 1.0 / (max_degree + 1)
    if lambda_value < base:
        return 0
    r = 0
    value = base
    # lambda * (Delta + 1) <= (2*alpha+1)-ish values: the loop runs
    # O(log(Delta*lambda)/eps) times, which is tiny; no need for logs and the
    # loop avoids floating point edge cases near equality.
    while value <= lambda_value:
        value *= 1.0 + epsilon
        r += 1
    return r


class PrimalDualBase(SynchronousAlgorithm):
    """Base class: Lemma 4.1 partial phase plus extension hooks.

    Parameters
    ----------
    epsilon:
        The ``eps`` of Lemma 4.1 (controls both the approximation slack and
        the number of iterations).
    lambda_value:
        The ``lambda`` threshold of Lemma 4.1.  May be a float, or a callable
        ``(alpha, epsilon) -> float`` evaluated against the network's alpha,
        or ``None`` meaning "use the Theorem 1.1 value
        ``1/((2*alpha+1)*(1+eps))``".
    skip_partial:
        When ``True`` the partial phase is skipped entirely (``S`` stays
        empty and packing values stay at their initial ``tau_v/(Delta+1)``),
        which is how Theorem 1.3 invokes Lemma 4.6.
    """

    name = "primal-dual-base"

    def __init__(
        self,
        epsilon: float = 0.1,
        lambda_value: LambdaSpec = None,
        skip_partial: bool = False,
    ):
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.epsilon = epsilon
        self.lambda_spec = lambda_value
        self.skip_partial = skip_partial

    # ------------------------------------------------------------------ #
    # Parameter resolution
    # ------------------------------------------------------------------ #

    def resolve_lambda(self, node: NodeContext) -> float:
        """Return the ``lambda`` this node uses (global knowledge in the base)."""
        alpha = node.config.get("alpha")
        if callable(self.lambda_spec):
            return self.lambda_spec(alpha, self.epsilon)
        if self.lambda_spec is not None:
            return float(self.lambda_spec)
        if alpha is None:
            raise ValueError(
                "lambda_value=None requires the network to know alpha "
                "(pass alpha= to run_algorithm or Network)"
            )
        return theorem11_lambda(alpha, self.epsilon)

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def setup(self, node: NodeContext) -> None:
        max_degree = node.config.get("max_degree")
        if max_degree is None:
            raise ValueError(
                "this algorithm assumes Delta is global knowledge; use the "
                "UnknownDegree variant (Remark 4.4) otherwise"
            )
        lambda_value = self.resolve_lambda(node)
        r = 0 if self.skip_partial else partial_iteration_count(
            max_degree, self.epsilon, lambda_value
        )
        state = node.state
        state["lambda"] = lambda_value
        state["r"] = r
        state["finalize_round"] = 1 if r == 0 else 2 * r + 1
        state["x"] = 0.0
        state["x_partial"] = 0.0
        state["tau"] = None
        state["neighbor_weights"] = {}
        state["in_s"] = False
        state["in_s_prime"] = False
        state["dominated"] = False
        state["increase_count"] = 0
        self.setup_extension(node)

    def setup_extension(self, node: NodeContext) -> None:
        """Hook for subclasses to initialise extension-specific state."""

    # ------------------------------------------------------------------ #
    # Round dispatch
    # ------------------------------------------------------------------ #

    def round(self, node: NodeContext, round_index: int, inbox: Dict[Hashable, dict]) -> Outbox:
        state = node.state
        finalize_round = state["finalize_round"]
        if round_index == 0:
            return Broadcast({"weight": node.weight})
        if round_index == 1 and finalize_round != 1:
            self._initialise_packing(node, inbox)
            return Broadcast({"x": state["x"]})
        if round_index < finalize_round:
            if round_index % 2 == 0:
                return self._decide_round(node, inbox)
            return self._increase_round(node, inbox)
        if round_index == finalize_round:
            if finalize_round == 1:
                # The partial phase was skipped: tau / x are initialised here.
                self._initialise_packing(node, inbox)
            else:
                self._absorb_joins(node, inbox)
                self._apply_increase_if_undominated(node)
            state["x_partial"] = state["x"]
            state["dominated_at_partial_end"] = state["dominated"]
            return self.on_finalize(node)
        return self.extension_round(node, round_index - finalize_round - 1, inbox)

    # ------------------------------------------------------------------ #
    # Partial phase internals
    # ------------------------------------------------------------------ #

    def _initialise_packing(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> None:
        """Compute ``tau_v`` from the weight exchange and set ``x_v = tau_v/(Delta+1)``."""
        state = node.state
        # Fault-free runs only ever see weight messages here; under fault
        # injection a latency-delayed message from another phase may share the
        # round, so foreign payloads are skipped rather than crashing.
        neighbor_weights = {
            neighbor: int(message["weight"])
            for neighbor, message in inbox.items()
            if "weight" in message
        }
        state["neighbor_weights"] = neighbor_weights
        tau = min([node.weight] + list(neighbor_weights.values()))
        state["tau"] = tau
        max_degree = node.config["max_degree"]
        state["x"] = tau / (max_degree + 1)
        state["x_partial"] = state["x"]

    def _decide_round(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> Outbox:
        """P2 of an iteration: compute ``X_v`` and join ``S`` when saturated."""
        state = node.state
        load = state["x"]
        for message in inbox.values():
            load += float(message.get("x", 0.0))
        state["last_load"] = load
        if not state["in_s"] and load >= node.weight / (1.0 + self.epsilon):
            state["in_s"] = True
            state["dominated"] = True
            return Broadcast({"joined_s": True})
        return None

    def _increase_round(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> Outbox:
        """P1 of the next iteration: absorb announcements, raise ``x``, re-broadcast."""
        self._absorb_joins(node, inbox)
        self._apply_increase_if_undominated(node)
        return Broadcast({"x": node.state["x"]})

    def _absorb_joins(self, node: NodeContext, inbox: Dict[Hashable, dict]) -> None:
        state = node.state
        if any(message.get("joined_s") for message in inbox.values()):
            state["dominated"] = True

    def _apply_increase_if_undominated(self, node: NodeContext) -> None:
        state = node.state
        if not state["dominated"]:
            state["x"] *= 1.0 + self.epsilon
            state["increase_count"] += 1

    # ------------------------------------------------------------------ #
    # Extension hooks
    # ------------------------------------------------------------------ #

    def on_finalize(self, node: NodeContext) -> Outbox:
        """Called once when the partial phase ends.  Default: stop here."""
        node.finish()
        return None

    def extension_round(
        self, node: NodeContext, extension_index: int, inbox: Dict[Hashable, dict]
    ) -> Outbox:
        """Called for every round after the finalize round."""
        node.finish()
        return None

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #

    def output(self, node: NodeContext) -> Dict[str, object]:
        state = node.state
        return {
            "in_ds": bool(state.get("in_s") or state.get("in_s_prime")),
            "in_partial": bool(state.get("in_s")),
            "in_extension": bool(state.get("in_s_prime")),
            "dominated_by_partial": bool(state.get("dominated_at_partial_end", False)),
            "x_partial": float(state.get("x_partial", 0.0)),
            "x": float(state.get("x", 0.0)),
            "tau": state.get("tau"),
            "increase_count": int(state.get("increase_count", 0)),
            "fallback_join": bool(state.get("fallback_join", False)),
        }

    def max_rounds(self, network) -> Optional[int]:
        """A generous but finite cap: the schedule length is known in advance."""
        max_degree = max(1, network.max_degree)
        # 2r + constant, with r <= log_{1+eps}(Delta + 1) + 1.
        r_bound = int(math.log(max_degree + 1) / math.log1p(self.epsilon)) + 2
        return 2 * r_bound + 8 + self.extension_round_bound(network)

    def extension_round_bound(self, network) -> int:
        """Upper bound on the number of extension rounds (subclass specific)."""
        return 4


class PartialDominatingSet(PrimalDualBase):
    """Just the partial phase of Lemma 4.1, with no extension.

    The output of this algorithm is *not* necessarily a dominating set; it
    exposes the partial set ``S`` and the packing values so that tests can
    verify properties (a) and (b) of Lemma 4.1 in isolation, and so that
    ablation benchmarks can measure how much of the final solution each phase
    contributes.
    """

    name = "lemma41-partial"

    def on_finalize(self, node: NodeContext) -> Outbox:
        node.finish()
        return None
