"""The paper's algorithms: distributed dominating set in bounded arboricity graphs.

Module map (paper section -> module):

* Section 2 (packing values, weak duality)  -> :mod:`repro.core.packing`
* Lemma 3.2 / Lemma 4.1 (partial dominating set) -> :mod:`repro.core.partial`
* Theorem 3.1 (unweighted warm-up)          -> :mod:`repro.core.unweighted`
* Theorem 1.1 (deterministic, weighted)     -> :mod:`repro.core.weighted`
* Lemma 4.6 + Theorem 1.2 (randomized)      -> :mod:`repro.core.randomized`
* Theorem 1.3 (general graphs)              -> :mod:`repro.core.general_graphs`
* Remarks 4.4 / 4.5 (unknown Delta / alpha) -> :mod:`repro.core.unknown_params`
* Observation A.1 (forests)                 -> :mod:`repro.core.trees`
* Convenience wrappers                      -> :mod:`repro.core.api`
"""

from repro.core.api import (
    DominatingSetResult,
    solve_mds,
    solve_mds_forest,
    solve_mds_general,
    solve_mds_randomized,
    solve_mds_unknown_arboricity,
    solve_mds_unknown_degree,
    solve_weighted_mds,
)
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.packing import (
    certified_lower_bound,
    is_feasible_packing,
    packing_from_outputs,
    packing_value_sum,
)
from repro.core.partial import PartialDominatingSet, PrimalDualBase, partial_iteration_count, theorem11_lambda
from repro.core.randomized import Lemma46Extension, RandomizedMDSAlgorithm, theorem12_parameters
from repro.core.trees import ForestMDSAlgorithm
from repro.core.unknown_params import UnknownArboricityMDSAlgorithm, UnknownDegreeMDSAlgorithm
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm

__all__ = [
    "DominatingSetResult",
    "ForestMDSAlgorithm",
    "GeneralGraphMDSAlgorithm",
    "Lemma46Extension",
    "PartialDominatingSet",
    "PrimalDualBase",
    "RandomizedMDSAlgorithm",
    "UnknownArboricityMDSAlgorithm",
    "UnknownDegreeMDSAlgorithm",
    "UnweightedMDSAlgorithm",
    "WeightedMDSAlgorithm",
    "certified_lower_bound",
    "is_feasible_packing",
    "packing_from_outputs",
    "packing_value_sum",
    "partial_iteration_count",
    "solve_mds",
    "solve_mds_forest",
    "solve_mds_general",
    "solve_mds_randomized",
    "solve_mds_unknown_arboricity",
    "solve_mds_unknown_degree",
    "solve_weighted_mds",
    "theorem11_lambda",
    "theorem12_parameters",
]
