"""The long-lived execution service behind ``repro serve``.

:class:`RunService` is the transport-free core (the HTTP layer in
:mod:`repro.serve.http` is a thin shell around it, and tests drive it
directly): a persistent :class:`~repro.run.session.Session` fronted by the
canonical wire codec and three layers of work avoidance --

1. **compiled-graph sharing** -- the graph portion of every request
   (graph + weights + graph_seed, hashed in canonical wire form) is
   interned in an LRU: requests naming the same graph are rewritten onto
   the one resident source object, so the session's identity-keyed
   compiled-state cache (network, CSR layout, payload memo, degeneracy
   bound) hits across requests; evicted entries are invalidated out of the
   session so memory is bounded by the LRU capacity;
2. **in-flight deduplication** -- identical requests racing each other
   share one future: the first arrival executes, the rest await the same
   outcome (success *and* failure), so a thundering herd costs one run;
3. **content-addressed response cache** -- completed responses are stored
   in the same :class:`~repro.orchestration.cache.ResultCache` root the
   sweep runner uses, keyed by the canonical wire hash (plus the code
   version), so repeats -- across requests *and* across server restarts --
   are answered from disk without executing anything.

Every response carries a metrics envelope: the engine that ran, rounds,
whether the answer was a cache ``hit`` / ``miss`` / ``inflight`` join,
whether the compiled graph was shared, and the request's wall time.
Responses embed the full :class:`~repro.run.result.DominatingSetResult`
(pickle, base64) alongside the JSON summary, which is what makes the
service's byte-parity contract checkable end to end:
``result_bytes(decode_result_b64(response)) ==
result_bytes(Session().run(spec))``.

Execution runs on a single worker thread: the session's compiled state is
deliberately not thread-safe, and the service's concurrency story is
dedup + caches, not parallel simulation.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import pickle
import sys
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.congest.errors import CongestError, EngineCapabilityError
from repro.obs.metrics import MetricsRegistry
from repro.orchestration.cache import ResultCache, cache_key
from repro.run import RunSpec, Session
from repro.run.result import DominatingSetResult
from repro.run.wire import WireFormatError, spec_wire_hash

__all__ = [
    "RequestError",
    "RunService",
    "ServiceStats",
    "decode_result_b64",
    "encode_result_b64",
    "summarize_result",
]


class RequestError(Exception):
    """A request the service rejects, with an HTTP status and JSON body."""

    def __init__(self, status: int, error: Dict[str, Any]):
        self.status = status
        self.body = {"ok": False, "error": error}
        super().__init__(error.get("message", "request error"))


def _json_node(node: Any) -> Any:
    return node if isinstance(node, (int, str)) and not isinstance(node, bool) else repr(node)


def summarize_result(result: DominatingSetResult) -> Dict[str, Any]:
    """The JSON-facing summary of a run result (sorted, deterministic)."""
    return {
        "algorithm": result.algorithm,
        "dominating_set": sorted(
            (_json_node(node) for node in result.dominating_set), key=repr
        ),
        "size": len(result.dominating_set),
        "weight": result.weight,
        "rounds": result.rounds,
        "is_valid": result.is_valid,
        "guarantee": result.guarantee,
        "engine_used": result.engine_used,
    }


def encode_result_b64(result: DominatingSetResult) -> str:
    """The full result object, pickled and base64-wrapped for the wire."""
    return base64.b64encode(pickle.dumps(result)).decode("ascii")


def decode_result_b64(payload: str) -> DominatingSetResult:
    """Inverse of :func:`encode_result_b64` (for parity checks and clients)."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


@dataclass
class ServiceStats:
    """Monotonic counters exposed at ``/stats`` (and asserted by CI smoke)."""

    requests: int = 0
    results: int = 0
    errors: int = 0
    executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    inflight_joins: int = 0
    graph_hits: int = 0
    graph_misses: int = 0
    graph_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class RunService:
    """A persistent session serving RunSpec wire payloads.

    Parameters
    ----------
    cache:
        Response cache (:class:`ResultCache` or ``None`` to disable); safe
        to share a root with sweep record entries.
    graph_capacity:
        How many distinct (graph, weights, graph_seed) sources stay
        compiled; least-recently-used entries beyond it are evicted and
        invalidated out of the session.
    engine:
        Default engine for specs that leave ``engine`` null.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        graph_capacity: int = 8,
        engine: Optional[str] = None,
    ):
        if graph_capacity < 1:
            raise ValueError(f"graph_capacity must be >= 1, got {graph_capacity}")
        self.session = Session(engine=engine)
        self.cache = cache
        self.graph_capacity = graph_capacity
        self.stats = ServiceStats()
        self.metrics = MetricsRegistry()
        self._graphs: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[Tuple[str, Any]]"] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-run"
        )

    # -- request decoding --------------------------------------------------

    def _normalize(self, payload: Any) -> Tuple[RunSpec, Dict[str, Any]]:
        """Decode, validate, and re-encode to the canonical wire form.

        The round through ``to_dict`` fills defaults and normalises field
        order, so two requests that *mean* the same run hash to the same
        graph/run keys however sparse their JSON was.
        """
        try:
            spec = RunSpec.from_dict(payload)
            return spec, spec.to_dict()
        except WireFormatError as error:
            raise RequestError(
                400,
                {
                    "kind": "wire",
                    "field": error.field,
                    "message": str(error),
                },
            ) from None

    # -- compiled-graph interning -----------------------------------------

    def _graph_key(self, wire: Mapping[str, Any]) -> str:
        return spec_wire_hash(
            {
                "graph": wire["graph"],
                "weights": wire["weights"],
                "graph_seed": wire["graph_seed"],
            }
        )

    def _intern_graph(self, spec: RunSpec, wire: Mapping[str, Any]) -> Tuple[RunSpec, str]:
        key = self._graph_key(wire)
        entry = self._graphs.get(key)
        if entry is not None:
            self._graphs.move_to_end(key)
            self.stats.graph_hits += 1
            graph, weights = entry
            if graph is not spec.graph or weights is not spec.weights:
                spec = dataclasses.replace(spec, graph=graph, weights=weights)
            return spec, "hit"
        self.stats.graph_misses += 1
        self._graphs[key] = (spec.graph, spec.weights)
        while len(self._graphs) > self.graph_capacity:
            _, (evicted, _weights) = self._graphs.popitem(last=False)
            self.session.invalidate(evicted)
            self.stats.graph_evictions += 1
        return spec, "miss"

    # -- execution ---------------------------------------------------------

    def _run_key(self, wire: Mapping[str, Any]) -> str:
        engine = wire["engine"] if wire["engine"] is not None else "default"
        return cache_key(spec_wire_hash(wire), wire["seed"], f"serve:{engine}")

    def _execute(self, spec: RunSpec) -> Dict[str, Any]:
        self.stats.executions += 1
        result = self.session.run(spec)
        return {
            "summary": summarize_result(result),
            "result_b64": encode_result_b64(result),
        }

    @staticmethod
    def _execution_error(error: BaseException) -> RequestError:
        if isinstance(error, EngineCapabilityError):
            algorithm, engine, fault_model = error.cell
            return RequestError(
                422,
                {
                    "kind": "capability",
                    "message": str(error),
                    "cell": {
                        "algorithm": algorithm,
                        "engine": engine,
                        "fault_model": fault_model,
                    },
                },
            )
        if isinstance(error, CongestError):
            return RequestError(
                422,
                {
                    "kind": "execution",
                    "error_type": type(error).__name__,
                    "message": str(error),
                },
            )
        return RequestError(
            500, {"kind": "internal", "error_type": type(error).__name__, "message": str(error)}
        )

    def _envelope(
        self, stored: Mapping[str, Any], origin: str, graph_origin: Optional[str],
        run_key: str, started: float,
    ) -> Dict[str, Any]:
        summary = stored["summary"]
        self.stats.results += 1
        return {
            "ok": True,
            "result": summary,
            "result_b64": stored["result_b64"],
            "metrics": {
                "cache": origin,
                "graph_cache": graph_origin,
                "engine_used": summary["engine_used"],
                "rounds": summary["rounds"],
                "wall_time_s": round(time.perf_counter() - started, 6),
                "run_key": run_key,
            },
        }

    async def run(self, payload: Any) -> Dict[str, Any]:
        """Serve one RunSpec payload; returns the response envelope.

        Raises :class:`RequestError` for anything the caller did wrong
        (undecodable payload, capability-matrix miss, failed execution);
        the HTTP layer maps it onto the status and body verbatim.

        Every request lands in the Prometheus registry twice: a count under
        its outcome label (``hit``/``inflight``/``executed``/``error``) and
        an observation in the request-latency histogram -- the ``/metrics``
        counterpart of the per-response metrics envelope.
        """
        started = time.perf_counter()
        outcome = "error"
        try:
            envelope = await self._run_request(payload, started)
            outcome = {"hit": "hit", "inflight": "inflight"}.get(
                envelope["metrics"]["cache"], "executed"
            )
            return envelope
        finally:
            self.metrics.counter(
                "repro_serve_requests_total",
                "Requests served, by outcome.",
                outcome=outcome,
            ).inc()
            self.metrics.histogram(
                "repro_serve_request_seconds",
                "Request wall time, seconds.",
            ).observe(time.perf_counter() - started)

    async def _run_request(self, payload: Any, started: float) -> Dict[str, Any]:
        self.stats.requests += 1
        try:
            spec, wire = self._normalize(payload)
            run_key = self._run_key(wire)
            if self.cache is not None:
                stored = self.cache.get_payload(run_key)
                if stored is not None:
                    self.stats.cache_hits += 1
                    return self._envelope(stored, "hit", None, run_key, started)
                self.stats.cache_misses += 1
            pending = self._inflight.get(run_key)
            if pending is not None:
                self.stats.inflight_joins += 1
                outcome, value = await pending
                if outcome == "error":
                    raise RequestError(value.status, dict(value.body["error"]))
                return self._envelope(value, "inflight", None, run_key, started)
            spec, graph_origin = self._intern_graph(spec, wire)
            loop = asyncio.get_running_loop()
            future: "asyncio.Future[Tuple[str, Any]]" = loop.create_future()
            self._inflight[run_key] = future
            try:
                try:
                    stored = await loop.run_in_executor(
                        self._executor, self._execute, spec
                    )
                except BaseException as error:
                    request_error = self._execution_error(error)
                    future.set_result(("error", request_error))
                    raise request_error from error
                future.set_result(("ok", stored))
            finally:
                self._inflight.pop(run_key, None)
            if self.cache is not None:
                self.cache.put_payload(
                    run_key,
                    dict(stored),
                    meta={
                        "kind": "serve-run",
                        "algorithm": wire["algorithm"],
                        "engine": wire["engine"] or "default",
                        "seed": wire["seed"],
                    },
                )
            return self._envelope(stored, "miss", graph_origin, run_key, started)
        except RequestError:
            self.stats.errors += 1
            raise

    # -- introspection -----------------------------------------------------

    def capabilities(self) -> Dict[str, Any]:
        """What this server can run -- names usable in wire payloads."""
        from repro.congest.engine import available_engines
        from repro.faults import FAULT_MODELS
        from repro.graphs.ingest import available_graphs
        from repro.orchestration.registry import FAMILY_BUILDERS, WEIGHT_SCHEMES
        from repro.run.algorithms import available_algorithms
        from repro.run.spec import VALIDATION_POLICIES
        from repro.run.wire import WIRE_VERSION

        return {
            "wire_version": WIRE_VERSION,
            "algorithms": list(available_algorithms()),
            "engines": list(available_engines()),
            "fault_models": sorted(FAULT_MODELS),
            "graph_families": sorted(FAMILY_BUILDERS),
            "weight_schemes": sorted(WEIGHT_SCHEMES),
            "graphs": list(available_graphs()),
            "validation_policies": list(VALIDATION_POLICIES),
        }

    def stats_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ok": True,
            "stats": self.stats.as_dict(),
            "graphs_resident": len(self._graphs),
            "inflight": len(self._inflight),
            "compiled_graphs": self.session.compiled_count,
        }
        if self.cache is not None:
            payload["cache"] = {
                "root": str(self.cache.root),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "writes": self.cache.stats.writes,
            }
        return payload

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition.

        Request counters and the latency histogram accumulate in
        :meth:`run`; the point-in-time gauges (graph LRU, in-flight dedup,
        compiled session state, result-cache traffic) are refreshed here at
        scrape time.
        """
        gauge = self.metrics.gauge
        gauge(
            "repro_serve_graphs_resident",
            "Distinct graph sources interned in the LRU.",
        ).set(len(self._graphs))
        gauge(
            "repro_serve_inflight",
            "Requests currently executing or awaited by joiners.",
        ).set(len(self._inflight))
        gauge(
            "repro_serve_compiled_graphs",
            "Graphs compiled in the resident session.",
        ).set(self.session.compiled_count)
        gauge(
            "repro_serve_inflight_joins",
            "Requests that joined an identical in-flight execution.",
        ).set(self.stats.inflight_joins)
        if self.cache is not None:
            for op, value in (
                ("hits", self.cache.stats.hits),
                ("misses", self.cache.stats.misses),
                ("writes", self.cache.stats.writes),
            ):
                gauge(
                    "repro_serve_result_cache",
                    "Result-cache traffic, by operation.",
                    op=op,
                ).set(value)
        text = self.metrics.render()
        # The sharded tier keeps its own registry (runs/rounds/halo bytes);
        # expose it on the same scrape when the tier has been imported --
        # never import it just to render zeros.
        sharded = sys.modules.get("repro.congest.sharded.engine")
        if sharded is not None:
            extra = sharded.sharded_metrics.render()
            if extra.strip():
                text = text + extra
        return text

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        self.session.invalidate()
        self._graphs.clear()

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
