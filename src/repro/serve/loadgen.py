"""Load generator / smoke client for a running ``repro serve`` instance.

``python -m repro.serve.loadgen --port 8585 --json`` drives a mixed batch
against a live server and reports throughput and latency percentiles:

1. a **dedup probe** -- N threads fire the *same uncached* spec through a
   barrier, so all but one land while the first is executing and must join
   its in-flight future (the response metrics say which path each took);
2. a **mixed workload** -- a spread of specs, each repeated, so first
   arrivals execute and repeats come back as content-addressed cache hits.

The ``--require-dedup`` / ``--require-cache-hit`` flags turn the observed
counters into exit-code assertions (the CI smoke job runs with both), and
``--check-parity`` re-runs every distinct probed spec in-process through
:class:`~repro.run.session.Session` and insists the server's pickled result
is byte-identical (:func:`~repro.run.result.result_bytes`) to the direct
run -- the service is a cache and a transport, never a different answer.

Stdlib-only by design (:mod:`http.client` + :mod:`threading`): the client
side of the wire format should not need anything the server does not.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServeClient", "LoadReport", "default_workload", "dedup_spec", "run_load", "main"]


class ServeClient:
    """A minimal keep-alive JSON client for one server connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8585, timeout: float = 60.0):
        self.connection = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str, payload: Any = None) -> Tuple[int, Dict[str, Any]]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        self.connection.request(method, path, body=body, headers=headers)
        response = self.connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def run(self, spec: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/run", spec)

    def get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", path)

    def get_text(self, path: str) -> Tuple[int, str]:
        """GET a text route (the Prometheus ``/metrics`` exposition)."""
        self.connection.request("GET", path)
        response = self.connection.getresponse()
        return response.status, response.read().decode("utf-8")

    def close(self) -> None:
        self.connection.close()


def dedup_spec(n: int = 700) -> Dict[str, Any]:
    """A deliberately non-trivial spec: slow enough that a thundering herd
    of identical requests overlaps its execution window."""
    return {
        "graph": {"kind": "family", "family": "gnp", "params": {"n": n, "p": 4.0 / n}},
        "algorithm": "deterministic",
        "seed": 0,
    }


def default_workload(seeds: int = 3) -> List[Dict[str, Any]]:
    """A small spread of distinct, fast specs for the mixed phase."""
    specs: List[Dict[str, Any]] = []
    for seed in range(seeds):
        specs.append(
            {
                "graph": {"kind": "family", "family": "random-tree", "params": {"n": 80}},
                "algorithm": "deterministic",
                "seed": seed,
            }
        )
        specs.append(
            {
                "graph": {
                    "kind": "family",
                    "family": "bounded-arboricity",
                    "params": {"n": 90, "alpha": 2},
                },
                "algorithm": "randomized",
                "params": {"t": 1},
                "seed": seed,
            }
        )
    return specs


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class LoadReport:
    """What a load run observed (counters come from response metrics)."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    executions: int = 0
    cache_hits: int = 0
    inflight_joins: int = 0
    wall_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    parity_checked: int = 0
    parity_failures: List[str] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return _percentile(self.latencies_ms, 0.50)

    @property
    def p99_ms(self) -> float:
        return _percentile(self.latencies_ms, 0.99)

    def record(self, status: int, body: Dict[str, Any], elapsed_s: float) -> None:
        self.requests += 1
        self.latencies_ms.append(elapsed_s * 1000.0)
        if status == 200 and body.get("ok"):
            self.ok += 1
            origin = body.get("metrics", {}).get("cache")
            if origin == "hit":
                self.cache_hits += 1
            elif origin == "inflight":
                self.inflight_joins += 1
            else:
                self.executions += 1
        else:
            self.errors += 1
            if len(self.error_samples) < 5:
                self.error_samples.append(json.dumps(body.get("error", body)))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "inflight_joins": self.inflight_joins,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "parity_checked": self.parity_checked,
            "parity_failures": self.parity_failures,
            "error_samples": self.error_samples,
        }


def _dedup_probe(
    host: str, port: int, spec: Dict[str, Any], clients: int, report: LoadReport
) -> None:
    barrier = threading.Barrier(clients)
    lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(host, port)
        try:
            barrier.wait()
            start = time.perf_counter()
            status, body = client.run(spec)
            elapsed = time.perf_counter() - start
            with lock:
                report.record(status, body, elapsed)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def run_load(
    host: str = "127.0.0.1",
    port: int = 8585,
    seeds: int = 3,
    repeats: int = 3,
    dedup_clients: int = 4,
    check_parity: bool = False,
) -> LoadReport:
    """Drive the dedup probe plus the repeated mixed workload; see module doc."""
    report = LoadReport()
    started = time.perf_counter()

    probe = dedup_spec()
    if dedup_clients > 1:
        _dedup_probe(host, port, probe, dedup_clients, report)

    client = ServeClient(host, port)
    workload = default_workload(seeds)
    try:
        for _ in range(max(1, repeats)):
            for spec in workload:
                start = time.perf_counter()
                status, body = client.run(spec)
                report.record(status, body, time.perf_counter() - start)
    finally:
        client.close()
    report.wall_s = time.perf_counter() - started

    if check_parity:
        _check_parity(host, port, [probe] + workload, report)
    return report


def _check_parity(
    host: str, port: int, specs: List[Dict[str, Any]], report: LoadReport
) -> None:
    """Server answer vs a direct in-process run, byte for byte."""
    from repro.run import RunSpec, Session
    from repro.run.result import result_bytes
    from repro.serve.service import decode_result_b64

    session = Session()
    client = ServeClient(host, port)
    seen = set()
    try:
        for spec in specs:
            marker = json.dumps(spec, sort_keys=True)
            if marker in seen:
                continue
            seen.add(marker)
            status, body = client.run(spec)
            report.parity_checked += 1
            if status != 200 or not body.get("ok"):
                report.parity_failures.append(f"{marker}: server error {status}")
                continue
            served = result_bytes(decode_result_b64(body["result_b64"]))
            direct = result_bytes(session.run(RunSpec.from_dict(spec)))
            if served != direct:
                report.parity_failures.append(f"{marker}: result bytes differ")
    finally:
        client.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8585)
    parser.add_argument("--seeds", type=int, default=3, help="distinct seeds per workload spec")
    parser.add_argument("--repeats", type=int, default=3, help="times the workload is replayed")
    parser.add_argument("--dedup-clients", type=int, default=4,
                        help="threads racing the dedup probe (0/1 disables)")
    parser.add_argument("--check-parity", action="store_true",
                        help="compare served results byte-for-byte with direct Session runs")
    parser.add_argument("--require-cache-hit", action="store_true",
                        help="exit nonzero unless at least one cache hit was observed")
    parser.add_argument("--require-dedup", action="store_true",
                        help="exit nonzero unless at least one in-flight join was observed")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    report = run_load(
        host=args.host,
        port=args.port,
        seeds=args.seeds,
        repeats=args.repeats,
        dedup_clients=args.dedup_clients,
        check_parity=args.check_parity,
    )

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"{report.requests} requests in {report.wall_s:.2f}s "
            f"({report.rps:.1f} req/s, p50 {report.p50_ms:.1f} ms, "
            f"p99 {report.p99_ms:.1f} ms)"
        )
        print(
            f"executions={report.executions} cache_hits={report.cache_hits} "
            f"inflight_joins={report.inflight_joins} errors={report.errors}"
        )
        if args.check_parity:
            verdict = "ok" if not report.parity_failures else "FAILED"
            print(f"parity: {report.parity_checked} specs checked, {verdict}")

    failures: List[str] = list(report.parity_failures)
    if report.errors:
        failures.append(f"{report.errors} request errors: {report.error_samples}")
    if args.require_cache_hit and report.cache_hits < 1:
        failures.append("no cache hit observed")
    if args.require_dedup and report.inflight_joins < 1:
        failures.append("no in-flight dedup observed")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
