"""The asyncio HTTP shell around :class:`~repro.serve.service.RunService`.

``python -m repro serve`` binds a tiny stdlib-only HTTP/1.1 server (no
third-party web framework -- the wire format is plain JSON and the routes
are few) on top of one long-lived service instance:

===========================  ==============================================
``GET /healthz``             liveness + package version
``GET /capabilities``        registered algorithms/engines/fault models/
                             graph families/named graphs (wire vocabulary)
``GET /stats``               service counters, cache stats, resident graphs
``GET /metrics``             Prometheus text exposition: request counts by
                             outcome, request-latency histogram, graph-LRU
                             / in-flight / result-cache gauges
``POST /run``                a RunSpec wire payload; responds with the
                             result summary, the base64-pickled result, and
                             the per-request metrics envelope
``POST /shutdown``           graceful stop (responds, then closes)
===========================  ==============================================

``--log-json`` emits one structured JSON access-log line per request to
stdout (method, path, status, wall time, and for ``/run`` the same metrics
envelope the response carries), so a log pipeline sees exactly what the
client saw.

Requests are handled on one event loop; simulation work runs on the
service's single executor thread, so slow runs never block health checks,
stats, or the cache/in-flight fast paths of concurrent ``/run`` requests.
Connections are keep-alive until the client says ``Connection: close``.

Errors are structured JSON all the way down: a bad payload is a 400 naming
the offending RunSpec field, a capability-matrix miss is a 422 carrying the
structured ``(algorithm, engine, fault_model)`` cell, an unknown route is a
404 listing the routes that exist.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

import repro
from repro.serve.service import RequestError, RunService

__all__ = ["HttpServer", "add_serve_arguments", "serve_command"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # inline CSR payloads can be large


class HttpServer:
    """One :class:`RunService` behind an asyncio stream server."""

    def __init__(
        self,
        service: RunService,
        host: str = "127.0.0.1",
        port: int = 0,
        log_json: bool = False,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.log_json = log_json
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Block until ``/shutdown`` (or :meth:`stop`) is requested."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        self.service.close()

    def stop(self) -> None:
        self._stopping.set()

    # -- request plumbing --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                status, payload = await self._dispatch(method, path, body)
                if self.log_json:
                    self._access_log(
                        method, path, status, time.perf_counter() - started, payload
                    )
                client_close = headers.get("connection", "").lower() == "close"
                close = client_close or self._stopping.is_set()
                self._write_response(writer, status, payload, close)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    def _access_log(
        self, method: str, path: str, status: int, wall_s: float, payload: Any
    ) -> None:
        """One structured JSON access-log line per request (``--log-json``).

        ``/run`` responses re-use the response's own metrics envelope, so
        the log line and the client see the same numbers.
        """
        line: Dict[str, Any] = {
            "log": "access",
            "method": method,
            "path": path,
            "status": status,
            "wall_time_s": round(wall_s, 6),
        }
        if isinstance(payload, dict):
            metrics = payload.get("metrics")
            if isinstance(metrics, dict):
                line["metrics"] = metrics
            error = payload.get("error")
            if isinstance(error, dict) and "kind" in error:
                line["error_kind"] = error["kind"]
        print(json.dumps(line, sort_keys=True), flush=True)

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Any, close: bool
    ) -> None:
        if isinstance(payload, str):
            # Text routes (the Prometheus /metrics exposition).
            blob = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
                  422: "Unprocessable Entity", 500: "Internal Server Error"}.get(status, "Status")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(blob)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + blob)

    # -- routes ------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, Any]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "service": "repro-serve", "version": repro.__version__}
        if path == "/capabilities" and method == "GET":
            return 200, {"ok": True, "capabilities": self.service.capabilities()}
        if path == "/stats" and method == "GET":
            return 200, self.service.stats_payload()
        if path == "/metrics" and method == "GET":
            return 200, self.service.metrics_text()
        if path == "/run" and method == "POST":
            return await self._run(body)
        if path == "/shutdown" and method == "POST":
            self.stop()
            return 200, {"ok": True, "stopping": True}
        known = ("GET /healthz", "GET /capabilities", "GET /stats",
                 "GET /metrics", "POST /run", "POST /shutdown")
        return 404, {
            "ok": False,
            "error": {
                "kind": "route",
                "message": f"no route {method} {path}; known: {', '.join(known)}",
            },
        }

    async def _run(self, body: bytes) -> Tuple[int, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            return 400, {
                "ok": False,
                "error": {"kind": "json", "message": f"request body is not valid JSON: {error}"},
            }
        try:
            return 200, await self.service.run(payload)
        except RequestError as error:
            return error.status, error.body
        except Exception as error:  # never tear the connection down
            return 500, {
                "ok": False,
                "error": {
                    "kind": "internal",
                    "error_type": type(error).__name__,
                    "message": str(error),
                },
            }


# ---------------------------------------------------------------------------
# CLI entry point (`repro serve`)
# ---------------------------------------------------------------------------


def add_serve_arguments(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8585,
        help="bind port (0 picks a free port; the chosen one is printed)",
    )
    parser.add_argument(
        "--engine", default=None,
        help="default engine for specs that leave 'engine' null",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="response-cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed response cache",
    )
    parser.add_argument(
        "--graph-capacity", type=int, default=8,
        help="how many distinct graph sources stay compiled (LRU)",
    )
    parser.add_argument(
        "--ingest", action="append", default=[], metavar="NAME=PATH",
        help="pre-register an edge-list file under NAME (repeatable)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one structured JSON access-log line per request to stdout",
    )


async def _serve(server: HttpServer) -> None:
    await server.start()
    # Parsed by the CI smoke job and the load generator: keep this line's
    # shape stable.
    print(f"repro-serve listening on http://{server.host}:{server.port}", flush=True)
    await server.serve_until_stopped()


def serve_command(args) -> int:
    """Entry point behind ``repro serve`` (and ``python -m repro serve``)."""
    from repro.graphs.ingest import load_edge_list, register_graph
    from repro.orchestration.cache import ResultCache

    for item in args.ingest:
        name, separator, path = item.partition("=")
        if not separator or not name or not path:
            raise SystemExit(f"--ingest expects NAME=PATH, got {item!r}")
        # load_edge_list shares the memo the {"kind": "file"} wire form
        # decodes through, so named and file-path requests for the same
        # path resolve to one graph object -- one compile, one cache line.
        graph = load_edge_list(path)
        register_graph(name, graph, replace=True)
        print(f"ingested {path} as {name!r}: n={graph.n} m={graph.m}", flush=True)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    service = RunService(
        cache=cache, graph_capacity=args.graph_capacity, engine=args.engine
    )
    server = HttpServer(
        service, host=args.host, port=args.port, log_json=args.log_json
    )
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass
    return 0
