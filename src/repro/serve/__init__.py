"""Service mode: a long-lived :class:`~repro.run.session.Session` over HTTP.

``python -m repro serve`` starts the server; the pieces are importable on
their own:

* :mod:`repro.serve.service` -- the transport-free core
  (:class:`~repro.serve.service.RunService`): wire-validated requests,
  compiled-graph sharing, in-flight dedup, content-addressed response cache,
  per-request metrics.
* :mod:`repro.serve.http` -- the stdlib asyncio HTTP/1.1 shell and the
  ``repro serve`` entry point.
* :mod:`repro.serve.loadgen` -- the smoke/throughput client
  (``python -m repro.serve.loadgen``).

Everything here is standard library only (the simulation stack underneath
uses whatever it always uses).
"""

from repro.serve.service import (
    RequestError,
    RunService,
    ServiceStats,
    decode_result_b64,
    encode_result_b64,
    summarize_result,
)

__all__ = [
    "RequestError",
    "RunService",
    "ServiceStats",
    "decode_result_b64",
    "encode_result_b64",
    "summarize_result",
]
