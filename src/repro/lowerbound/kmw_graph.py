"""KMW-style base graphs for the Theorem 1.4 construction.

The original lower bound of Kuhn, Moscibroda and Wattenhofer uses a family of
"cluster tree" graphs ``CT_k`` whose defining feature is *locality hardness*:
after ``k`` rounds, nodes on either side of a critical edge have
indistinguishable views although their optimal vertex cover behaviour
differs.  That property is about what distributed algorithms cannot do, so it
cannot be certified by running code; what the Figure 1 reduction consumes is
much weaker and fully checkable:

* the base graph is **bipartite** (so the vertex cover integrality gap is 1,
  which the proof of Theorem 1.4 uses to equate ``OPT_MVC`` and
  ``OPT_MFVC``), and
* it has **at least as many edges as nodes** (used in the chain
  ``OPT_MFVC >= m / Delta >= n / Delta``).

This module therefore generates laptop-scale *stand-ins* with exactly those
certified properties -- a documented substitution recorded in DESIGN.md:

* :func:`bipartite_regular_base_graph` -- a random bipartite (near-)regular
  graph built by a union of perfect matchings, mirroring the KMW graphs'
  regular bipartite structure;
* :func:`layered_cluster_tree_graph` -- a layered graph reminiscent of the
  cluster-tree shape: level ``i`` has ``degree^i`` nodes and each node is
  joined to ``degree`` children on the next level, plus a matching between
  the two deepest levels to push ``m`` above ``n``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import networkx as nx

__all__ = [
    "KMWBaseGraph",
    "bipartite_regular_base_graph",
    "layered_cluster_tree_graph",
]


@dataclass
class KMWBaseGraph:
    """A base graph together with the properties the reduction relies on."""

    graph: nx.Graph
    description: str

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def m(self) -> int:
        return self.graph.number_of_edges()

    @property
    def max_degree(self) -> int:
        return max(dict(self.graph.degree()).values(), default=0)

    @property
    def is_bipartite(self) -> bool:
        return nx.is_bipartite(self.graph)

    @property
    def has_enough_edges(self) -> bool:
        """The proof of Theorem 1.4 uses ``m >= n`` for the KMW graphs."""
        return self.m >= self.n

    def validate(self) -> None:
        """Raise ``ValueError`` unless the reduction's prerequisites hold."""
        if not self.is_bipartite:
            raise ValueError("base graph must be bipartite")
        if not self.has_enough_edges:
            raise ValueError("base graph must satisfy m >= n")


def bipartite_regular_base_graph(side: int, degree: int, seed: int = 0) -> KMWBaseGraph:
    """Return a bipartite ``degree``-regular graph on ``2*side`` nodes.

    Built as the union of ``degree`` random perfect matchings between the two
    sides (parallel edges from colliding matchings are simply dropped, so the
    graph is near-regular for small ``degree``); ``m`` is close to
    ``side*degree >= n`` whenever ``degree >= 2``.
    """
    if side < 2 or degree < 2:
        raise ValueError("need side >= 2 and degree >= 2 so that m >= n")
    rng = random.Random(seed)
    graph = nx.Graph()
    left = [("L", index) for index in range(side)]
    right = [("R", index) for index in range(side)]
    graph.add_nodes_from(left)
    graph.add_nodes_from(right)
    for _ in range(degree):
        permutation = list(range(side))
        rng.shuffle(permutation)
        for index in range(side):
            graph.add_edge(left[index], right[permutation[index]])
    instance = KMWBaseGraph(
        graph=graph,
        description=f"bipartite-regular(side={side}, degree={degree}, seed={seed})",
    )
    # Random matchings can collide on small instances, leaving m < n; patch by
    # adding deterministic wrap-around matchings until m >= n (each adds at
    # most one edge per node, so the graph stays near-regular).
    offset = 1
    while not instance.has_enough_edges and offset < side:
        for index in range(side):
            graph.add_edge(left[index], right[(index + offset) % side])
        offset += 1
    return instance


def layered_cluster_tree_graph(levels: int, degree: int) -> KMWBaseGraph:
    """Return a layered, cluster-tree-shaped bipartite base graph.

    Level ``0`` has one node; every node of level ``i`` is joined to
    ``degree`` fresh nodes of level ``i+1``.  Consecutive levels alternate
    sides, so the graph is bipartite.  A perfect matching inside the last
    level pair is *not* added (it would break bipartiteness); instead each
    deepest-level node is joined to ``degree`` distinct nodes of the previous
    level (wrapping around), which raises ``m`` to at least ``n``.
    """
    if levels < 2 or degree < 2:
        raise ValueError("need levels >= 2 and degree >= 2")
    graph = nx.Graph()
    previous: List = [("level0", 0)]
    graph.add_node(previous[0])
    for level in range(1, levels + 1):
        current = []
        for parent_index, parent in enumerate(previous):
            for child_index in range(degree):
                child = (f"level{level}", parent_index * degree + child_index)
                graph.add_node(child)
                graph.add_edge(parent, child)
                current.append(child)
        previous = current
    # Extra edges between the last two levels (wrapping) to push m above n
    # while keeping the graph bipartite (the two levels are on opposite sides).
    last = previous
    before_last = [node for node in graph.nodes() if node[0] == f"level{levels - 1}"]
    for index, node in enumerate(last):
        for offset in range(1, degree):
            target = before_last[(index // degree + offset) % len(before_last)]
            graph.add_edge(node, target)
    return KMWBaseGraph(
        graph=graph,
        description=f"layered-cluster-tree(levels={levels}, degree={degree})",
    )
