"""The Theorem 1.4 lower bound construction (Figure 1) and its reduction.

The paper's lower bound transfers the Kuhn--Moscibroda--Wattenhofer hardness
of approximating minimum *fractional vertex cover* to minimum dominating set
on graphs of arboricity 2.  The construction takes a base graph ``G`` (in the
original proof, a KMW cluster-tree graph), makes ``Delta^2`` copies, attaches
a fresh node to all copies of every original node, and subdivides every copy
edge; the result ``H`` has arboricity 2 and maximum degree ``Delta^2``, and
any ``c``-approximate dominating set of ``H`` can be converted -- locally --
into a ``c*(1+1/Delta)``-approximate fractional vertex cover of ``G``.

This subpackage reproduces the construction and the conversion:

* :mod:`repro.lowerbound.kmw_graph` -- KMW-style *base* graphs.  The genuine
  KMW cluster trees certify locality hardness, which no experiment can
  measure; what the reduction itself needs is only that the base graph is
  bipartite (integrality gap 1 for vertex cover) with ``m >= n``, and those
  properties are generated and certified here.
* :mod:`repro.lowerbound.reduction` -- the Figure 1 construction of ``H``,
  its structural certificates (arboricity 2 via an explicit acyclic
  2-out-degree orientation, maximum degree, node/edge counts, Eq. (2)), and
  the dominating-set-to-fractional-vertex-cover extraction used in the proof.
"""

from repro.lowerbound.kmw_graph import (
    KMWBaseGraph,
    bipartite_regular_base_graph,
    layered_cluster_tree_graph,
)
from repro.lowerbound.reduction import (
    LowerBoundInstance,
    build_lower_bound_graph,
    extract_fractional_vertex_cover,
    verify_structural_properties,
)

__all__ = [
    "KMWBaseGraph",
    "LowerBoundInstance",
    "bipartite_regular_base_graph",
    "build_lower_bound_graph",
    "extract_fractional_vertex_cover",
    "layered_cluster_tree_graph",
    "verify_structural_properties",
]
