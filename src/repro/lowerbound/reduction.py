"""The Figure 1 construction and the dominating-set -> fractional-VC reduction.

Given a base graph ``G`` (see :mod:`repro.lowerbound.kmw_graph`), the
construction of Theorem 1.4 builds a graph ``H``:

1. take ``copies`` disjoint copies ``G_1, ..., G_copies`` of ``G`` (the paper
   uses ``Delta^2`` copies, where ``Delta`` is the maximum degree of ``G``);
2. add a set ``T`` of ``n`` fresh nodes, one per original node of ``G``, and
   join the ``T``-node of ``v`` to the copy of ``v`` in every ``G_i``;
3. subdivide every edge inside every copy with a fresh "middle" node.

The resulting ``H`` has arboricity 2 (middle nodes orient their two edges
outward, ``T``-nodes orient all their edges inward, everything else points at
a middle node or a ``T``-node, so the orientation is acyclic with out-degree
2), maximum degree ``copies`` (at the ``T``-nodes, assuming
``copies >= Delta``), and satisfies Eq. (2):
``OPT_MDS(H) <= copies * OPT_MVC(G) + n``.

The second half of the proof converts a dominating set ``S`` of ``H`` into a
fractional vertex cover of ``G``: middle nodes in ``S`` are replaced by one of
their endpoints, the per-copy restrictions ``S_i`` are then vertex covers of
``G``, and ``y_v = |{i : v in S_i}| / copies`` is a feasible fractional vertex
cover of total value at most ``|S| / copies``.
:func:`extract_fractional_vertex_cover` implements that conversion and the
benchmarks verify the chain of inequalities on concrete instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.graphs.arboricity import arboricity
from repro.graphs.validation import is_dominating_set, is_vertex_cover
from repro.lowerbound.kmw_graph import KMWBaseGraph

__all__ = [
    "LowerBoundInstance",
    "build_lower_bound_graph",
    "extract_fractional_vertex_cover",
    "verify_structural_properties",
]


def _copy_node(copy_index: int, node: Hashable) -> Tuple[str, int, Hashable]:
    return ("copy", copy_index, node)


def _middle_node(copy_index: int, u: Hashable, v: Hashable) -> Tuple[str, int, frozenset]:
    return ("middle", copy_index, frozenset((u, v)))


def _t_node(node: Hashable) -> Tuple[str, Hashable]:
    return ("T", node)


@dataclass
class LowerBoundInstance:
    """The constructed graph ``H`` plus the bookkeeping the reduction needs."""

    base: KMWBaseGraph
    copies: int
    graph: nx.Graph
    t_nodes: Set = field(default_factory=set)
    middle_nodes: Set = field(default_factory=set)
    copy_nodes: Set = field(default_factory=set)

    @property
    def n_h(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def m_h(self) -> int:
        return self.graph.number_of_edges()

    def expected_node_count(self) -> int:
        """``copies * (n + m) + n`` as stated in Section 5."""
        return self.copies * (self.base.n + self.base.m) + self.base.n

    def expected_edge_count(self) -> int:
        """``copies * (2m + n)`` as stated in Section 5."""
        return self.copies * (2 * self.base.m + self.base.n)

    def certificate_orientation(self) -> Dict[Tuple[Hashable, Hashable], Hashable]:
        """Return the acyclic out-degree-2 orientation witnessing arboricity 2.

        Middle nodes orient both incident edges outward; every copy node
        orients its edge towards its ``T``-node... more precisely, each
        ``copy-to-T`` edge is oriented out of the copy node.  ``T``-nodes get
        only incoming edges.  Out-degrees: middle nodes 2, copy nodes 1,
        ``T``-nodes 0.
        """
        orientation = {}
        for edge in self.graph.edges():
            u, v = edge
            if u in self.middle_nodes:
                orientation[edge] = u
            elif v in self.middle_nodes:
                orientation[edge] = v
            elif u in self.t_nodes:
                orientation[edge] = v
            else:  # v is the T node
                orientation[edge] = u
        return orientation


def build_lower_bound_graph(base: KMWBaseGraph, copies: Optional[int] = None) -> LowerBoundInstance:
    """Build ``H`` from the base graph following Figure 1.

    ``copies`` defaults to ``Delta^2`` exactly as in the paper; a smaller
    value can be passed to keep instances laptop-sized (the structural
    certificates are unaffected, only the constant in the locality argument
    changes), and the choice is recorded in the returned instance.
    """
    base.validate()
    if copies is None:
        copies = base.max_degree ** 2
    if copies < 1:
        raise ValueError("copies must be at least 1")

    graph = nx.Graph()
    t_nodes, middle_nodes, copy_nodes = set(), set(), set()

    for node in base.graph.nodes():
        t_node = _t_node(node)
        graph.add_node(t_node)
        t_nodes.add(t_node)

    for copy_index in range(copies):
        for node in base.graph.nodes():
            copy_node = _copy_node(copy_index, node)
            graph.add_node(copy_node)
            copy_nodes.add(copy_node)
            graph.add_edge(copy_node, _t_node(node))
        for u, v in base.graph.edges():
            middle = _middle_node(copy_index, u, v)
            graph.add_node(middle)
            middle_nodes.add(middle)
            graph.add_edge(_copy_node(copy_index, u), middle)
            graph.add_edge(_copy_node(copy_index, v), middle)

    return LowerBoundInstance(
        base=base,
        copies=copies,
        graph=graph,
        t_nodes=t_nodes,
        middle_nodes=middle_nodes,
        copy_nodes=copy_nodes,
    )


def verify_structural_properties(instance: LowerBoundInstance, check_arboricity: bool = False) -> Dict[str, bool]:
    """Check the structural claims Section 5 makes about ``H``.

    Returns a dictionary of named boolean checks; ``check_arboricity=True``
    additionally runs the exact (max-flow based) arboricity computation,
    which is feasible only for small instances -- the certificate orientation
    check is the scalable stand-in.
    """
    graph = instance.graph
    base = instance.base
    results = {}
    results["node_count_matches"] = instance.n_h == instance.expected_node_count()
    results["edge_count_matches"] = instance.m_h == instance.expected_edge_count()

    degrees = dict(graph.degree())
    t_degrees = {node: degrees[node] for node in instance.t_nodes}
    results["t_degree_is_copies"] = all(value == instance.copies for value in t_degrees.values())
    expected_max_degree = max(
        instance.copies,
        max((base.graph.degree(node) + 1 for node in base.graph.nodes()), default=0),
        2,
    )
    results["max_degree_matches"] = max(degrees.values(), default=0) == expected_max_degree

    orientation = instance.certificate_orientation()
    outdegree: Dict[Hashable, int] = {node: 0 for node in graph.nodes()}
    for edge, tail in orientation.items():
        outdegree[tail] += 1
    results["orientation_outdegree_at_most_2"] = all(value <= 2 for value in outdegree.values())
    directed = nx.DiGraph()
    directed.add_nodes_from(graph.nodes())
    for (u, v), tail in orientation.items():
        head = v if tail == u else u
        directed.add_edge(tail, head)
    results["orientation_acyclic"] = nx.is_directed_acyclic_graph(directed)

    if check_arboricity:
        results["arboricity_is_2"] = arboricity(graph) == 2
    return results


def extract_fractional_vertex_cover(
    instance: LowerBoundInstance, dominating_set: Iterable[Hashable]
) -> Dict[Hashable, float]:
    """Convert a dominating set of ``H`` into a fractional vertex cover of ``G``.

    Follows the proof of Theorem 1.4: middle nodes in the set are replaced by
    one of their endpoints (which cannot increase the size), the per-copy
    restriction ``S_i`` is then a vertex cover of the base graph, and
    ``y_v = |{i : copy of v in S_i}| / copies``.

    Raises ``ValueError`` if the input is not a dominating set of ``H`` --
    the conversion is only meaningful for genuine dominating sets.
    """
    selected = set(dominating_set)
    if not is_dominating_set(instance.graph, selected):
        raise ValueError("the provided set does not dominate H")

    per_copy: List[Set[Hashable]] = [set() for _ in range(instance.copies)]
    for node in selected:
        if node in instance.middle_nodes:
            _, copy_index, endpoints = node
            # Replace the middle node by one endpoint (deterministic choice).
            endpoint = min(endpoints, key=repr)
            per_copy[copy_index].add(endpoint)
        elif node in instance.copy_nodes:
            _, copy_index, original = node
            per_copy[copy_index].add(original)
        # T nodes contribute nothing to the vertex cover.

    for copy_index, cover in enumerate(per_copy):
        if not is_vertex_cover(instance.base.graph, cover):
            raise AssertionError(
                f"copy {copy_index} does not induce a vertex cover -- this "
                "contradicts the argument of Theorem 1.4 and indicates a bug"
            )

    fractional: Dict[Hashable, float] = {node: 0.0 for node in instance.base.graph.nodes()}
    for cover in per_copy:
        for node in cover:
            fractional[node] += 1.0 / instance.copies
    return fractional
