"""Generators for the graph families targeted by the paper.

The paper motivates bounded-arboricity graphs via planar graphs, graphs of
bounded treewidth or genus, minor-free graphs, and sparse real-world networks
(the web graph, social networks).  This module provides laptop-scale
synthetic generators for representatives of these families, each returning a
:class:`networkx.Graph` whose nodes are consecutive integers starting at 0,
along with a *certified* arboricity upper bound where the construction makes
one available.

Every generator is deterministic given its ``seed`` argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

__all__ = [
    "GraphInstance",
    "STANDARD_SCALES",
    "random_tree",
    "random_forest",
    "caterpillar_graph",
    "grid_graph",
    "planar_triangulation_graph",
    "outerplanar_graph",
    "forest_union_graph",
    "random_bounded_arboricity_graph",
    "preferential_attachment_graph",
    "powerlaw_cluster_graph",
    "random_geometric_graph",
    "star_of_cliques",
    "standard_test_suite",
]


@dataclass
class GraphInstance:
    """A generated graph together with the metadata experiments need.

    Attributes
    ----------
    name:
        Human-readable family name, e.g. ``"planar-triangulation"``.
    graph:
        The generated graph.  Node weights, if any, live in the ``"weight"``
        node attribute.
    alpha:
        A certified upper bound on the arboricity (the value handed to the
        distributed algorithms as their ``alpha`` parameter).
    params:
        The generator parameters, for reporting.
    """

    name: str
    graph: nx.Graph
    alpha: int
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def m(self) -> int:
        return self.graph.number_of_edges()

    @property
    def max_degree(self) -> int:
        if self.n == 0:
            return 0
        return max(dict(self.graph.degree()).values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphInstance(name={self.name!r}, n={self.n}, m={self.m}, "
            f"alpha<={self.alpha}, max_degree={self.max_degree})"
        )


def _empty_graph(n: int) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    return graph


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """Return a uniformly random labelled tree on ``n`` nodes (Pruefer)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    graph = _empty_graph(n)
    if n <= 1:
        return graph
    if n == 2:
        graph.add_edge(0, 1)
        return graph
    rng = random.Random(seed)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for node in sequence:
        degree[node] += 1
    # Decode the Pruefer sequence.
    import heapq

    leaves = [node for node in range(n) if degree[node] == 1]
    heapq.heapify(leaves)
    for node in sequence:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, node)
        degree[leaf] -= 1
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    last_two = [node for node in range(n) if degree[node] == 1]
    graph.add_edge(last_two[0], last_two[1])
    return graph


def random_forest(n: int, tree_count: int = 3, seed: int = 0) -> nx.Graph:
    """Return a forest on ``n`` nodes made of ``tree_count`` random trees."""
    if tree_count < 1:
        raise ValueError("tree_count must be at least 1")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    graph = _empty_graph(n)
    if n == 0:
        return graph
    tree_count = min(tree_count, n)
    # Split the shuffled nodes into contiguous chunks, one tree each.
    boundaries = sorted(rng.sample(range(1, n), tree_count - 1)) if tree_count > 1 else []
    chunks = []
    previous = 0
    for boundary in boundaries + [n]:
        chunks.append(nodes[previous:boundary])
        previous = boundary
    for index, chunk in enumerate(chunks):
        if len(chunk) <= 1:
            continue
        subtree = random_tree(len(chunk), seed=seed * 1000 + index + 1)
        relabel = {i: chunk[i] for i in range(len(chunk))}
        for u, v in subtree.edges():
            graph.add_edge(relabel[u], relabel[v])
    return graph


def caterpillar_graph(spine: int, legs_per_node: int = 3) -> nx.Graph:
    """Return a caterpillar tree: a path with ``legs_per_node`` leaves per node.

    Caterpillars are the worst case for the trivial forest 3-approximation
    (Observation A.1): every spine node is internal, so the trivial algorithm
    takes the whole spine while the optimum can skip alternate nodes.
    """
    if spine < 1:
        raise ValueError("spine must be at least 1")
    graph = nx.Graph()
    graph.add_nodes_from(range(spine))
    for index in range(spine - 1):
        graph.add_edge(index, index + 1)
    next_label = spine
    for index in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(index, next_label)
            next_label += 1
    return graph


def grid_graph(rows: int, cols: int, diagonal: bool = False) -> nx.Graph:
    """Return a planar grid (arboricity at most 2, or 3 with diagonals)."""
    graph = nx.Graph()
    label = lambda r, c: r * cols + c  # noqa: E731 - tiny local helper
    for r in range(rows):
        for c in range(cols):
            graph.add_node(label(r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(label(r, c), label(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(label(r, c), label(r + 1, c))
            if diagonal and r + 1 < rows and c + 1 < cols:
                graph.add_edge(label(r, c), label(r + 1, c + 1))
    return graph


def planar_triangulation_graph(n: int, seed: int = 0) -> nx.Graph:
    """Return a planar graph via the Delaunay triangulation of random points.

    Delaunay triangulations are planar, hence have arboricity at most 3 by
    Nash--Williams (a planar graph has ``m <= 3n - 6``).
    """
    if n < 3:
        return random_tree(n, seed=seed)
    import numpy as np
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    triangulation = Delaunay(points)
    graph = _empty_graph(n)
    for simplex in triangulation.simplices:
        a, b, c = (int(x) for x in simplex)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
    return graph


def outerplanar_graph(n: int, chord_fraction: float = 0.5, seed: int = 0) -> nx.Graph:
    """Return a maximal-ish outerplanar graph (arboricity at most 2).

    Construction: a cycle on ``n`` nodes plus a set of non-crossing chords
    generated by recursively splitting intervals of the cycle.  Outerplanar
    graphs have ``m <= 2n - 3``, hence arboricity at most 2.
    """
    if n < 3:
        return random_tree(n, seed=seed)
    rng = random.Random(seed)
    graph = _empty_graph(n)
    for index in range(n):
        graph.add_edge(index, (index + 1) % n)

    def add_chords(low: int, high: int) -> None:
        # Add a chord across [low, high] and recurse, never crossing.
        if high - low < 3:
            return
        if rng.random() > chord_fraction:
            return
        mid = rng.randrange(low + 2, high)
        graph.add_edge(low, mid)
        add_chords(low, mid)
        add_chords(mid, high)

    add_chords(0, n - 1)
    return graph


def forest_union_graph(n: int, alpha: int, seed: int = 0) -> nx.Graph:
    """Return the union of ``alpha`` random spanning trees on ``n`` nodes.

    The edge set is a union of ``alpha`` forests by construction, so the
    arboricity is at most ``alpha`` (and typically very close to it).  This is
    the canonical "arboricity exactly alpha" workload for the experiments.
    """
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    graph = _empty_graph(n)
    for index in range(alpha):
        tree = random_tree(n, seed=seed * 7919 + index)
        rng = random.Random(seed * 104729 + index)
        permutation = list(range(n))
        rng.shuffle(permutation)
        for u, v in tree.edges():
            graph.add_edge(permutation[u], permutation[v])
    return graph


def random_bounded_arboricity_graph(
    n: int, alpha: int, edge_probability: float = 1.0, seed: int = 0
) -> nx.Graph:
    """Return a random graph built by giving every node at most ``alpha`` out-edges.

    Each node picks up to ``alpha`` random earlier nodes as out-neighbours
    (each kept with probability ``edge_probability``).  The natural
    orientation towards earlier nodes has out-degree at most ``alpha``, so the
    graph decomposes into ``alpha`` pseudoforests and has arboricity at most
    ``alpha + 1`` (we report ``alpha`` as the pseudoarboricity certificate,
    which is what the algorithms need per footnote 2 of the paper).
    """
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    rng = random.Random(seed)
    graph = _empty_graph(n)
    for node in range(1, n):
        available = list(range(node))
        rng.shuffle(available)
        picked = 0
        for candidate in available:
            if picked >= alpha:
                break
            if rng.random() <= edge_probability:
                graph.add_edge(node, candidate)
                picked += 1
    return graph


def preferential_attachment_graph(n: int, attachment: int = 3, seed: int = 0) -> nx.Graph:
    """Return a Barabasi--Albert graph (a "social network"-like sparse graph).

    Each arriving node attaches to ``attachment`` existing nodes, so the
    arrival orientation has out-degree at most ``attachment``; the graph is
    ``attachment``-degenerate and its arboricity is at most ``attachment``.
    The degree distribution is heavy-tailed, giving a large maximum degree
    with small arboricity -- exactly the regime in which the paper's
    ``O(log Delta)`` algorithms are interesting.
    """
    if n <= attachment:
        return random_tree(n, seed=seed)
    return nx.barabasi_albert_graph(n, attachment, seed=seed)


def powerlaw_cluster_graph(n: int, attachment: int = 3, triangle_p: float = 0.3, seed: int = 0) -> nx.Graph:
    """Return a Holme--Kim power-law cluster graph (heavy tail + triangles).

    Like preferential attachment, each arriving node brings at most
    ``attachment`` edges, so the arrival orientation certifies degeneracy (and
    hence arboricity) at most ``attachment``; the extra triad-closure step
    raises the clustering coefficient, modelling community structure in
    social networks without losing the bounded-arboricity regime.
    """
    if n <= attachment:
        return random_tree(n, seed=seed)
    return nx.powerlaw_cluster_graph(n, attachment, triangle_p, seed=seed)


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> nx.Graph:
    """Return a unit-square random geometric (unit-disk-like) graph.

    Devices scattered uniformly in the unit square are connected when within
    ``radius`` of each other -- the standard model for ad-hoc wireless
    deployments.  No a-priori arboricity certificate exists, so callers should
    derive ``alpha`` from :func:`repro.graphs.arboricity.arboricity_upper_bound`;
    for laptop-scale ``n * radius^2`` the degeneracy stays small.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    positions = {index: (rng.random(), rng.random()) for index in range(n)}
    graph = _empty_graph(n)
    for node, position in positions.items():
        graph.nodes[node]["pos"] = position
    for u in range(n):
        ux, uy = positions[u]
        for v in range(u + 1, n):
            dx = ux - positions[v][0]
            dy = uy - positions[v][1]
            if dx * dx + dy * dy <= radius * radius:
                graph.add_edge(u, v)
    return graph


def star_of_cliques(clique_count: int, clique_size: int) -> nx.Graph:
    """Return a hub node attached to ``clique_count`` disjoint cliques.

    Used by the Theorem 1.3 (general graphs) experiments: the cliques push the
    arboricity up to about ``clique_size / 2`` while the hub pushes the
    maximum degree up to ``clique_count * clique_size``.
    """
    if clique_count < 1 or clique_size < 1:
        raise ValueError("clique_count and clique_size must be at least 1")
    graph = nx.Graph()
    hub = 0
    graph.add_node(hub)
    next_label = 1
    for _ in range(clique_count):
        members = list(range(next_label, next_label + clique_size))
        next_label += clique_size
        for i, u in enumerate(members):
            graph.add_edge(hub, u)
            for v in members[i + 1:]:
                graph.add_edge(u, v)
    return graph


#: Per-scale generator sizes for :func:`standard_test_suite`; shared with the
#: scenario registry (:mod:`repro.orchestration.scenarios`) so the two stay
#: in sync.
STANDARD_SCALES = {
    "tiny": {"tree": 30, "planar": 40, "forest_union": 40, "ba": 50, "grid": (5, 6), "outer": 30},
    "small": {"tree": 120, "planar": 150, "forest_union": 150, "ba": 200, "grid": (10, 12), "outer": 100},
    "medium": {"tree": 600, "planar": 700, "forest_union": 600, "ba": 1000, "grid": (22, 25), "outer": 400},
}


def standard_test_suite(
    scale: str = "small", seed: int = 0
) -> List[GraphInstance]:
    """Return the shared workload used across tests and benchmarks.

    Parameters
    ----------
    scale:
        ``"tiny"`` (fast unit tests), ``"small"`` (integration tests), or
        ``"medium"`` (benchmarks).
    seed:
        Seed forwarded to every generator.
    """
    if scale not in STANDARD_SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected tiny/small/medium")
    size = STANDARD_SCALES[scale]
    rows, cols = size["grid"]
    instances = [
        GraphInstance(
            name="random-tree",
            graph=random_tree(size["tree"], seed=seed),
            alpha=1,
            params={"n": size["tree"], "seed": seed},
        ),
        GraphInstance(
            name="caterpillar",
            graph=caterpillar_graph(max(4, size["tree"] // 4), legs_per_node=3),
            alpha=1,
            params={"spine": max(4, size["tree"] // 4)},
        ),
        GraphInstance(
            name="grid",
            graph=grid_graph(rows, cols),
            alpha=2,
            params={"rows": rows, "cols": cols},
        ),
        GraphInstance(
            name="outerplanar",
            graph=outerplanar_graph(size["outer"], seed=seed),
            alpha=2,
            params={"n": size["outer"], "seed": seed},
        ),
        GraphInstance(
            name="planar-triangulation",
            graph=planar_triangulation_graph(size["planar"], seed=seed),
            alpha=3,
            params={"n": size["planar"], "seed": seed},
        ),
        GraphInstance(
            name="forest-union-alpha3",
            graph=forest_union_graph(size["forest_union"], alpha=3, seed=seed),
            alpha=3,
            params={"n": size["forest_union"], "alpha": 3, "seed": seed},
        ),
        GraphInstance(
            name="forest-union-alpha5",
            graph=forest_union_graph(size["forest_union"], alpha=5, seed=seed + 1),
            alpha=5,
            params={"n": size["forest_union"], "alpha": 5, "seed": seed + 1},
        ),
        GraphInstance(
            name="preferential-attachment",
            graph=preferential_attachment_graph(size["ba"], attachment=4, seed=seed),
            alpha=4,
            params={"n": size["ba"], "attachment": 4, "seed": seed},
        ),
    ]
    return instances
