"""Structural validators shared by the test-suite and the benchmark harness.

These helpers check the objects the algorithms produce: dominating sets,
vertex covers, orientations, forest and pseudoforest partitions.  They are
deliberately written as straightforward, independent re-computations so that
they can serve as oracles in property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence, Set, Tuple

import networkx as nx

from repro.graphs.weights import node_weight

__all__ = [
    "closed_neighborhood",
    "is_dominating_set",
    "undominated_nodes",
    "dominating_set_weight",
    "is_vertex_cover",
    "is_valid_orientation",
    "is_pseudoforest",
    "is_forest_partition",
]


def closed_neighborhood(graph: nx.Graph, node: Hashable) -> Set[Hashable]:
    """Return ``N+(v) = {v} union N(v)``, the closed neighbourhood of ``v``."""
    neighborhood = set(graph.neighbors(node))
    neighborhood.add(node)
    return neighborhood


def undominated_nodes(graph: nx.Graph, candidate: Iterable[Hashable]) -> Set[Hashable]:
    """Return the set of nodes not dominated by ``candidate``."""
    candidate_set = set(candidate)
    unknown = candidate_set - set(graph.nodes())
    if unknown:
        raise ValueError(f"candidate contains nodes not in the graph: {sorted(map(repr, unknown))[:5]}")
    dominated = set(candidate_set)
    for node in candidate_set:
        dominated.update(graph.neighbors(node))
    return set(graph.nodes()) - dominated


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Return ``True`` iff every node is in ``candidate`` or adjacent to it."""
    return not undominated_nodes(graph, candidate)


def dominating_set_weight(graph: nx.Graph, candidate: Iterable[Hashable]) -> int:
    """Return the total weight of ``candidate`` (weight 1 per node if unweighted)."""
    return sum(node_weight(graph, node) for node in set(candidate))


def is_vertex_cover(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Return ``True`` iff every edge has at least one endpoint in ``candidate``."""
    candidate_set = set(candidate)
    return all(u in candidate_set or v in candidate_set for u, v in graph.edges())


def is_valid_orientation(
    graph: nx.Graph, orientation: Dict[Tuple[Hashable, Hashable], Hashable], max_outdegree: int | None = None
) -> bool:
    """Check that ``orientation`` assigns a tail endpoint to every edge.

    When ``max_outdegree`` is given, additionally check that no node has more
    than that many outgoing edges.
    """
    outdegree: Dict[Hashable, int] = {node: 0 for node in graph.nodes()}
    for edge in graph.edges():
        if edge not in orientation:
            return False
        tail = orientation[edge]
        if tail not in edge:
            return False
        outdegree[tail] += 1
    if max_outdegree is not None:
        return all(count <= max_outdegree for count in outdegree.values())
    return True


def is_pseudoforest(graph: nx.Graph) -> bool:
    """Return ``True`` iff every connected component has at most one cycle.

    A component with ``k`` nodes has at most one cycle iff it has at most
    ``k`` edges.
    """
    for component in nx.connected_components(graph):
        subgraph = graph.subgraph(component)
        if subgraph.number_of_edges() > subgraph.number_of_nodes():
            return False
    return True


def is_forest_partition(graph: nx.Graph, parts: Sequence[nx.Graph]) -> bool:
    """Check that ``parts`` partitions the edges of ``graph`` into forests."""
    seen = set()
    for part in parts:
        if part.number_of_edges() > 0 and not nx.is_forest(part):
            return False
        for u, v in part.edges():
            key = frozenset((u, v))
            if key in seen or not graph.has_edge(u, v):
                return False
            seen.add(key)
    expected = {frozenset((u, v)) for u, v in graph.edges()}
    return seen == expected
