"""Large-scale graph families streamed straight into CSR form.

The dict-based :class:`networkx.Graph` (plus the per-node
:class:`~repro.congest.node.NodeContext` objects a
:class:`~repro.congest.network.Network` builds on top of it) is what caps
the batched engine around a few thousand nodes.  The generators here build
the paper's scale families -- preferential attachment, grids, random
geometric graphs -- directly as :class:`CSRGraph` arrays, the native input
of the kernel execution tier (``engine="kernel"``): a 10^5-node instance is
two ``int64`` arrays, not 10^5 Python objects.

A :class:`CSRGraph` is a valid ``RunSpec.graph``; the
:class:`~repro.run.session.Session` recognises it and executes through the
algorithm kernels without ever materialising a network.  For differential
testing at moderate sizes, :meth:`CSRGraph.to_networkx` and
:func:`csr_from_networkx` convert losslessly in both directions
(property-tested in ``tests/congest/test_kernel_primitives.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = [
    "CSRGraph",
    "csr_from_edges",
    "csr_from_networkx",
    "large_preferential_attachment",
    "large_grid",
    "large_random_geometric",
    "random_integer_weights",
    "csr_degeneracy",
    "csr_is_dominating_set",
]


@dataclass(eq=False)
class CSRGraph:
    """An undirected graph as CSR arrays; node ids are ``0 .. n-1``.

    ``indices[indptr[i]:indptr[i+1]]`` lists node ``i``'s neighbors sorted
    ascending -- the same canonical order the engines' inbox semantics are
    defined against.  ``weights`` is an optional ``int64`` array (``None``
    means unit weights); ``alpha`` is a certified arboricity upper bound
    when the construction provides one (``None`` falls back to a degeneracy
    computation at run time).

    ``eq=False``: like :class:`networkx.Graph`, instances compare (and
    hash) by identity -- the generated field-tuple ``__eq__`` would raise
    on the ndarray fields and would make a frozen ``RunSpec`` holding a
    CSR graph unhashable.
    """

    def __getstate__(self):
        # The cached KernelGrid (CSR copies, fold schedule, repr arrays) and
        # the fault runtime's edge-position map are derived state rebuilt on
        # demand; shipping them with every pickled RunSpec would triple the
        # per-worker IPC payload at scale.
        state = dict(self.__dict__)
        state.pop("_kernel_grid", None)
        state.pop("_fault_edge_pos", None)
        return state

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "csr-graph"
    alpha: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.indptr) != self.n + 1:
            raise ValueError("indptr must have length n + 1")
        if self.weights is not None and len(self.weights) != self.n:
            raise ValueError("weights must have one entry per node")

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    @property
    def is_unweighted(self) -> bool:
        return self.weights is None or bool((self.weights == 1).all())

    def weight_array(self) -> np.ndarray:
        """Node weights as an ``int64`` array (ones when unweighted)."""
        if self.weights is None:
            return np.ones(self.n, dtype=np.int64)
        return self.weights

    def number_of_nodes(self) -> int:  # Graph-like sugar for reporting code
        return self.n

    def number_of_edges(self) -> int:
        return self.m

    def nodes(self) -> range:
        """Node ids in canonical order (Graph-like sugar).

        Matches ``to_networkx().nodes()``, so graph-agnostic samplers such
        as :meth:`repro.faults.spec.FaultSpec.materialize` draw identical
        victims on either representation.
        """
        return range(self.n)

    def edges(self):
        """The ``u < v`` edge list as tuples, in ``to_networkx()`` order."""
        u, v = self.edge_arrays()
        return list(zip(u.tolist(), v.tolist()))

    def edge_arrays(self):
        """The ``u < v`` edge list as two aligned ``int64`` arrays."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        keep = src < self.indices
        return src[keep], self.indices[keep]

    def to_networkx(self):
        """Materialise as a :class:`networkx.Graph` (for differential tests).

        Inverse of :func:`csr_from_networkx`; weights (when present) become
        ``"weight"`` node attributes.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        u, v = self.edge_arrays()
        graph.add_edges_from(zip(u.tolist(), v.tolist()))
        if self.weights is not None:
            for node, weight in enumerate(self.weights.tolist()):
                graph.nodes[node]["weight"] = weight
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.n}, m={self.m}, "
            f"max_degree={self.max_degree}, alpha={self.alpha})"
        )


def csr_from_edges(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    weights: Optional[np.ndarray] = None,
    name: str = "csr-graph",
    alpha: Optional[int] = None,
    params: Optional[Dict[str, object]] = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an edge list (one entry per edge).

    Self-loops and duplicate edges are rejected -- the CONGEST network
    model requires a simple graph, and silent deduplication would desync a
    generator's certified ``alpha`` from what it actually built.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if (u == v).any():
        raise ValueError("self-loops are not allowed")
    source = np.concatenate([u, v])
    destination = np.concatenate([v, u])
    order = np.lexsort((destination, source))
    source, destination = source[order], destination[order]
    if len(source) and (
        (source[1:] == source[:-1]) & (destination[1:] == destination[:-1])
    ).any():
        raise ValueError("duplicate edges are not allowed")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(source, minlength=n), out=indptr[1:])
    return CSRGraph(
        n=n,
        indptr=indptr,
        indices=destination,
        weights=weights,
        name=name,
        alpha=alpha,
        params=dict(params or {}),
    )


def csr_from_networkx(graph) -> CSRGraph:
    """Convert a :class:`networkx.Graph` with nodes ``0..n-1`` to CSR.

    Node weights are read from the ``"weight"`` attribute; a graph whose
    node set is not exactly ``range(n)`` is rejected (CSR node ids are
    positional).
    """
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("csr_from_networkx requires consecutive integer node ids 0..n-1")
    if graph.number_of_edges():
        edges = np.asarray(list(graph.edges()), dtype=np.int64)
        u, v = edges[:, 0], edges[:, 1]
    else:
        u = v = np.empty(0, dtype=np.int64)
    weight_list = [graph.nodes[node].get("weight", 1) for node in range(n)]
    for node, weight in enumerate(weight_list):
        # The conversion is documented as lossless: casting 2.7 -> 2 (or
        # 0.5 -> 0, breaking the positive-weight invariant) would silently
        # change the instance, so non-integral weights are rejected.
        if weight != int(weight) or weight < 1:
            raise ValueError(
                f"node {node} has weight {weight!r}; CSRGraph weights must be "
                "positive integers (the Section 2 convention)"
            )
    weights = None
    if any(weight != 1 for weight in weight_list):
        weights = np.asarray(weight_list, dtype=np.int64)
    return csr_from_edges(n, u, v, weights=weights, name="from-networkx")


# ---------------------------------------------------------------------------
# Streaming generators
# ---------------------------------------------------------------------------


def large_preferential_attachment(
    n: int, attachment: int = 4, seed: int = 0
) -> CSRGraph:
    """A Barabasi--Albert graph built edge-array-first.

    Same process as :func:`repro.graphs.generators.preferential_attachment_graph`
    (each arriving node attaches to ``attachment`` distinct existing nodes,
    sampled proportionally to degree via the repeated-endpoints trick), but
    it only ever touches preallocated ``int64`` arrays -- no adjacency
    dicts -- so 10^5-node instances build in a couple of seconds.  The
    arrival orientation certifies arboricity at most ``attachment``.
    """
    if attachment < 1:
        raise ValueError("attachment must be at least 1")
    if n <= attachment:
        raise ValueError("need n > attachment nodes for preferential attachment")
    rng = np.random.default_rng(seed)
    edge_count = attachment * (n - attachment)
    sources = np.empty(edge_count, dtype=np.int64)
    destinations = np.empty(edge_count, dtype=np.int64)
    # Every edge endpoint, repeated once per incidence: sampling an index
    # uniformly from the filled prefix is degree-proportional sampling.
    repeated = np.empty(2 * edge_count, dtype=np.int64)
    targets = np.arange(attachment, dtype=np.int64)
    filled = 0
    written = 0
    for node in range(attachment, n):
        sources[written : written + attachment] = node
        destinations[written : written + attachment] = targets
        written += attachment
        repeated[filled : filled + attachment] = targets
        filled += attachment
        repeated[filled : filled + attachment] = node
        filled += attachment
        picks: set = set()
        while len(picks) < attachment:
            draws = repeated[rng.integers(0, filled, size=attachment - len(picks))]
            picks.update(draws.tolist())
        targets = np.fromiter(picks, dtype=np.int64, count=attachment)
    return csr_from_edges(
        n,
        sources,
        destinations,
        name=f"large-ba-{n}",
        alpha=attachment,
        params={"n": n, "attachment": attachment, "seed": seed},
    )


def large_grid(rows: int, cols: int, diagonal: bool = False) -> CSRGraph:
    """A ``rows x cols`` grid (arboricity <= 2, or 3 with diagonals)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be at least 1")
    labels = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    chunks_u = [labels[:, :-1].ravel(), labels[:-1, :].ravel()]
    chunks_v = [labels[:, 1:].ravel(), labels[1:, :].ravel()]
    if diagonal:
        chunks_u.append(labels[:-1, :-1].ravel())
        chunks_v.append(labels[1:, 1:].ravel())
    return csr_from_edges(
        rows * cols,
        np.concatenate(chunks_u),
        np.concatenate(chunks_v),
        name=f"large-grid-{rows}x{cols}",
        alpha=3 if diagonal else 2,
        params={"rows": rows, "cols": cols, "diagonal": diagonal},
    )


def large_random_geometric(n: int, radius: float, seed: int = 0) -> CSRGraph:
    """A unit-square random geometric graph via a KD-tree range query.

    No a-priori arboricity certificate exists for this family, so ``alpha``
    is left ``None`` -- run-time consumers fall back to
    :func:`csr_degeneracy`, the same certified bound the dict-based path
    computes.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    if n:
        pairs = cKDTree(points).query_pairs(radius, output_type="ndarray")
        u, v = pairs[:, 0], pairs[:, 1]
    else:
        u = v = np.empty(0, dtype=np.int64)
    return csr_from_edges(
        n,
        u,
        v,
        name=f"large-rgg-{n}",
        alpha=None,
        params={"n": n, "radius": radius, "seed": seed},
    )


def random_integer_weights(
    csr_graph: CSRGraph, low: int = 1, high: int = 100, seed: int = 0
) -> CSRGraph:
    """Return a copy of ``csr_graph`` with uniform integer weights.

    The CSR arrays are shared (they are immutable by convention); only the
    weight vector is new.  Mirrors
    :func:`repro.graphs.weights.assign_random_weights` semantics -- positive
    integers in ``[low, high]`` -- using the NumPy generator so drawing
    10^5 weights stays array-speed.
    """
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    rng = np.random.default_rng(seed)
    weights = rng.integers(low, high + 1, size=csr_graph.n, dtype=np.int64)
    return CSRGraph(
        n=csr_graph.n,
        indptr=csr_graph.indptr,
        indices=csr_graph.indices,
        weights=weights,
        name=f"{csr_graph.name}[random-weights]",
        alpha=csr_graph.alpha,
        params={**csr_graph.params, "weights": f"random[{low},{high}]", "weight_seed": seed},
    )


# ---------------------------------------------------------------------------
# CSR-native analysis
# ---------------------------------------------------------------------------


def csr_degeneracy(csr_graph: CSRGraph) -> int:
    """The peeling number (degeneracy) computed with array sweeps.

    Repeatedly strips every node of residual degree ``<= k`` for increasing
    ``k``; the largest ``k`` that removes anything is the degeneracy --
    a certified arboricity upper bound, matching
    :func:`repro.graphs.arboricity.degeneracy` (property-tested).  Each
    sweep is one segment reduction, so the cost is ``O(m)`` per peel level
    rather than per node.
    """
    n = csr_graph.n
    if n == 0:
        return 0
    from repro.congest.kernels.csr import segment_sum

    indptr, indices = csr_graph.indptr, csr_graph.indices
    residual = csr_graph.degrees.astype(np.int64, copy=True)
    alive = np.ones(n, dtype=bool)
    degeneracy = 0
    level = 0
    while alive.any():
        removed_any = False
        while True:
            removable = alive & (residual <= level)
            if not removable.any():
                break
            removed_any = True
            alive &= ~removable
            residual -= segment_sum(indptr, removable[indices].astype(np.int64))
        if removed_any:
            degeneracy = level
        level += 1
    return degeneracy


def csr_is_dominating_set(csr_graph: CSRGraph, selected) -> bool:
    """Whether ``selected`` (a node-id set or boolean mask) dominates."""
    n = csr_graph.n
    mask = np.zeros(n, dtype=bool)
    if isinstance(selected, np.ndarray) and selected.dtype == bool:
        mask |= selected
    else:
        for node in selected:
            mask[int(node)] = True
    if n == 0:
        return True
    from repro.congest.kernels.csr import segment_any

    covered = mask | segment_any(csr_graph.indptr, mask[csr_graph.indices])
    return bool(covered.all())
