"""Low out-degree edge orientations and forest/pseudoforest partitions.

Observation 3.5 of the paper states that a graph with arboricity at most
``alpha`` can be oriented so that every node has out-degree at most
``alpha``.  The paper's algorithms never construct this orientation -- it is
used only in the analysis -- but the reproduction needs it in three places:

* verifying the structural assumptions of generated test graphs,
* the Morgan--Solomon--Wein and Lenzen--Wattenhofer baselines, which do use
  orientations algorithmically, and
* Remark 4.5, where a ``(2 + eps) * alpha`` out-degree orientation is computed
  distributively with the Barenboim--Elkin peeling procedure (the distributed
  version lives in :mod:`repro.core.unknown_params`; the centralized
  reference implementation lives here).

An *orientation* is represented as a ``dict`` mapping each undirected edge
``(u, v)`` (as stored by networkx) to the node out of which it points, i.e.
``orientation[(u, v)] = u`` means the edge is directed ``u -> v``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.graphs.arboricity import degeneracy_ordering, pseudoarboricity

__all__ = [
    "degeneracy_orientation",
    "minimum_outdegree_orientation",
    "orientation_outdegrees",
    "barenboim_elkin_orientation",
    "pseudoforest_partition",
    "spanning_forest_partition",
]

Edge = Tuple[Hashable, Hashable]
Orientation = Dict[Edge, Hashable]


def orientation_outdegrees(graph: nx.Graph, orientation: Orientation) -> Dict[Hashable, int]:
    """Return the out-degree of every node under ``orientation``."""
    out = {node: 0 for node in graph.nodes()}
    for edge in graph.edges():
        tail = orientation[edge]
        out[tail] += 1
    return out


def degeneracy_orientation(graph: nx.Graph) -> Orientation:
    """Orient every edge from the earlier-peeled endpoint to the later one.

    The resulting maximum out-degree equals the degeneracy ``d`` of the
    graph, which satisfies ``alpha <= d <= 2*alpha - 1``.  This is the cheap
    (linear-time) orientation used by default by the baselines.
    """
    ordering, _ = degeneracy_ordering(graph)
    position = {node: index for index, node in enumerate(ordering)}
    orientation: Orientation = {}
    for u, v in graph.edges():
        # The node peeled first had low degree at peel time; orienting its
        # edges outward bounds its out-degree by its peel-time degree.
        orientation[(u, v)] = u if position[u] < position[v] else v
    return orientation


def minimum_outdegree_orientation(graph: nx.Graph) -> Tuple[Orientation, int]:
    """Return an orientation minimising the maximum out-degree, and that value.

    The optimum equals the pseudoarboricity.  The orientation is extracted
    from a feasible flow in the standard edge-selection network: each edge
    sends one unit to the endpoint that will pay for it, and that endpoint
    becomes the tail.
    """
    if graph.number_of_edges() == 0:
        return {}, 0
    target = pseudoarboricity(graph)
    orientation = _orientation_with_outdegree(graph, target)
    if orientation is None:  # pragma: no cover - pseudoarboricity guarantees feasibility
        raise RuntimeError("flow-based orientation failed at the pseudoarboricity bound")
    return orientation, target


def _orientation_with_outdegree(graph: nx.Graph, bound: int) -> Orientation | None:
    """Return an orientation with maximum out-degree <= bound, or ``None``."""
    m = graph.number_of_edges()
    flow_net = nx.DiGraph()
    source, sink = "__source__", "__sink__"
    edge_list = list(graph.edges())
    for index, (u, v) in enumerate(edge_list):
        edge_node = ("__edge__", index)
        flow_net.add_edge(source, edge_node, capacity=1)
        flow_net.add_edge(edge_node, ("__vertex__", u), capacity=1)
        flow_net.add_edge(edge_node, ("__vertex__", v), capacity=1)
    for node in graph.nodes():
        flow_net.add_edge(("__vertex__", node), sink, capacity=bound)
    flow_value, flow_dict = nx.maximum_flow(flow_net, source, sink)
    if flow_value < m:
        return None
    orientation: Orientation = {}
    for index, (u, v) in enumerate(edge_list):
        edge_node = ("__edge__", index)
        sent_to_u = flow_dict[edge_node].get(("__vertex__", u), 0)
        orientation[(u, v)] = u if sent_to_u >= 1 else v
    return orientation


def barenboim_elkin_orientation(
    graph: nx.Graph, alpha: int, epsilon: float = 0.5
) -> Tuple[Orientation, int]:
    """Centralized reference of the Barenboim--Elkin peeling orientation.

    Nodes of degree at most ``(2 + epsilon) * alpha`` are repeatedly peeled in
    parallel batches; each peeled node orients all its remaining incident
    edges outward.  After ``O(log n / epsilon)`` batches every node is
    peeled, and the maximum out-degree is at most ``(2 + epsilon) * alpha``.

    Returns the orientation and the number of peeling phases used (which is
    what the distributed implementation pays in rounds).
    """
    if alpha < 1:
        alpha = 1
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    threshold = (2 + epsilon) * alpha
    remaining = graph.copy()
    orientation: Orientation = {}
    canonical = {}
    for u, v in graph.edges():
        canonical[frozenset((u, v))] = (u, v)
    phases = 0
    while remaining.number_of_nodes() > 0:
        peel = [node for node, deg in remaining.degree() if deg <= threshold]
        if not peel:
            # Cannot happen when alpha is a genuine arboricity upper bound:
            # a graph with all degrees above (2+eps)*alpha has average degree
            # above 2*alpha, contradicting m <= alpha * (n - 1).
            raise ValueError(
                "peeling stalled: the supplied alpha is below the true arboricity"
            )
        peel_set = set(peel)
        for node in peel:
            for neighbor in remaining.neighbors(node):
                key = canonical[frozenset((node, neighbor))]
                if neighbor in peel_set:
                    # Both endpoints peeled this phase: orient by an arbitrary
                    # but consistent tie-break (smaller string representation).
                    if key not in orientation:
                        tail = min(node, neighbor, key=repr)
                        orientation[key] = tail
                else:
                    orientation[key] = node
        remaining.remove_nodes_from(peel)
        phases += 1
    return orientation, phases


def pseudoforest_partition(graph: nx.Graph, orientation: Orientation | None = None) -> List[nx.Graph]:
    """Partition the edges into pseudoforests, one per out-edge slot.

    Given an orientation with maximum out-degree ``d``, assigning the ``i``-th
    out-edge of every node to part ``i`` yields ``d`` subgraphs in which every
    node has out-degree at most one -- i.e. pseudoforests (each connected
    component has at most one cycle).  This realises footnote 2 of the paper.
    """
    if orientation is None:
        orientation, _ = minimum_outdegree_orientation(graph)
    slots: Dict[Hashable, int] = {node: 0 for node in graph.nodes()}
    parts: List[nx.Graph] = []
    for u, v in graph.edges():
        tail = orientation[(u, v)]
        index = slots[tail]
        slots[tail] += 1
        while len(parts) <= index:
            part = nx.Graph()
            part.add_nodes_from(graph.nodes())
            parts.append(part)
        parts[index].add_edge(u, v)
    return parts


def spanning_forest_partition(graph: nx.Graph) -> List[nx.Graph]:
    """Greedily peel spanning forests until no edges remain.

    This is a simple heuristic forest partition: each round extracts a
    maximal spanning forest of the remaining edges.  The number of forests
    produced is at least the arboricity and at most roughly twice it; it is
    used for illustration and sanity checks, not in the analysis.
    """
    remaining = nx.Graph()
    remaining.add_nodes_from(graph.nodes())
    remaining.add_edges_from(graph.edges())
    forests: List[nx.Graph] = []
    while remaining.number_of_edges() > 0:
        forest = nx.Graph()
        forest.add_nodes_from(graph.nodes())
        components = nx.utils.UnionFind(remaining.nodes())
        for u, v in list(remaining.edges()):
            if components[u] != components[v]:
                components.union(u, v)
                forest.add_edge(u, v)
        remaining.remove_edges_from(forest.edges())
        forests.append(forest)
    return forests
