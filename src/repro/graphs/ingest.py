"""Streaming ingestion of real edge-list graphs into :class:`CSRGraph`.

Everything upstream of this module runs on synthetic families; this is the
door for *real* graphs -- SNAP-style whitespace-separated edge lists (road
networks, collaboration graphs, web graphs), optionally gzip-compressed --
parsed straight into the CSR arrays the kernel execution tier consumes.
No ``dict``-of-adjacency intermediate is ever built: a 10^6-edge file
becomes two ``int64`` arrays plus one :func:`numpy.unique` pass.

The parse is two-pass and mmap-friendly:

1. **count** -- scan the raw bytes once, counting data lines (blank lines
   and ``#``-comment lines are skipped), so the edge arrays can be
   preallocated exactly;
2. **fill** -- scan again, parsing the first two whitespace-separated
   tokens of each data line into the preallocated arrays (extra columns --
   timestamps, weights -- are ignored, matching SNAP conventions).

Plain files are scanned through :mod:`mmap` (no copy of the file into the
heap); ``.gz`` files are streamed through :mod:`gzip` twice.  Node ids are
then remapped to the dense ``0 .. n-1`` range CSR requires (SNAP ids are
sparse), ordered by original id so the mapping is deterministic; self-loops
and duplicate/bidirectional edge listings are canonicalised away with array
operations.  The ingest provenance (source path, line/edge counts, how many
duplicates and self-loops were dropped) lands in ``CSRGraph.params``, and
``params["source_path"]`` is what lets the wire codec serialise an ingested
graph back to ``{"kind": "file", "path": ...}``.

The module also hosts the **named graph registry**: ``register_graph``
makes any graph object (``CSRGraph``, :class:`networkx.Graph`, registry
``GraphSpec``) addressable as ``{"kind": "named", "name": ...}`` in the
wire format -- the handle a long-lived ``repro serve`` process hands out
for graphs it ingested at startup.
"""

from __future__ import annotations

import gzip
import mmap
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.large_scale import CSRGraph, csr_from_edges
from repro.obs.metrics import MetricsRegistry
from repro.run.algorithms import registry_lookup

__all__ = [
    "available_graphs",
    "get_graph",
    "ingest_edge_list",
    "ingest_metrics",
    "load_edge_list",
    "register_graph",
    "registered_name",
    "unregister_graph",
]

#: Ingestion progress/throughput exposition.  Long files make the two-pass
#: scan minutes-long; these counters advance *during* each pass (flushed
#: every :data:`_PROGRESS_LINES` lines, not at file granularity), so a
#: metrics scrape -- or the ingestion benchmark -- can watch a
#: multi-million-edge parse move instead of staring at a silent process.
ingest_metrics = MetricsRegistry()

_PROGRESS_LINES = 1 << 16


# ---------------------------------------------------------------------------
# Two-pass parsing
# ---------------------------------------------------------------------------


def _open_raw(path: str):
    """The file's raw bytes: an mmap for plain files, bytes for ``.gz``.

    Gzip members do not support random access, so compressed files are
    decompressed into memory once and both passes scan the buffer; plain
    files are mapped and never copied.
    """
    if path.endswith(".gz"):
        with gzip.open(path, "rb") as stream:
            return stream.read(), None
    handle = open(path, "rb")
    try:
        if os.fstat(handle.fileno()).st_size == 0:
            return b"", handle
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ), handle
    except BaseException:
        handle.close()
        raise


def _parse_pairs(buffer, comments: bytes) -> Tuple[np.ndarray, np.ndarray, int]:
    """Parse ``(u, v)`` pairs out of an edge-list byte buffer, two-pass."""
    count_bytes = ingest_metrics.counter(
        "repro_ingest_scan_bytes_total",
        "bytes scanned by the ingest parser, advancing mid-pass",
        phase="count",
    )
    fill_bytes = ingest_metrics.counter(
        "repro_ingest_scan_bytes_total",
        "bytes scanned by the ingest parser, advancing mid-pass",
        phase="fill",
    )
    lines_counter = ingest_metrics.counter(
        "repro_ingest_lines_total", "data lines parsed (comments/blanks excluded)"
    )
    # Pass 1: count data lines so the arrays can be preallocated exactly.
    count = 0
    start = 0
    flushed = 0
    pending = 0
    size = len(buffer)
    while start < size:
        end = buffer.find(b"\n", start)
        if end == -1:
            end = size
        line = buffer[start:end].strip()
        if line and not line.startswith(comments):
            count += 1
        start = end + 1
        pending += 1
        if pending >= _PROGRESS_LINES:
            # Mid-pass flush: the counter moves while the scan runs, which
            # is the whole point -- per-line .inc() calls would dominate
            # the parse itself at 10^7 lines.
            count_bytes.inc(min(start, size) - flushed)
            flushed = min(start, size)
            pending = 0
    count_bytes.inc(size - flushed)
    u = np.empty(count, dtype=np.int64)
    v = np.empty(count, dtype=np.int64)
    # Pass 2: fill.  The Python-level loop touches each line once; splitting
    # only the first two tokens keeps per-line work constant even for files
    # with trailing timestamp/weight columns.
    index = 0
    start = 0
    flushed = 0
    pending = 0
    lines_flushed = 0
    line_number = 0
    while start < size:
        end = buffer.find(b"\n", start)
        if end == -1:
            end = size
        line_number += 1
        line = buffer[start:end].strip()
        start = end + 1
        pending += 1
        if pending >= _PROGRESS_LINES:
            fill_bytes.inc(min(start, size) - flushed)
            lines_counter.inc(index - lines_flushed)
            flushed = min(start, size)
            lines_flushed = index
            pending = 0
        if not line or line.startswith(comments):
            continue
        tokens = line.split(None, 2)
        if len(tokens) < 2:
            raise ValueError(
                f"line {line_number}: expected at least two columns, got {line!r}"
            )
        try:
            u[index] = int(tokens[0])
            v[index] = int(tokens[1])
        except ValueError:
            raise ValueError(
                f"line {line_number}: non-integer node id in {line!r}"
            ) from None
        index += 1
    fill_bytes.inc(size - flushed)
    lines_counter.inc(index - lines_flushed)
    return u, v, count


def ingest_edge_list(
    path: str,
    name: Optional[str] = None,
    comments: str = "#",
    alpha: Optional[int] = None,
) -> CSRGraph:
    """Parse an edge-list file into a canonical :class:`CSRGraph`.

    Parameters
    ----------
    path:
        A whitespace-separated edge list (SNAP style); ``.gz`` files are
        decompressed transparently.  Lines starting with ``comments`` and
        blank lines are skipped; columns beyond the first two are ignored.
    name:
        Graph label; defaults to the file's base name without extensions.
    alpha:
        Optional certified arboricity bound to attach (real graphs usually
        have none -- run-time consumers then fall back to the CSR
        degeneracy sweep, a valid certificate).

    Node ids are remapped to ``0 .. n-1`` in increasing original-id order
    (deterministic); self-loops are dropped and duplicate listings --
    including the ``u v`` / ``v u`` double entries many SNAP exports carry
    -- are collapsed.  The drop counts, source path and raw line count are
    recorded in ``params``.
    """
    buffer, handle = _open_raw(path)
    try:
        u, v, lines = _parse_pairs(buffer, comments.encode("ascii"))
    finally:
        if isinstance(buffer, mmap.mmap):
            buffer.close()
        if handle is not None:
            handle.close()
    if u.size:
        if (u < 0).any() or (v < 0).any():
            raise ValueError(f"{path}: negative node ids are not supported")
        # Dense remap, ordered by original id: np.unique returns the sorted
        # originals and the inverse is the new id of every endpoint.
        originals, inverse = np.unique(np.concatenate([u, v]), return_inverse=True)
        n = int(originals.size)
        u, v = inverse[: u.size], inverse[u.size :]
        loops = int((u == v).sum())
        keep = u != v
        u, v = u[keep], v[keep]
        # Canonical undirected form (lo, hi) + dedupe via one fused-key sort.
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        key = lo * np.int64(n) + hi
        key, counts = np.unique(key, return_counts=True)
        duplicates = int(counts.sum() - key.size)
        lo, hi = key // n, key % n
    else:
        n, loops, duplicates = 0, 0, 0
        lo = hi = u
    ingest_metrics.counter("repro_ingest_files_total", "edge-list files ingested").inc()
    ingest_metrics.counter(
        "repro_ingest_edges_total", "canonical undirected edges produced"
    ).inc(int(lo.size))
    if name is None:
        base = os.path.basename(path)
        for extension in (".gz", ".txt", ".csv", ".tsv", ".edges"):
            if base.endswith(extension):
                base = base[: -len(extension)]
        name = base or "edge-list"
    return csr_from_edges(
        n,
        lo,
        hi,
        name=name,
        alpha=alpha,
        params={
            "source_path": str(path),
            "format": "edge-list",
            "lines": lines,
            "self_loops_dropped": loops,
            "duplicates_dropped": duplicates,
        },
    )


# ---------------------------------------------------------------------------
# Memoized loading (what the wire codec and the service call)
# ---------------------------------------------------------------------------

#: path -> ((mtime_ns, size), graph); keyed by absolute path so the service
#: and repeated wire decodes of the same file share one CSRGraph object --
#: which is exactly what lets a Session's identity-keyed compiled-graph
#: cache hit across requests.
_LOAD_CACHE: Dict[str, Tuple[Tuple[int, int], CSRGraph]] = {}


def load_edge_list(path: str, comments: str = "#") -> CSRGraph:
    """Memoized :func:`ingest_edge_list` (re-parsed when the file changes)."""
    resolved = os.path.abspath(path)
    stat = os.stat(resolved)
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _LOAD_CACHE.get(resolved)
    if cached is not None and cached[0] == signature:
        return cached[1]
    graph = ingest_edge_list(resolved, comments=comments)
    # Keep the wire-visible path exactly as the caller gave it, so a spec
    # round-trips byte-identically even through relative paths.
    graph.params["source_path"] = str(path)
    _LOAD_CACHE[resolved] = (signature, graph)
    return graph


# ---------------------------------------------------------------------------
# The named graph registry
# ---------------------------------------------------------------------------

#: name -> graph object (CSRGraph, networkx.Graph, GraphSpec, or anything
#: else RunSpec.graph accepts).
GRAPHS: Dict[str, object] = {}

_NAME_BY_ID: Dict[int, str] = {}


def register_graph(name: str, graph: object, replace: bool = False) -> object:
    """Register ``graph`` under ``name`` for wire-format addressing.

    A registered graph encodes as ``{"kind": "named", "name": ...}`` and is
    served from the one shared object, so every request naming it reuses
    the same compiled state.  Re-registration without ``replace=True`` is
    rejected, mirroring the algorithm/scenario registries.
    """
    if not replace and name in GRAPHS:
        raise ValueError(f"graph {name!r} is already registered")
    previous = GRAPHS.get(name)
    if previous is not None:
        _NAME_BY_ID.pop(id(previous), None)
    GRAPHS[name] = graph
    _NAME_BY_ID[id(graph)] = name
    return graph


def unregister_graph(name: str) -> None:
    graph = GRAPHS.pop(name, None)
    if graph is not None:
        _NAME_BY_ID.pop(id(graph), None)


def get_graph(name: str) -> object:
    """Return the graph registered under ``name`` (``KeyError`` lists all)."""
    return registry_lookup(GRAPHS, name, "graph")


def registered_name(graph: object) -> Optional[str]:
    """The name ``graph`` is registered under, or ``None``."""
    return _NAME_BY_ID.get(id(graph))


def available_graphs() -> Tuple[str, ...]:
    """Registered graph names, sorted."""
    return tuple(sorted(GRAPHS))
