"""Graph substrate for the bounded-arboricity dominating set reproduction.

This subpackage provides everything the algorithms and experiments need about
graphs themselves:

* :mod:`repro.graphs.arboricity` -- exact and approximate arboricity,
  degeneracy, pseudoarboricity and Nash--Williams density computations.
* :mod:`repro.graphs.orientation` -- low out-degree edge orientations
  (exact via flow, degeneracy peeling, and pseudoforest partitions).
* :mod:`repro.graphs.generators` -- generators for the graph families the
  paper targets: trees and forests, planar and outerplanar graphs, unions of
  forests, preferential-attachment "social network" graphs, and more.
* :mod:`repro.graphs.large_scale` -- the same scale families streamed
  straight into CSR arrays (:class:`~repro.graphs.large_scale.CSRGraph`)
  for the kernel execution tier; imported on demand (NumPy-backed), not
  re-exported here.
* :mod:`repro.graphs.weights` -- node weight assignment schemes for the
  weighted minimum dominating set problem.
* :mod:`repro.graphs.validation` -- structural validators used throughout the
  test-suite and the benchmark harness (dominating sets, vertex covers,
  orientations, forest partitions).

All functions operate on :class:`networkx.Graph` objects.  Node weights are
stored in the ``"weight"`` node attribute; unweighted graphs are treated as
having weight one everywhere.
"""

from repro.graphs.arboricity import (
    arboricity,
    arboricity_upper_bound,
    degeneracy,
    maximum_density,
    nash_williams_density,
    pseudoarboricity,
)
from repro.graphs.orientation import (
    degeneracy_orientation,
    minimum_outdegree_orientation,
    orientation_outdegrees,
    pseudoforest_partition,
    spanning_forest_partition,
)
from repro.graphs.generators import (
    GraphInstance,
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    random_bounded_arboricity_graph,
    random_forest,
    random_geometric_graph,
    random_tree,
    standard_test_suite,
    star_of_cliques,
)
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_degree_weights,
    assign_inverse_degree_weights,
    assign_random_weights,
    assign_uniform_weights,
    node_weight,
    total_weight,
)
from repro.graphs.validation import (
    dominating_set_weight,
    is_dominating_set,
    is_forest_partition,
    is_pseudoforest,
    is_valid_orientation,
    is_vertex_cover,
    undominated_nodes,
)

__all__ = [
    # arboricity
    "arboricity",
    "arboricity_upper_bound",
    "degeneracy",
    "maximum_density",
    "nash_williams_density",
    "pseudoarboricity",
    # orientation
    "degeneracy_orientation",
    "minimum_outdegree_orientation",
    "orientation_outdegrees",
    "pseudoforest_partition",
    "spanning_forest_partition",
    # generators
    "GraphInstance",
    "caterpillar_graph",
    "forest_union_graph",
    "grid_graph",
    "outerplanar_graph",
    "planar_triangulation_graph",
    "powerlaw_cluster_graph",
    "preferential_attachment_graph",
    "random_bounded_arboricity_graph",
    "random_forest",
    "random_geometric_graph",
    "random_tree",
    "standard_test_suite",
    "star_of_cliques",
    # weights
    "assign_adversarial_weights",
    "assign_degree_weights",
    "assign_inverse_degree_weights",
    "assign_random_weights",
    "assign_uniform_weights",
    "node_weight",
    "total_weight",
    # validation
    "dominating_set_weight",
    "is_dominating_set",
    "is_forest_partition",
    "is_pseudoforest",
    "is_valid_orientation",
    "is_vertex_cover",
    "undominated_nodes",
]
