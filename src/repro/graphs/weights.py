"""Node weight assignment schemes for the weighted dominating set problem.

Following the paper's preliminaries (Section 2), weights are positive
integers bounded by ``n^c`` for a constant ``c`` -- this is what makes a
packing value transmittable in a CONGEST message of ``O(log n)`` bits.  Every
scheme below assigns the ``"weight"`` node attribute in place and also
returns the mapping, so callers can use either style.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable

import networkx as nx

__all__ = [
    "assign_uniform_weights",
    "assign_random_weights",
    "assign_degree_weights",
    "assign_inverse_degree_weights",
    "assign_adversarial_weights",
    "node_weight",
    "total_weight",
]


def node_weight(graph: nx.Graph, node: Hashable) -> int:
    """Return the weight of ``node`` (1 when no weight has been assigned)."""
    return graph.nodes[node].get("weight", 1)


def total_weight(graph: nx.Graph, nodes: Iterable[Hashable]) -> int:
    """Return the total weight of a node set."""
    return sum(node_weight(graph, node) for node in nodes)


def _store(graph: nx.Graph, weights: Dict[Hashable, int]) -> Dict[Hashable, int]:
    for node, weight in weights.items():
        if weight <= 0:
            raise ValueError("weights must be positive integers")
        graph.nodes[node]["weight"] = int(weight)
    return weights


def assign_uniform_weights(graph: nx.Graph, weight: int = 1) -> Dict[Hashable, int]:
    """Give every node the same positive integer weight (default 1)."""
    return _store(graph, {node: weight for node in graph.nodes()})


def assign_random_weights(
    graph: nx.Graph, low: int = 1, high: int = 100, seed: int = 0
) -> Dict[Hashable, int]:
    """Give every node an independent uniform integer weight in ``[low, high]``."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    rng = random.Random(seed)
    return _store(graph, {node: rng.randint(low, high) for node in graph.nodes()})


def assign_degree_weights(graph: nx.Graph, base: int = 1) -> Dict[Hashable, int]:
    """Weight each node ``base + degree``: high-degree dominators are expensive.

    This stresses the weighted algorithms: the nodes that dominate many
    others are exactly the ones a weight-oblivious algorithm would pick.
    """
    return _store(graph, {node: base + graph.degree(node) for node in graph.nodes()})


def assign_inverse_degree_weights(graph: nx.Graph, scale: int = 100) -> Dict[Hashable, int]:
    """Weight each node roughly ``scale / (1 + degree)``: hubs are cheap."""
    weights = {}
    for node in graph.nodes():
        weights[node] = max(1, scale // (1 + graph.degree(node)))
    return _store(graph, weights)


def assign_adversarial_weights(
    graph: nx.Graph, expensive_fraction: float = 0.3, expensive: int = 1000, seed: int = 0
) -> Dict[Hashable, int]:
    """Make a random fraction of the *internal* (non-leaf) nodes very expensive.

    On trees this punishes the trivial "take all internal nodes" strategy of
    Observation A.1, which only applies to the unweighted problem, and more
    generally rewards algorithms that genuinely account for weights.
    """
    if not 0 <= expensive_fraction <= 1:
        raise ValueError("expensive_fraction must be in [0, 1]")
    rng = random.Random(seed)
    weights = {}
    for node in graph.nodes():
        is_internal = graph.degree(node) > 1
        if is_internal and rng.random() < expensive_fraction:
            weights[node] = expensive
        else:
            weights[node] = 1
    return _store(graph, weights)
