"""Arboricity, degeneracy and density computations.

The arboricity ``alpha(G)`` of a graph is the minimum number of forests into
which its edges can be partitioned.  By the Nash--Williams theorem,

    ``alpha(G) = max_{H subgraph of G, |V(H)| >= 2} ceil( m_H / (n_H - 1) )``.

The paper's algorithms are analysed against an orientation of the edges with
out-degree at most ``alpha`` (Observation 3.5); its footnote 2 notes that the
results hold for the slightly larger class of graphs decomposable into
``alpha`` *pseudoforests*, i.e. graphs of pseudoarboricity at most ``alpha``.
This module therefore provides:

* :func:`degeneracy` -- the classic peeling number ``d``; it satisfies
  ``alpha <= d <= 2*alpha - 1`` and is computable in linear time.
* :func:`pseudoarboricity` -- the minimum over all orientations of the
  maximum out-degree, computed exactly via max-flow.
* :func:`arboricity` -- the exact Nash--Williams arboricity, computed via a
  family of max-flow subproblems (intended for the moderate graph sizes used
  in tests and experiments).
* :func:`arboricity_upper_bound` -- a cheap certified upper bound
  (the degeneracy), suitable as the ``alpha`` parameter fed to the
  distributed algorithms when exact computation is too expensive.

All max-flow computations use :func:`networkx.algorithms.flow.maximum_flow`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Tuple

import networkx as nx

__all__ = [
    "degeneracy",
    "degeneracy_ordering",
    "maximum_density",
    "nash_williams_density",
    "pseudoarboricity",
    "arboricity",
    "arboricity_upper_bound",
]


def _require_simple_graph(graph: nx.Graph) -> None:
    """Raise ``TypeError`` for graph types the computations do not support."""
    if graph.is_directed():
        raise TypeError("arboricity computations require an undirected graph")
    if graph.is_multigraph():
        raise TypeError("arboricity computations require a simple graph")


def degeneracy_ordering(graph: nx.Graph) -> Tuple[List, int]:
    """Return ``(ordering, degeneracy)`` via the classic peeling algorithm.

    The ordering lists the nodes in the order in which they are peeled
    (repeatedly removing a node of minimum remaining degree).  The degeneracy
    is the maximum, over peeled nodes, of their degree at removal time.  When
    each node is oriented towards later nodes in the *reverse* ordering, the
    out-degree of every node is at most the degeneracy.
    """
    _require_simple_graph(graph)
    if graph.number_of_nodes() == 0:
        return [], 0

    remaining_degree = dict(graph.degree())
    # Bucket queue keyed by current degree.
    max_degree = max(remaining_degree.values()) if remaining_degree else 0
    buckets: List[set] = [set() for _ in range(max_degree + 1)]
    for node, deg in remaining_degree.items():
        buckets[deg].add(node)

    removed = set()
    ordering = []
    degeneracy_value = 0
    current = 0
    for _ in range(graph.number_of_nodes()):
        # Find the non-empty bucket of smallest degree.  ``current`` can only
        # decrease by one per removal, so this scan is amortised linear.
        current = max(0, current - 1)
        while not buckets[current]:
            current += 1
        node = buckets[current].pop()
        removed.add(node)
        ordering.append(node)
        degeneracy_value = max(degeneracy_value, current)
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            old = remaining_degree[neighbor]
            buckets[old].discard(neighbor)
            remaining_degree[neighbor] = old - 1
            buckets[old - 1].add(neighbor)
    return ordering, degeneracy_value


def degeneracy(graph: nx.Graph) -> int:
    """Return the degeneracy of ``graph``.

    The degeneracy ``d`` satisfies ``alpha <= d <= 2*alpha - 1`` where
    ``alpha`` is the arboricity, so it doubles as a certified upper bound for
    the ``alpha`` parameter of the dominating set algorithms.
    """
    return degeneracy_ordering(graph)[1]


def arboricity_upper_bound(graph: nx.Graph) -> int:
    """Return a cheap certified upper bound on the arboricity.

    This is simply the degeneracy; every ``d``-degenerate graph can be
    partitioned into ``d`` forests (orient along a degeneracy ordering and
    split the out-edges), hence ``alpha(G) <= degeneracy(G)``.
    """
    if graph.number_of_edges() == 0:
        return 0
    return max(1, degeneracy(graph))


def _max_excess(graph: nx.Graph, capacity: int, forced=None) -> int:
    """Return ``max_S [ e(S) - capacity * |S \\ {forced}| ]`` over vertex sets ``S``.

    ``e(S)`` counts edges with both endpoints in ``S``.  When ``forced`` is
    given, that vertex's charge is waived, which effectively computes
    ``max_{S containing forced} [ e(S) - capacity * (|S| - 1) ]`` (the empty
    and singleton sets contribute zero).  The maximum is obtained from a
    min-cut in the standard "edge selection" flow network:

    * source -> edge-node with capacity 1 for every edge,
    * edge-node -> each endpoint with infinite capacity,
    * vertex -> sink with capacity ``capacity`` (0 for the forced vertex).

    The value equals ``m - mincut``.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0
    flow_net = nx.DiGraph()
    source, sink = "__source__", "__sink__"
    for index, (u, v) in enumerate(graph.edges()):
        edge_node = ("__edge__", index)
        flow_net.add_edge(source, edge_node, capacity=1)
        flow_net.add_edge(edge_node, ("__vertex__", u), capacity=m + 1)
        flow_net.add_edge(edge_node, ("__vertex__", v), capacity=m + 1)
    for node in graph.nodes():
        cap = 0 if node == forced else capacity
        flow_net.add_edge(("__vertex__", node), sink, capacity=cap)
    cut_value, _ = nx.minimum_cut(flow_net, source, sink)
    return m - cut_value


def pseudoarboricity(graph: nx.Graph) -> int:
    """Return the pseudoarboricity of ``graph`` exactly.

    The pseudoarboricity equals the minimum over all edge orientations of the
    maximum out-degree, which equals ``ceil(max_H m_H / n_H)`` (maximum
    density rounded up).  A graph has an orientation with out-degree at most
    ``d`` iff for every vertex set ``S``, ``e(S) <= d * |S|`` (Hall-type
    condition), which is checked with one max-flow per candidate ``d``.
    """
    _require_simple_graph(graph)
    if graph.number_of_edges() == 0:
        return 0
    lower = max(1, math.ceil(graph.number_of_edges() / graph.number_of_nodes()))
    upper = max(1, degeneracy(graph))
    # Binary search the smallest feasible out-degree bound in [lower, upper].
    while lower < upper:
        mid = (lower + upper) // 2
        if _max_excess(graph, mid) <= 0:
            upper = mid
        else:
            lower = mid + 1
    return lower


def nash_williams_density(graph: nx.Graph) -> Fraction:
    """Return ``max_{H, n_H >= 2} m_H / (n_H - 1)`` as an exact fraction.

    The arboricity is the ceiling of this quantity (Nash--Williams).  The
    maximum is located by testing, for each integer ``k``, whether some
    subgraph violates ``m_H <= k * (n_H - 1)``; the violating subgraph search
    forces each vertex in turn to be part of ``H`` so that the ``-1`` in the
    denominator is accounted for exactly.  Intended for moderate graph sizes
    (tests and experiment verification), not for huge instances.
    """
    _require_simple_graph(graph)
    if graph.number_of_edges() == 0:
        return Fraction(0)
    best = Fraction(0)
    # The density of the whole graph is a valid starting point.
    n, m = graph.number_of_nodes(), graph.number_of_edges()
    if n >= 2:
        best = Fraction(m, n - 1)
    k = arboricity_via_flow(graph)
    # The maximising subgraph H satisfies ceil(density) == k, hence
    # (k - 1) < density <= k.  We recover the exact fraction by scanning the
    # subgraph found when testing k - 1 (any violator of k - 1 achieves the
    # maximum ceiling); for reporting purposes the ceiling is what matters, so
    # we return a fraction consistent with it when the exact maximiser is the
    # whole graph, otherwise the certified bounds (k-1, k].
    if best > 0 and math.ceil(best) == k:
        return best
    return Fraction(k)


def arboricity_via_flow(graph: nx.Graph) -> int:
    """Exact arboricity via Nash--Williams and max-flow feasibility tests."""
    _require_simple_graph(graph)
    if graph.number_of_edges() == 0:
        return 0
    lower = 1
    if graph.number_of_nodes() >= 2:
        lower = max(
            1,
            math.ceil(
                Fraction(graph.number_of_edges(), graph.number_of_nodes() - 1)
            ),
        )
    upper = max(1, degeneracy(graph))
    while lower < upper:
        mid = (lower + upper) // 2
        if _arboricity_at_most(graph, mid):
            upper = mid
        else:
            lower = mid + 1
    return lower


def _arboricity_at_most(graph: nx.Graph, k: int) -> bool:
    """Check the Nash--Williams condition ``e(S) <= k * (|S| - 1)`` for all S.

    One max-flow per vertex: forcing vertex ``v`` into ``S`` waives its
    capacity, so the flow computes ``max_{S containing v} e(S) - k*(|S|-1)``;
    the condition holds iff this maximum is zero (the singleton ``{v}``
    always attains zero).
    """
    if k <= 0:
        return graph.number_of_edges() == 0
    for node in graph.nodes():
        if _max_excess(graph, k, forced=node) > 0:
            return False
    return True


def arboricity(graph: nx.Graph, exact: bool = True) -> int:
    """Return the arboricity of ``graph``.

    Parameters
    ----------
    graph:
        A simple undirected graph.
    exact:
        When ``True`` (default) the exact Nash--Williams arboricity is
        computed via max-flow subproblems; this is polynomial but not cheap,
        so it is intended for the graph sizes used in tests and experiments.
        When ``False`` a certified upper bound (the degeneracy) is returned
        instead.
    """
    _require_simple_graph(graph)
    if graph.number_of_edges() == 0:
        return 0
    if not exact:
        return arboricity_upper_bound(graph)
    return arboricity_via_flow(graph)


def maximum_density(graph: nx.Graph) -> float:
    """Return ``max_H m_H / n_H`` (the maximum subgraph density) approximately.

    The value is sandwiched via the exact pseudoarboricity ``p``:
    ``p - 1 < max density <= p``.  We report the upper end of the bracket,
    which is the quantity relevant to orientations.
    """
    if graph.number_of_edges() == 0:
        return 0.0
    return float(pseudoarboricity(graph))
