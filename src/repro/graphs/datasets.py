"""Pinned real-graph datasets: download, verify, ingest.

The ingestion layer (:mod:`repro.graphs.ingest`) parses any SNAP-style
edge list it is handed; this module is the curated front door -- a small
registry of *pinned* public datasets with URLs, expected scale, and
sha256 verification, driven by ``python -m repro ingest --download NAME``.

Verification model
------------------
Every downloaded payload is hashed.  A :class:`DatasetSpec` carrying a
pinned ``sha256`` is enforced strictly: a mismatch deletes nothing but
refuses to ingest.  The shipped SNAP entries carry ``sha256=None``
because this repository is built in an offline environment where the
upstream bytes cannot be fetched to take their digest; for those, the
digest is recorded in a ``<file>.sha256`` sidecar on first download and
verified against the sidecar on every later call (trust-on-first-use).
Pin a digest by filling ``DATASETS[name].sha256`` -- the sidecar then
becomes redundant but is still cross-checked.

Downloads land under ``--data-dir`` (default ``data/snap``) and are
cached: a file that already exists and verifies is never re-fetched.
``fetcher`` is injectable -- ``fetch(url) -> bytes`` -- which is what
lets the test-suite exercise download, verification, mismatch, and
caching entirely offline against a local fixture.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graphs.ingest import ingest_edge_list
from repro.graphs.large_scale import CSRGraph
from repro.run.algorithms import registry_lookup

__all__ = [
    "DATASETS",
    "DEFAULT_DATA_DIR",
    "DatasetSpec",
    "DatasetVerificationError",
    "available_datasets",
    "dataset_path",
    "download_dataset",
    "load_dataset",
    "sha256_file",
]

#: Where ``repro ingest --download`` puts payloads unless told otherwise.
DEFAULT_DATA_DIR = os.path.join("data", "snap")

_CHUNK = 1 << 20


class DatasetVerificationError(RuntimeError):
    """A downloaded payload's sha256 does not match its pin/sidecar."""


@dataclass(frozen=True)
class DatasetSpec:
    """One pinned downloadable dataset.

    ``sha256`` is the strict pin (hex digest of the compressed payload as
    served); ``None`` falls back to the trust-on-first-use sidecar.  The
    ``nodes``/``edges`` figures are the upstream-documented scale, used
    for listings and post-ingest sanity messages, not enforced (SNAP
    counts include duplicate/self-loop listings the ingester drops).
    """

    name: str
    url: str
    filename: str
    description: str
    nodes: int
    edges: int
    sha256: Optional[str] = None


#: The curated registry.  Three SNAP classics spanning three orders of
#: magnitude, all small enough to download in CI yet real enough to have
#: sparse ids, duplicate listings, and comment headers.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="ca-grqc",
            url="https://snap.stanford.edu/data/ca-GrQc.txt.gz",
            filename="ca-GrQc.txt.gz",
            description="arXiv GR-QC collaboration network",
            nodes=5242,
            edges=14496,
        ),
        DatasetSpec(
            name="ego-facebook",
            url="https://snap.stanford.edu/data/facebook_combined.txt.gz",
            filename="facebook_combined.txt.gz",
            description="Facebook ego-network union (anonymised)",
            nodes=4039,
            edges=88234,
        ),
        DatasetSpec(
            name="roadnet-pa",
            url="https://snap.stanford.edu/data/roadNet-PA.txt.gz",
            filename="roadNet-PA.txt.gz",
            description="Pennsylvania road network (~3e6 edges)",
            nodes=1088092,
            edges=1541898,
        ),
    )
}


def available_datasets() -> Tuple[str, ...]:
    """Registered dataset names, sorted."""
    return tuple(sorted(DATASETS))


def _resolve(name: str) -> DatasetSpec:
    return registry_lookup(DATASETS, name, "dataset")


def dataset_path(name: str, data_dir: str = DEFAULT_DATA_DIR) -> str:
    """Where ``name``'s payload lives (or would live) under ``data_dir``."""
    return os.path.join(data_dir, _resolve(name).filename)


def sha256_file(path: str) -> str:
    """Streaming sha256 of a file (constant memory, 1 MiB chunks)."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        while True:
            chunk = stream.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _default_fetcher(url: str) -> bytes:
    import urllib.request

    with urllib.request.urlopen(url, timeout=120) as response:
        return response.read()


def _verify(spec: DatasetSpec, path: str) -> str:
    """Check ``path`` against the pin (or sidecar); return its digest.

    Strict pin first; with no pin, the sidecar written at download time is
    the reference.  A file with neither (pre-existing, hand-copied) gains a
    sidecar now -- the same trust-on-first-use moment as a download.
    """
    digest = sha256_file(path)
    if spec.sha256 is not None:
        if digest != spec.sha256:
            raise DatasetVerificationError(
                f"dataset {spec.name!r}: sha256 mismatch for {path}: "
                f"expected {spec.sha256}, got {digest}"
            )
        return digest
    sidecar = path + ".sha256"
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="ascii") as stream:
            expected = stream.read().split()[0]
        if digest != expected:
            raise DatasetVerificationError(
                f"dataset {spec.name!r}: sha256 mismatch for {path}: "
                f"first-download sidecar recorded {expected}, got {digest}"
            )
    else:
        with open(sidecar, "w", encoding="ascii") as stream:
            stream.write(f"{digest}  {spec.filename}\n")
    return digest


def download_dataset(
    name: str,
    data_dir: str = DEFAULT_DATA_DIR,
    fetcher: Optional[Callable[[str], bytes]] = None,
    force: bool = False,
) -> str:
    """Fetch (if absent), verify, and return the local payload path.

    An existing verified file short-circuits the fetch entirely, so the
    call is cheap to repeat; ``force=True`` re-downloads regardless.  The
    payload is written atomically (``.part`` then rename) so an
    interrupted download never masquerades as a cached dataset.
    """
    spec = _resolve(name)
    path = os.path.join(data_dir, spec.filename)
    if not force and os.path.exists(path):
        _verify(spec, path)
        return path
    fetch = fetcher if fetcher is not None else _default_fetcher
    payload = fetch(spec.url)
    os.makedirs(data_dir, exist_ok=True)
    partial = path + ".part"
    with open(partial, "wb") as stream:
        stream.write(payload)
    os.replace(partial, path)
    # A forced re-download re-takes the trust-on-first-use digest.
    sidecar = path + ".sha256"
    if force and spec.sha256 is None and os.path.exists(sidecar):
        os.remove(sidecar)
    try:
        _verify(spec, path)
    except DatasetVerificationError:
        # Never leave an unverifiable payload where the cache check would
        # accept its existence next call.
        os.remove(path)
        raise
    return path


def load_dataset(
    name: str,
    data_dir: str = DEFAULT_DATA_DIR,
    fetcher: Optional[Callable[[str], bytes]] = None,
) -> CSRGraph:
    """Download-if-needed + verify + ingest, in one call."""
    path = download_dataset(name, data_dir=data_dir, fetcher=fetcher)
    return ingest_edge_list(path, name=name)
