"""Built-in scenarios: the paper's E1-E11 experiments, the example workloads,
and extra graph families that widen coverage beyond the paper's tables.

Everything here is *declarative*: a scenario is graphs x solvers plus an OPT
policy, registered once under a stable name.  The benchmark files
(``benchmarks/test_e*.py``) look their workloads up here instead of
re-declaring them, and ``python -m repro`` exposes the same registry from the
command line.

Naming convention: ``<experiment-or-group>/<short-name>``; tags group
scenarios for bulk selection (``--tag smoke``, ``--tag families``, ...).

Seeds: scenarios reproducing a specific benchmark table pin their graph (and
weight) seeds to :data:`BENCH_SEED` -- the sweep cell's seed then only drives
the solvers, matching the original benchmark's "fixed workload, averaged
solver randomness" semantics.  Scenarios exploring a family leave seeds
unpinned so every sweep cell sees a fresh instance.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults import FAULT_MODELS, FaultSpec
from repro.graphs.generators import STANDARD_SCALES
from repro.orchestration.registry import (
    GraphSpec,
    ScenarioSpec,
    SolverSpec,
    WeightSpec,
    register_scenario,
)

__all__ = ["BENCH_SEED", "standard_suite_specs", "register_builtin_scenarios"]

#: The fixed seed the benchmark harness has always used (the paper's year).
BENCH_SEED = 2022


def standard_suite_specs(scale: str = "tiny", weights: Optional[WeightSpec] = None) -> List[GraphSpec]:
    """GraphSpecs mirroring :func:`repro.graphs.generators.standard_test_suite`."""
    size = STANDARD_SCALES[scale]
    rows, cols = size["grid"]
    suffix = "" if weights is None else f"[{weights.scheme}]"
    return [
        GraphSpec("random-tree", {"n": size["tree"]}, name=f"random-tree{suffix}",
                  alpha=1, weights=weights),
        GraphSpec("caterpillar", {"spine": max(4, size["tree"] // 4), "legs_per_node": 3},
                  name=f"caterpillar{suffix}", alpha=1, weights=weights),
        GraphSpec("grid", {"rows": rows, "cols": cols}, name=f"grid{suffix}",
                  alpha=2, weights=weights),
        GraphSpec("outerplanar", {"n": size["outer"]}, name=f"outerplanar{suffix}",
                  alpha=2, weights=weights),
        GraphSpec("planar-triangulation", {"n": size["planar"]},
                  name=f"planar-triangulation{suffix}", alpha=3, weights=weights),
        GraphSpec("forest-union", {"n": size["forest_union"], "alpha": 3},
                  name=f"forest-union-alpha3{suffix}", alpha=3, weights=weights),
        GraphSpec("forest-union", {"n": size["forest_union"], "alpha": 5},
                  name=f"forest-union-alpha5{suffix}", alpha=5, weights=weights,
                  seed_offset=1),
        GraphSpec("preferential-attachment", {"n": size["ba"], "attachment": 4},
                  name=f"preferential-attachment{suffix}", alpha=4, weights=weights),
    ]


def _experiment_scenarios() -> List[ScenarioSpec]:
    scenarios = [
        ScenarioSpec(
            name="E1/unweighted-eps",
            experiment="E1",
            description="Theorem 3.1: unweighted (2a+1)(1+eps) approximation, eps sweep "
                        "over the standard families.",
            graphs=standard_suite_specs("tiny"),
            solvers=[
                SolverSpec("deterministic", label=f"eps={eps}", params={"epsilon": eps})
                for eps in (0.1, 0.3, 0.5)
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E2/weighted-schemes",
            experiment="E2",
            description="Theorem 1.1: weighted approximation across four weight schemes.",
            graphs=[
                spec
                for scheme in (
                    WeightSpec("random", {"low": 1, "high": 100}),
                    WeightSpec("degree"),
                    WeightSpec("inverse-degree", {"scale": 100}),
                    WeightSpec("adversarial", {"expensive_fraction": 0.4, "expensive": 500}),
                )
                for spec in standard_suite_specs("tiny", weights=scheme)
            ],
            solvers=[SolverSpec("weighted", label="theorem-1.1", params={"epsilon": 0.2})],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E3/randomized-t",
            experiment="E3",
            description="Theorem 1.2: randomized alpha + O(alpha/t) approximation, t sweep; "
                        "graphs pinned to the benchmark seed, solver seeded per cell.",
            graphs=[
                GraphSpec("forest-union", {"n": 250, "alpha": 5}, name="forest-union-a5",
                          alpha=5, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 50}, seed=BENCH_SEED)),
                GraphSpec("preferential-attachment", {"n": 350, "attachment": 4},
                          name="pref-attach-a4", alpha=4, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 50}, seed=BENCH_SEED)),
            ],
            solvers=[
                SolverSpec("randomized", label=f"t={t}", params={"t": t}) for t in (1, 2, 4)
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E4/general-k",
            experiment="E4",
            description="Theorem 1.3: O(k * Delta^(2/k)) approximation on general graphs, "
                        "k sweep (the KMW LP baseline stays in the benchmark file).",
            graphs=[
                GraphSpec("gnp", {"n": 150, "p": 0.08}, name="gnp(150,0.08)", seed=BENCH_SEED),
                GraphSpec("star-of-cliques", {"clique_count": 12, "clique_size": 6},
                          name="star-of-cliques(12x6)"),
            ],
            solvers=[
                SolverSpec("general", label=f"k={k}", params={"k": k}) for k in (1, 2, 3)
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E5/lower-bound",
            experiment="E5",
            description="Theorem 1.4 / Figure 1: run Theorem 1.1 on the lower-bound graphs H "
                        "(structural certificates and the DS->MFVC reduction stay in the "
                        "benchmark file and examples/lower_bound_construction.py).",
            graphs=[
                GraphSpec("kmw-lower-bound", {"side": side, "degree": degree},
                          name=f"kmw-H-{side}x{degree}", alpha=2,
                          seed=BENCH_SEED, seed_offset=side)
                for side, degree in ((6, 3), (10, 4), (14, 5))
            ],
            solvers=[SolverSpec("deterministic", label="theorem-1.1(eps=0.3)",
                                params={"epsilon": 0.3})],
            opt_mode="degree",
            tags=("paper", "benchmark", "lowerbound", "example"),
        ),
        ScenarioSpec(
            name="E6/forests",
            experiment="E6",
            description="Observation A.1: single-round forest 3-approximation vs Theorem 1.1.",
            graphs=[
                GraphSpec("random-tree", {"n": 200}, name="random-tree-200", alpha=1),
                GraphSpec("random-tree", {"n": 800}, name="random-tree-800", alpha=1,
                          seed_offset=1),
                GraphSpec("caterpillar", {"spine": 60, "legs_per_node": 3},
                          name="caterpillar-60x3", alpha=1),
                GraphSpec("random-forest", {"n": 300, "tree_count": 6},
                          name="random-forest-300", alpha=1, seed_offset=2),
            ],
            solvers=[
                SolverSpec("forest", label="forest-trivial"),
                SolverSpec("deterministic", label="theorem-1.1", params={"epsilon": 0.2}),
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E7/unknown-params",
            experiment="E7",
            description="Remarks 4.4/4.5: unknown Delta and unknown alpha next to the "
                        "full-knowledge algorithm on the same weighted instances.",
            graphs=[
                GraphSpec("forest-union", {"n": 150, "alpha": 3}, name="forest-union-a3-150",
                          alpha=3, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 60}, seed=BENCH_SEED)),
                GraphSpec("preferential-attachment", {"n": 200, "attachment": 4},
                          name="pref-attach-a4-200", alpha=4, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 60}, seed=BENCH_SEED)),
            ],
            solvers=[
                SolverSpec("weighted", label="full knowledge (Thm 1.1)",
                           params={"epsilon": 0.2}),
                SolverSpec("unknown-degree", label="unknown Delta (Rem 4.4)",
                           params={"epsilon": 0.2}),
                SolverSpec("unknown-arboricity", label="unknown alpha (Rem 4.5)",
                           params={"epsilon": 0.25}),
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E8/comparison",
            experiment="E8",
            description="Sections 1.1-1.2: the paper's algorithms vs the distributed "
                        "baselines on a high-Delta, low-alpha social graph "
                        "(centralized baselines stay in the benchmark file).",
            graphs=[
                GraphSpec("preferential-attachment", {"n": 500, "attachment": 4},
                          name="pref-attach-500", alpha=4, seed=BENCH_SEED),
            ],
            solvers=[
                SolverSpec("deterministic", label="this paper deterministic (Thm 1.1)",
                           params={"epsilon": 0.2}),
                SolverSpec("randomized", label="this paper randomized (Thm 1.2)",
                           params={"t": 2}),
                SolverSpec("lw-deterministic", label="LW'10-style deterministic O(a logD)"),
                SolverSpec("lw-randomized", label="LW'10-style randomized O(a^2)"),
                SolverSpec("msw-combinatorial",
                           label="combinatorial alpha-baseline (MSW stand-in)"),
            ],
            tags=("paper", "benchmark"),
        ),
        ScenarioSpec(
            name="E9/scaling",
            experiment="E9",
            description="Round-complexity scaling: flat in n (grids at fixed Delta) and "
                        "logarithmic in Delta (caterpillars with growing legs).",
            graphs=[
                GraphSpec("grid", {"rows": r, "cols": c}, name=f"grid-{r}x{c}", alpha=2)
                for r, c in ((5, 6), (12, 12), (25, 25), (40, 40))
            ] + [
                GraphSpec("caterpillar", {"spine": 12, "legs_per_node": legs},
                          name=f"caterpillar-12x{legs}", alpha=1)
                for legs in (2, 8, 32, 128)
            ],
            solvers=[SolverSpec("deterministic", label="eps=0.2", params={"epsilon": 0.2})],
            opt_mode="degree",
            tags=("paper", "benchmark", "scale"),
        ),
        ScenarioSpec(
            name="E9/eps-sweep",
            experiment="E9",
            description="Round-complexity scaling: linear in 1/eps on a fixed caterpillar.",
            graphs=[
                GraphSpec("caterpillar", {"spine": 12, "legs_per_node": 32},
                          name="caterpillar-12x32", alpha=1),
            ],
            solvers=[
                SolverSpec("deterministic", label=f"eps={eps}", params={"epsilon": eps})
                for eps in (0.4, 0.2, 0.1, 0.05)
            ],
            opt_mode="degree",
            tags=("paper", "benchmark", "scale"),
        ),
        ScenarioSpec(
            name="E10/lambda-ablation",
            experiment="E10",
            description="Ablation of the Theorem 1.1 lambda threshold: the paper's choice "
                        "vs /10 and /100 (the no-freeze ablation stays in the benchmark).",
            graphs=[
                GraphSpec("forest-union", {"n": 180, "alpha": 3}, name="forest-union-180",
                          alpha=3, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 50}, seed=BENCH_SEED)),
            ],
            solvers=[
                SolverSpec("weighted-lambda-scaled", label=label,
                           params={"epsilon": 0.2, "lambda_scale": scale})
                for label, scale in (
                    ("paper lambda", 1.0),
                    ("lambda / 10", 0.1),
                    ("lambda / 100", 0.01),
                )
            ],
            tags=("paper", "benchmark", "ablation"),
        ),
        ScenarioSpec(
            name="E11/engine",
            experiment="E11",
            description="The engine-speedup workload (timing itself lives in "
                        "benchmarks/test_e11_engine_speedup.py; as a scenario this runs the "
                        "same instances under whichever engine the sweep selects).",
            graphs=[
                GraphSpec("preferential-attachment", {"n": 800, "attachment": 6},
                          name="ba-800-deg6", alpha=6, seed=BENCH_SEED),
                GraphSpec("grid", {"rows": 40, "cols": 40}, name="grid-40x40", alpha=2),
                GraphSpec("caterpillar", {"spine": 12, "legs_per_node": 128},
                          name="caterpillar-12x128", alpha=1),
                GraphSpec("preferential-attachment", {"n": 2500, "attachment": 32},
                          name="ba-2500-deg32", alpha=32, seed=BENCH_SEED,
                          weights=WeightSpec("random", {"low": 1, "high": 30}, seed=11)),
            ],
            solvers=[SolverSpec("deterministic", label="theorem-1.1", params={"epsilon": 0.2})],
            opt_mode="degree",
            tags=("paper", "benchmark", "engine", "heavy"),
        ),
    ]
    return scenarios


def _example_scenarios() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="example/quickstart",
            experiment="EX-quickstart",
            description="The quickstart workload: weighted forest union, deterministic vs "
                        "randomized (examples/quickstart.py).",
            graphs=[
                GraphSpec("forest-union", {"n": 150, "alpha": 3}, name="forest-union-150",
                          alpha=3, seed=42,
                          weights=WeightSpec("random", {"low": 1, "high": 50}, seed=7)),
            ],
            solvers=[
                SolverSpec("weighted", label="deterministic (Thm 1.1)", params={"epsilon": 0.2}),
                SolverSpec("randomized", label="randomized (Thm 1.2)", params={"t": 2}),
            ],
            tags=("example",),
        ),
        ScenarioSpec(
            name="example/planar-city",
            experiment="EX-city",
            description="Facility placement on planar road networks with degree-based "
                        "construction costs (examples/planar_city_network.py).",
            graphs=[
                GraphSpec("planar-triangulation", {"n": n}, name=f"city-{n}", alpha=3,
                          seed=seed, weights=WeightSpec("degree", {"base": 5}))
                for n, seed in ((120, 1), (250, 2), (500, 3), (900, 4))
            ],
            solvers=[
                SolverSpec("weighted", label="facility-placement", params={"epsilon": 0.25}),
            ],
            tags=("example",),
        ),
        ScenarioSpec(
            name="example/social-influence",
            experiment="EX-social",
            description="Influence seeding on a preferential-attachment graph against the "
                        "distributed baselines (examples/social_network_influence.py).",
            graphs=[
                GraphSpec("preferential-attachment", {"n": 600, "attachment": 4},
                          name="social-600", alpha=4, seed=3),
            ],
            solvers=[
                SolverSpec("deterministic", label="this paper, deterministic (Thm 1.1)",
                           params={"epsilon": 0.2}),
                SolverSpec("randomized", label="this paper, randomized (Thm 1.2)",
                           params={"t": 2}, seed_offset=1),
                SolverSpec("lw-deterministic", label="Lenzen-Wattenhofer style, deterministic"),
                SolverSpec("lw-randomized", label="Lenzen-Wattenhofer style, randomized",
                           seed_offset=2),
                SolverSpec("msw-combinatorial", label="combinatorial alpha-baseline"),
            ],
            tags=("example",),
        ),
        ScenarioSpec(
            name="example/adhoc-wireless",
            experiment="EX-wireless",
            description="Cluster-head election on random-geometric deployment graphs with "
                        "battery costs (examples/adhoc_wireless_clustering.py).",
            graphs=[
                GraphSpec("random-geometric", {"n": 150, "radius": 0.14},
                          name="deployment-150", seed=1,
                          weights=WeightSpec("degree", {"base": 3})),
                GraphSpec("random-geometric", {"n": 300, "radius": 0.10},
                          name="deployment-300", seed=2,
                          weights=WeightSpec("degree", {"base": 3})),
            ],
            solvers=[
                SolverSpec("weighted", label="cluster-heads deterministic",
                           params={"epsilon": 0.25}),
                SolverSpec("randomized", label="cluster-heads randomized", params={"t": 2}),
            ],
            tags=("example",),
        ),
    ]


def _family_scenarios() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="families/powerlaw-cluster",
            experiment="FAM-plc",
            description="Holme-Kim power-law cluster graphs: heavy-tailed degrees plus "
                        "community structure at certified arboricity <= attachment.",
            graphs=[
                GraphSpec("powerlaw-cluster", {"n": 400, "attachment": 4, "triangle_p": 0.3},
                          name="plc-400-a4", alpha=4),
            ],
            solvers=[
                SolverSpec("deterministic", label="deterministic", params={"epsilon": 0.2}),
                SolverSpec("randomized", label="randomized", params={"t": 2}),
            ],
            tags=("families",),
        ),
        ScenarioSpec(
            name="families/random-geometric",
            experiment="FAM-rgg",
            description="Random geometric (unit-disk-like) graphs; alpha certified at build "
                        "time from the degeneracy.",
            graphs=[
                GraphSpec("random-geometric", {"n": 350, "radius": 0.09}, name="rgg-350"),
            ],
            solvers=[
                SolverSpec("deterministic", label="deterministic", params={"epsilon": 0.2}),
                SolverSpec("randomized", label="randomized", params={"t": 2}),
            ],
            tags=("families",),
        ),
        ScenarioSpec(
            name="families/grid-scale",
            experiment="FAM-grid",
            description="Grids with and without diagonals at benchmark scale; the free "
                        "counting OPT bound keeps the cells cheap.",
            graphs=[
                GraphSpec("grid", {"rows": 40, "cols": 40}, name="grid-40x40", alpha=2),
                GraphSpec("grid", {"rows": 30, "cols": 30, "diagonal": True},
                          name="grid-diag-30x30", alpha=3),
            ],
            solvers=[
                SolverSpec("deterministic", label="deterministic", params={"epsilon": 0.2}),
            ],
            opt_mode="degree",
            tags=("families", "scale"),
        ),
    ]


#: The graph each fault sweep runs on, per family knob.
_FAULT_BA = GraphSpec(
    "preferential-attachment", {"n": 250, "attachment": 4}, name="ba-250", alpha=4
)
_FAULT_GRID = GraphSpec("grid", {"rows": 15, "cols": 15}, name="grid-15x15", alpha=2)
_FAULT_RGG = GraphSpec(
    "random-geometric", {"n": 200, "radius": 0.12}, name="rgg-200", alpha=8
)

_FAULT_SOLVERS = [
    SolverSpec("deterministic", label="deterministic", params={"epsilon": 0.2}),
    SolverSpec("randomized", label="randomized", params={"t": 2}),
]


def _fault_scenario(
    name: str,
    description: str,
    graph: GraphSpec,
    faults: FaultSpec,
    extra_tags: tuple = (),
) -> ScenarioSpec:
    """One cell of the algorithm x family x fault-model grid.

    Fault scenarios use the free counting OPT bound: under an adversary the
    interesting measurements are degradation (non-dominating outputs,
    inflated weight/rounds, drop/delay volume), not tight approximation
    ratios, and the cheap bound keeps the three-dimensional grid tractable.
    """
    return ScenarioSpec(
        name=name,
        experiment="FAULTS",
        description=description,
        graphs=[graph],
        solvers=list(_FAULT_SOLVERS),
        opt_mode="degree",
        faults=faults,
        tags=("faults",) + extra_tags,
    )


def _fault_scenarios() -> List[ScenarioSpec]:
    """The built-in adversarial grid: crash sweeps, lossy-link sweeps, churn.

    Every scenario leaves the fault seed unpinned, so each sweep cell faces
    a fresh adversary drawn from the same regime; the schedule is still
    deterministic in the cell seed (and identical across engines and
    processes -- the ``--smoke`` parity gate runs one of these cells under
    both engines).
    """
    scenarios = [
        _fault_scenario(
            f"faults/{model}-ba",
            f"Crash-stop sweep on preferential attachment: the {model!r} regime "
            "crashes a fraction of the nodes at round 2, never to recover.",
            _FAULT_BA,
            FAULT_MODELS[model],
        )
        for model in ("crash5", "crash15", "crash30")
    ]
    scenarios += [
        _fault_scenario(
            f"faults/{model}-grid",
            f"Lossy-link sweep on the 15x15 grid: the {model!r} regime drops "
            "each message independently per link.",
            _FAULT_GRID,
            FAULT_MODELS[model],
        )
        for model in ("lossy2", "lossy10", "lossy25")
    ]
    scenarios += [
        _fault_scenario(
            "faults/lossy10-ba",
            "10% per-link message loss on the preferential-attachment graph "
            "(heavy-tailed degrees meet omission faults).",
            _FAULT_BA,
            FAULT_MODELS["lossy10"],
        ),
        _fault_scenario(
            "faults/crash-recover-rgg",
            "Crash-recover on the geometric deployment graph: 20% of nodes are "
            "down for rounds 2-5, then resume with their state intact.",
            _FAULT_RGG,
            FAULT_MODELS["crash-recover"],
        ),
        _fault_scenario(
            "faults/latency-rgg",
            "Straggler links on the geometric deployment graph: every message "
            "is delayed by 0-2 extra whole rounds, uniformly per link draw.",
            _FAULT_RGG,
            FAULT_MODELS["latency2"],
        ),
        _fault_scenario(
            "faults/churn-ba",
            "Topology churn on preferential attachment: 15% of the edges are "
            "down in any 4-round window, rotating every epoch.",
            _FAULT_BA,
            FAULT_MODELS["churn"],
        ),
        _fault_scenario(
            "faults/churn-grid",
            "Topology churn on the 15x15 grid (low edge redundancy makes the "
            "grid the family most sensitive to missing links).",
            _FAULT_GRID,
            FAULT_MODELS["churn"],
        ),
        _fault_scenario(
            "faults/churn-rgg",
            "Topology churn on the geometric deployment graph (radio links "
            "flapping every 4 rounds).",
            _FAULT_RGG,
            FAULT_MODELS["churn"],
        ),
        _fault_scenario(
            "faults/chaos-ba",
            "Everything at once on preferential attachment: crash-recover "
            "windows, 5% omission, 0-1 round latency, and 10% edge churn.",
            _FAULT_BA,
            FAULT_MODELS["chaos"],
        ),
    ]
    return scenarios


def _smoke_scenarios() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="smoke/forest",
            experiment="SMOKE",
            description="CI smoke cell: a tiny tree under the deterministic algorithm and "
                        "the single-round forest rule, exact OPT.",
            graphs=[GraphSpec("random-tree", {"n": 36}, name="tree-36", alpha=1)],
            solvers=[
                SolverSpec("deterministic", label="eps=0.3", params={"epsilon": 0.3}),
                SolverSpec("forest", label="forest-trivial"),
            ],
            tags=("smoke",),
        ),
        ScenarioSpec(
            name="smoke/mixed",
            experiment="SMOKE",
            description="CI smoke cell: a small grid and a small preferential-attachment "
                        "graph under deterministic and randomized solvers.",
            graphs=[
                GraphSpec("grid", {"rows": 5, "cols": 6}, name="grid-5x6", alpha=2),
                GraphSpec("preferential-attachment", {"n": 40, "attachment": 3},
                          name="ba-40", alpha=3),
            ],
            solvers=[
                SolverSpec("deterministic", label="eps=0.3", params={"epsilon": 0.3}),
                SolverSpec("randomized", label="t=1", params={"t": 1}),
            ],
            tags=("smoke",),
        ),
        ScenarioSpec(
            name="smoke/faults",
            experiment="SMOKE",
            description="CI smoke cell: a small preferential-attachment graph under a "
                        "mixed fault plan (crash-recover + lossy links + latency); the "
                        "--smoke gate byte-compares the record stream across engines, "
                        "which pins down the vectorized fault path against the "
                        "per-delivery oracle path.",
            graphs=[
                GraphSpec("preferential-attachment", {"n": 48, "attachment": 3},
                          name="ba-48", alpha=3),
            ],
            solvers=[
                SolverSpec("deterministic", label="eps=0.3", params={"epsilon": 0.3}),
                SolverSpec("randomized", label="t=1", params={"t": 1}),
            ],
            opt_mode="degree",
            faults=FaultSpec(
                crash_fraction=0.15,
                crash_at=2,
                recover_after=3,
                drop_probability=0.08,
                latency_max=1,
                label="smoke-mixed",
            ),
            tags=("smoke", "faults"),
        ),
    ]


_REGISTERED = False


def register_builtin_scenarios(replace: bool = False) -> None:
    """Register every built-in scenario; idempotent across repeat calls."""
    global _REGISTERED
    if _REGISTERED and not replace:
        return
    for spec in (
        _experiment_scenarios()
        + _example_scenarios()
        + _family_scenarios()
        + _fault_scenarios()
        + _smoke_scenarios()
    ):
        register_scenario(spec, replace=replace)
    _REGISTERED = True
