"""Declarative scenario registry for the experiment orchestration layer.

The E1-E11 benchmarks and the example scripts all used to hand-roll the same
three ingredients: a set of graph instances, a set of solver configurations,
and a call into :func:`repro.analysis.experiments.sweep`.  This module turns
those ingredients into *specs* -- plain, JSON-serialisable descriptions of
what to run -- and a process-wide registry of named scenarios built from
them.

Specs are deliberately declarative:

* they can be **hashed** (:meth:`ScenarioSpec.spec_hash`), which is what the
  content-addressed result cache keys on (:mod:`repro.orchestration.cache`);
* they can be **rebuilt in a worker process** from nothing but the scenario
  name, which is what lets the sweep runner shard (scenario, seed) cells
  across processes (:mod:`repro.orchestration.runner`);
* they compose: a graph family is declared once and reused by every scenario
  that wants it at any scale or weighting.

The built-in scenarios (one per benchmark experiment, one per example script,
plus the extra graph families) live in :mod:`repro.orchestration.scenarios`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.experiments import ExperimentRecord, Solver, sweep
from repro.analysis.opt import OptEstimate, degree_lower_bound, estimate_opt
from repro.core.api import solve_with_algorithm
from repro.faults import FaultSpec
from repro.run import ALGORITHMS, RunSpec, Session, registry_lookup
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import (
    GraphInstance,
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    random_bounded_arboricity_graph,
    random_forest,
    random_geometric_graph,
    random_tree,
    star_of_cliques,
)
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_degree_weights,
    assign_inverse_degree_weights,
    assign_random_weights,
    assign_uniform_weights,
)

__all__ = [
    "GraphSpec",
    "WeightSpec",
    "SolverSpec",
    "FaultSpec",
    "ScenarioSpec",
    "FAMILY_BUILDERS",
    "WEIGHT_SCHEMES",
    "EXTRA_SOLVERS",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]


# ---------------------------------------------------------------------------
# Graph families
# ---------------------------------------------------------------------------

def _gnp_graph(n: int, p: float, seed: int = 0) -> nx.Graph:
    return nx.gnp_random_graph(n, p, seed=seed)


def _star_of_cliques(clique_count: int, clique_size: int, seed: int = 0) -> nx.Graph:
    del seed  # deterministic construction
    return star_of_cliques(clique_count, clique_size)


def _caterpillar(spine: int, legs_per_node: int = 3, seed: int = 0) -> nx.Graph:
    del seed
    return caterpillar_graph(spine, legs_per_node=legs_per_node)


def _grid(rows: int, cols: int, diagonal: bool = False, seed: int = 0) -> nx.Graph:
    del seed
    return grid_graph(rows, cols, diagonal=diagonal)


def _kmw_lower_bound_graph(side: int, degree: int, seed: int = 0) -> nx.Graph:
    from repro.lowerbound.kmw_graph import bipartite_regular_base_graph
    from repro.lowerbound.reduction import build_lower_bound_graph

    base = bipartite_regular_base_graph(side, degree, seed=seed)
    return build_lower_bound_graph(base).graph


#: Registered graph families.  Every builder accepts its family parameters as
#: keywords plus a ``seed`` keyword (ignored by deterministic constructions),
#: and returns a :class:`networkx.Graph`.
FAMILY_BUILDERS: Dict[str, Callable[..., nx.Graph]] = {
    "random-tree": random_tree,
    "random-forest": random_forest,
    "caterpillar": _caterpillar,
    "grid": _grid,
    "outerplanar": outerplanar_graph,
    "planar-triangulation": planar_triangulation_graph,
    "forest-union": forest_union_graph,
    "bounded-arboricity": random_bounded_arboricity_graph,
    "preferential-attachment": preferential_attachment_graph,
    "powerlaw-cluster": powerlaw_cluster_graph,
    "random-geometric": random_geometric_graph,
    "star-of-cliques": _star_of_cliques,
    "gnp": _gnp_graph,
    "kmw-lower-bound": _kmw_lower_bound_graph,
}


#: Registered node-weight schemes (see :mod:`repro.graphs.weights`).  Every
#: scheme accepts ``(graph, seed, **params)``; deterministic schemes ignore
#: the seed.
WEIGHT_SCHEMES: Dict[str, Callable[..., object]] = {
    "uniform": lambda graph, seed, **kw: assign_uniform_weights(graph, **kw),
    "random": lambda graph, seed, **kw: assign_random_weights(graph, seed=seed, **kw),
    "degree": lambda graph, seed, **kw: assign_degree_weights(graph, **kw),
    "inverse-degree": lambda graph, seed, **kw: assign_inverse_degree_weights(graph, **kw),
    "adversarial": lambda graph, seed, **kw: assign_adversarial_weights(graph, seed=seed, **kw),
}


@dataclass
class WeightSpec:
    """A node-weight assignment applied to a graph after generation.

    ``seed=None`` derives the weight seed from the cell seed (so different
    sweep cells see different weights); a fixed integer pins the weights
    regardless of the cell seed, which is what benchmark reproductions want.
    """

    scheme: str
    params: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None

    def apply(self, graph: nx.Graph, cell_seed: int) -> None:
        if self.scheme not in WEIGHT_SCHEMES:
            known = ", ".join(sorted(WEIGHT_SCHEMES))
            raise KeyError(f"unknown weight scheme {self.scheme!r}; known: {known}")
        seed = self.seed if self.seed is not None else cell_seed
        WEIGHT_SCHEMES[self.scheme](graph, seed, **self.params)

    def as_dict(self) -> Dict[str, object]:
        return {"scheme": self.scheme, "params": dict(self.params), "seed": self.seed}


@dataclass
class GraphSpec:
    """One graph instance of a registered family, declaratively.

    Attributes
    ----------
    family:
        Key into :data:`FAMILY_BUILDERS`.
    params:
        Keyword arguments for the family builder (sizes, probabilities, ...).
    name:
        Instance label in records and tables; defaults to the family name.
    alpha:
        Certified arboricity upper bound handed to the algorithms.  ``None``
        computes the degeneracy bound from the built graph (always a valid
        certificate, at the cost of a linear-time pass).
    weights:
        Optional :class:`WeightSpec` applied after generation.
    seed:
        ``None`` builds with the sweep cell's seed (plus ``seed_offset``);
        a fixed integer pins the instance across cells.
    seed_offset:
        Added to the cell seed so sibling specs in one scenario decorrelate.
    """

    family: str
    params: Dict[str, object] = field(default_factory=dict)
    name: Optional[str] = None
    alpha: Optional[int] = None
    weights: Optional[WeightSpec] = None
    seed: Optional[int] = None
    seed_offset: int = 0

    @property
    def label(self) -> str:
        return self.name or self.family

    def resolved_seed(self, cell_seed: int) -> int:
        base = self.seed if self.seed is not None else cell_seed
        return base + self.seed_offset

    def build(self, cell_seed: int = 0) -> GraphInstance:
        """Materialise the spec into a :class:`GraphInstance`."""
        if self.family not in FAMILY_BUILDERS:
            known = ", ".join(sorted(FAMILY_BUILDERS))
            raise KeyError(f"unknown graph family {self.family!r}; known: {known}")
        seed = self.resolved_seed(cell_seed)
        graph = FAMILY_BUILDERS[self.family](seed=seed, **self.params)
        if self.weights is not None:
            # Weights derive from the *cell* seed (not the possibly pinned
            # graph seed): a pinned graph swept over seeds still gets fresh
            # weights per cell, as WeightSpec documents.  Pin the weights
            # too by giving the WeightSpec its own fixed seed.
            self.weights.apply(graph, cell_seed + self.seed_offset)
        alpha = self.alpha
        if alpha is None:
            alpha = max(1, arboricity_upper_bound(graph))
        params = dict(self.params)
        params["family"] = self.family
        params["seed"] = seed
        return GraphInstance(name=self.label, graph=graph, alpha=alpha, params=params)

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "params": dict(self.params),
            "name": self.name,
            "alpha": self.alpha,
            "weights": None if self.weights is None else self.weights.as_dict(),
            "seed": self.seed,
            "seed_offset": self.seed_offset,
        }


# ---------------------------------------------------------------------------
# Solvers
# ---------------------------------------------------------------------------

def _lw_deterministic(graph, alpha=None, seed=0, engine=None):
    from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm

    return solve_with_algorithm(
        graph, LWDeterministicAlgorithm(), alpha=alpha, seed=seed, engine=engine
    )


def _lw_randomized(graph, alpha=None, seed=0, engine=None):
    from repro.baselines.lenzen_wattenhofer import LWRandomizedAlgorithm

    return solve_with_algorithm(
        graph, LWRandomizedAlgorithm(), alpha=alpha, seed=seed, engine=engine
    )


def _msw_combinatorial(graph, alpha=None, seed=0, engine=None):
    from repro.baselines.msw import MSWStyleAlgorithm

    return solve_with_algorithm(
        graph, MSWStyleAlgorithm(), alpha=alpha, seed=seed, engine=engine
    )


def _weighted_lambda_scaled(graph, alpha=None, seed=0, engine=None, epsilon=0.2, lambda_scale=1.0):
    """Theorem 1.1 with the partial-phase threshold lambda scaled (E10 ablation)."""
    from repro.core.partial import theorem11_lambda
    from repro.core.weighted import WeightedMDSAlgorithm

    lambda_value = theorem11_lambda(alpha, epsilon) * lambda_scale
    algorithm = WeightedMDSAlgorithm(epsilon=epsilon, lambda_value=lambda_value)
    guarantee = algorithm.approximation_guarantee(alpha) if lambda_scale == 1.0 else None
    return solve_with_algorithm(
        graph, algorithm, alpha=alpha, seed=seed, engine=engine, guarantee=guarantee
    )


#: Solvers beyond the paper's public ``solve_*`` entry points: distributed
#: baselines and ablation variants, normalised to the legacy calling
#: convention ``fn(graph, alpha=..., seed=..., engine=..., **params)``.
#: Kept for backward compatibility -- scenario execution resolves names
#: through :data:`repro.run.ALGORITHMS` (which registers the same four)
#: and builds :class:`~repro.run.RunSpec`\\ s instead of calling these.
EXTRA_SOLVERS: Dict[str, Callable[..., object]] = {
    "lw-deterministic": _lw_deterministic,
    "lw-randomized": _lw_randomized,
    "msw-combinatorial": _msw_combinatorial,
    "weighted-lambda-scaled": _weighted_lambda_scaled,
}

#: Solver names whose entry point does not take an ``alpha`` argument.
_ALPHA_FREE_SOLVERS = frozenset({"general", "forest", "unknown-arboricity"})


def _resolve_any_solver(name: str):
    """Resolve a solver name against the unified algorithm registry."""
    return registry_lookup(ALGORITHMS, name, "solver")


@dataclass
class SolverSpec:
    """One solver configuration: a registered solver name plus parameters."""

    solver: str
    label: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    seed_offset: int = 0

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        if not self.params:
            return self.solver
        rendered = ",".join(f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.solver}({rendered})"

    def make_runspec(
        self,
        instance: GraphInstance,
        cell_seed: int,
        engine: Optional[str],
        faults: Optional[FaultSpec] = None,
        shards: Optional[int] = None,
    ) -> RunSpec:
        """The declarative form of one (instance, solver, cell) execution.

        ``faults`` (a scenario-level :class:`~repro.faults.FaultSpec`) is
        materialised against the instance's graph with the cell seed, so the
        schedule is identical for every solver in the scenario (same storm,
        different algorithms) and across engines (the cross-engine parity
        gate); the executing session wraps it around the cell's engine as an
        :class:`~repro.faults.AdversarialEngine`.

        ``shards`` is the worker-process count for ``engine="sharded"``
        cells; it shapes the process layout only (results are
        shard-count-independent) and is ignored unless the sharded tier is
        the cell's engine.
        """
        plan = None
        if faults is not None:
            plan = faults.materialize(instance.graph, cell_seed)
        pass_alpha = self.solver not in _ALPHA_FREE_SOLVERS
        return RunSpec(
            graph=instance.graph,
            algorithm=self.solver,
            params=dict(self.params),
            alpha=instance.alpha if pass_alpha else None,
            seed=cell_seed + self.seed_offset,
            engine=engine,
            faults=plan,
            shards=shards if engine == "sharded" else None,
        )

    def make_solver(
        self,
        cell_seed: int,
        engine: Optional[str],
        faults: Optional[FaultSpec] = None,
        session: Optional[Session] = None,
        shards: Optional[int] = None,
    ) -> Solver:
        """Bind the spec to a concrete (seed, engine) cell.

        Returns a solver callable that builds the cell's
        :class:`~repro.run.RunSpec` per instance and executes it through
        ``session`` (one shared compiled session per scenario run, so every
        solver on the same instance reuses the compiled graph state); with
        no session each call is a one-shot execution.
        """
        _resolve_any_solver(self.solver)  # fail fast with the listing error
        runner = session if session is not None else Session()

        def _solver(instance: GraphInstance):
            return runner.run(
                self.make_runspec(instance, cell_seed, engine, faults, shards=shards)
            )

        return _solver

    def as_dict(self) -> Dict[str, object]:
        return {
            "solver": self.solver,
            "label": self.label,
            "params": dict(self.params),
            "seed_offset": self.seed_offset,
        }


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

#: OPT estimation policies available to scenarios: the default adaptive
#: exact-below-threshold/LP-above policy, forced exact, forced LP, or the
#: free counting bound for scale runs where the LP itself would dominate.
_OPT_MODES = ("auto", "exact", "lp", "degree")


@dataclass
class ScenarioSpec:
    """A named, registered experiment: graphs x solvers plus policy knobs.

    ``faults`` attaches an adversarial regime (:class:`repro.faults.FaultSpec`)
    to every cell of the scenario: each solver runs under an
    :class:`~repro.faults.AdversarialEngine` whose plan is materialised from
    the regime, the instance's graph, and the cell seed.  Fault scenarios
    measure *degradation*, so a non-dominating output or an exceeded
    guarantee is reported as degradation rather than counted as a violation
    (see ``python -m repro sweep``).
    """

    name: str
    experiment: str
    description: str
    graphs: Sequence[GraphSpec] = field(default_factory=list)
    solvers: Sequence[SolverSpec] = field(default_factory=list)
    tags: Tuple[str, ...] = ()
    share_opt: bool = True
    opt_mode: str = "auto"
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.opt_mode not in _OPT_MODES:
            raise ValueError(f"opt_mode must be one of {_OPT_MODES}, got {self.opt_mode!r}")
        self.tags = tuple(self.tags)
        labels = [spec.display_label for spec in self.solvers]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            # Solvers are keyed by label at run time; a silent collision
            # would drop all but one of the colliding configurations.
            raise ValueError(
                f"scenario {self.name!r} has duplicate solver labels {sorted(duplicates)}; "
                "set label= explicitly to disambiguate"
            )

    # -- identity ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form; the basis of the content hash."""
        return {
            "name": self.name,
            "experiment": self.experiment,
            "graphs": [spec.as_dict() for spec in self.graphs],
            "solvers": [spec.as_dict() for spec in self.solvers],
            "share_opt": self.share_opt,
            "opt_mode": self.opt_mode,
            "faults": None if self.faults is None else self.faults.as_dict(),
        }

    def spec_hash(self) -> str:
        """Content hash of everything that affects the records produced.

        Tags and the human description are deliberately excluded: relabelling
        a scenario must not invalidate cached results.
        """
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- execution ---------------------------------------------------------

    def build_instances(self, seed: int = 0) -> List[GraphInstance]:
        return [spec.build(seed) for spec in self.graphs]

    def _estimate_opt(self, graph: nx.Graph) -> OptEstimate:
        if self.opt_mode == "degree":
            return degree_lower_bound(graph)
        if self.opt_mode == "exact":
            return estimate_opt(graph, force_exact=True)
        if self.opt_mode == "lp":
            return estimate_opt(graph, force_lp=True)
        return estimate_opt(graph)

    def run(
        self,
        seed: int = 0,
        engine: Optional[str] = None,
        tracer: Optional[object] = None,
        shards: Optional[int] = None,
    ) -> List[ExperimentRecord]:
        """Run every solver on every instance and return verified records.

        The record stream is deterministic in ``(self, seed)``: instance
        order and solver order follow the spec, and each solver's RNG seed is
        derived from the cell seed.  ``engine`` picks the simulator backend
        and never changes the records (cross-engine parity is enforced by the
        congest test-suite and re-checked by ``python -m repro sweep --smoke``).
        ``tracer`` (a :class:`repro.obs.trace.Tracer`) makes every run in
        the cell emit its span tree; records are byte-identical either way.
        ``shards`` sets the worker-process count when ``engine="sharded"``
        (results are shard-count-independent; ignored for other engines).
        """
        instances = self.build_instances(seed)
        # One compiled session for the whole cell: every solver running on
        # the same instance shares its compiled network, adjacency layout
        # and canonicalisation (byte-identical to one-shot runs).
        session = Session(tracer=tracer)
        solvers = {
            spec.display_label: spec.make_solver(
                seed, engine, faults=self.faults, session=session, shards=shards
            )
            for spec in self.solvers
        }
        solver_params = {spec.display_label: spec for spec in self.solvers}

        def _params_for(label: str, instance: GraphInstance) -> Mapping[str, object]:
            del instance
            spec = solver_params[label]
            params: Dict[str, object] = {"solver": spec.solver}
            params.update(spec.params)
            params["cell_seed"] = seed
            if self.faults is not None:
                params["faults"] = self.faults.display_label
            return params

        records = sweep(
            self.experiment,
            instances,
            solvers,
            share_opt=self.share_opt,
            params_for=_params_for,
            opt_for=self._estimate_opt,
        )
        if self.opt_mode == "degree":
            # The counting bound is far below OPT, so "ratio > guarantee"
            # cannot certify a violation; report the check as inconclusive
            # rather than flagging correct runs.
            for record in records:
                if record.within_guarantee is False:
                    record.within_guarantee = None
        return records


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its name; rejects silent redefinition."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; run `python -m repro list` for the registry"
        ) from None


def list_scenarios(tag: Optional[str] = None) -> List[ScenarioSpec]:
    """Return registered scenarios sorted by name, optionally filtered by tag."""
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs


def scenario_names(tag: Optional[str] = None) -> List[str]:
    return [spec.name for spec in list_scenarios(tag=tag)]
