"""Content-addressed on-disk cache for experiment records.

A sweep cell is identified by four coordinates: the scenario's content hash
(:meth:`~repro.orchestration.registry.ScenarioSpec.spec_hash`), the cell
seed, the simulation engine, and the code version.  The cache maps the
SHA-256 of those coordinates to a JSON file holding the cell's
:class:`~repro.analysis.experiments.ExperimentRecord` list, so

* re-running a sweep is incremental -- only cells whose spec, seed, engine
  or code changed are recomputed;
* CI can gate on sweeps cheaply -- a warm cache turns a sweep into file
  reads;
* results are *invalidated automatically*: editing a scenario spec changes
  its hash, editing the package source changes the code version, and either
  moves the cell to a fresh key (stale entries are simply never read again).

Records round-trip through JSON exactly (Python floats serialise via
``repr`` and parse back to the identical double), which is what makes the
"parallel run is byte-identical to serial run" guarantee testable: compare
:func:`records_to_bytes` of the two record streams.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.analysis.experiments import ExperimentRecord

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_SCHEMA_VERSION",
    "code_version",
    "cache_key",
    "record_to_dict",
    "record_from_dict",
    "records_to_bytes",
    "CacheStats",
    "ResultCache",
]

#: Cache location when neither the constructor argument nor the
#: ``REPRO_CACHE_DIR`` environment variable says otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bumped when the on-disk payload layout changes; part of every key.
CACHE_SCHEMA_VERSION = 1

_RECORD_FIELDS = [f.name for f in fields(ExperimentRecord)]

_code_version: Optional[str] = None


def code_version() -> str:
    """A digest of the installed ``repro`` sources (plus the package version).

    Any edit to the package source changes this value and therefore every
    cache key, so stale results can never be served across code changes.
    Computed once per process; override with the ``REPRO_CODE_VERSION``
    environment variable (useful to share a cache across checkouts that are
    known to be equivalent).
    """
    global _code_version
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _code_version is None:
        digest = hashlib.sha256()
        digest.update(repro.__version__.encode("utf-8"))
        package_root = Path(repro.__file__).parent
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode("utf-8"))
            digest.update(source.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cache_key(spec_hash: str, seed: int, engine: Optional[str], version: Optional[str] = None) -> str:
    """The content address of one (scenario, seed, engine, code version) cell."""
    coordinates = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": spec_hash,
            "seed": seed,
            "engine": engine or "default",
            "code": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(coordinates.encode("utf-8")).hexdigest()


def record_to_dict(record: ExperimentRecord) -> Dict[str, object]:
    """Flatten a record into a JSON-ready dict (stable field order)."""
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_dict(payload: Dict[str, object]) -> ExperimentRecord:
    return ExperimentRecord(**{name: payload[name] for name in _RECORD_FIELDS})


def records_to_bytes(records: Sequence[ExperimentRecord]) -> bytes:
    """Canonical byte serialisation of a record stream (for parity checks)."""
    payload = [record_to_dict(record) for record in records]
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of experiment record lists.

    Entries are sharded into two-character prefix directories and written
    atomically (temp file + :func:`os.replace`), so concurrent writers --
    e.g. two sweep processes sharing one cache directory -- can never leave
    a torn entry behind.  A corrupt or unreadable entry is treated as a
    miss, never an error.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[ExperimentRecord]]:
        """Return the cached records for ``key``, or ``None`` on a miss."""
        entry = self.get_entry(key)
        return None if entry is None else entry[0]

    def get_entry(
        self, key: str
    ) -> Optional[Tuple[List[ExperimentRecord], Dict[str, object]]]:
        """Return ``(records, meta)`` for ``key``, or ``None`` on a miss.

        ``meta`` is the sidecar dict :meth:`put` stored alongside the
        records -- the sweep runner keeps per-cell execution telemetry
        there (``elapsed_s``, ``maxrss_kb``) so cache hits can still
        report how long the cell originally took to compute.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            records = [record_from_dict(entry) for entry in payload["records"]]
            meta = payload.get("meta") or {}
            if not isinstance(meta, dict):
                raise TypeError("meta entry is not an object")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return records, meta

    def put(
        self,
        key: str,
        records: Sequence[ExperimentRecord],
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Store ``records`` under ``key`` atomically; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "meta": dict(meta or {}),
            "records": [record_to_dict(record) for record in records],
        }
        handle, temp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def get_payload(self, key: str) -> Optional[Dict[str, object]]:
        """Return a generic JSON payload stored under ``key``, or ``None``.

        The payload entries are what ``repro serve`` stores its response
        bodies in -- same content-addressed root, same atomic-write and
        corrupt-entry-as-miss semantics as the record entries, but holding
        an opaque JSON object instead of an ``ExperimentRecord`` list.
        The two entry shapes never collide: their keys hash different
        coordinate tuples.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())["payload"]
            if not isinstance(payload, dict):
                raise TypeError("payload entry is not an object")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put_payload(
        self,
        key: str,
        payload: Dict[str, object],
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Store a generic JSON payload under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "meta": dict(meta or {}),
            "payload": payload,
        }
        handle, temp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(entry, stream, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed
