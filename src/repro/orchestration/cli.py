"""The ``python -m repro`` command line.

Five subcommands replace the copy-pasted benchmark boilerplate:

``list``
    Show the scenario registry (name, experiment, sizes, tags, spec hash);
    ``--json`` emits the same registry machine-readably.
``run``
    Run one scenario at one seed and print its paper-claim-vs-measured
    table (through the cache unless ``--no-cache``).  ``--spec FILE.json``
    instead runs one declarative :class:`repro.RunSpec` from a wire-format
    file -- decoded by the *same* codec the ``serve`` endpoint uses
    (:mod:`repro.run.wire`), so a spec file and a service request can never
    drift apart.
``sweep``
    Run a grid of (scenario, seed, engine) cells through the parallel,
    cache-aware runner; ``--smoke`` is the CI entry point -- it runs the
    smoke-tagged scenarios under *both* engines and byte-compares the
    record streams.
``report``
    Render tables for already-cached cells without running anything.
``serve``
    Start the long-lived HTTP run service (see :mod:`repro.serve`).

``run`` and ``sweep`` accept ``--faults <model>`` (a name from
:data:`repro.faults.FAULT_MODELS`), which overlays the named adversarial
regime onto every selected scenario: each is re-registered as
``<name>+<model>`` with the fault spec attached, turning any scenario into
one cell of the algorithm x family x fault-model grid.

Execution goes through the unified run API: every (instance, solver) pair
of a scenario cell is a declarative :class:`repro.RunSpec` executed by one
compiled :class:`repro.Session` per cell (see
:meth:`repro.orchestration.registry.SolverSpec.make_runspec`), so solvers
sharing an instance reuse its compiled network and adjacency state.

Exit codes: 0 on success, 1 when any record violates its guarantee (or an
engine-parity check fails), 2 on usage errors such as unknown scenarios or
missing cache entries.  Records of *fault* scenarios are measurements of
degradation -- a non-dominating output under an adversary is the finding,
not a bug -- so they are reported as ``degraded`` and never fail the run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import ExperimentRecord, aggregate_records
from repro.congest.errors import EngineCapabilityError
from repro.analysis.tables import render_records, render_summary
from repro.faults import FAULT_MODELS
from repro.orchestration.cache import ResultCache, cache_key, code_version, records_to_bytes
from repro.orchestration.registry import get_scenario, list_scenarios, register_scenario
from repro.orchestration.runner import (
    DEFAULT_SWEEP_ENGINE,
    CellResult,
    SweepBudget,
    SweepCell,
    SweepRunner,
    aggregate_skips,
    expand_cells,
    format_skip_cell,
)
from repro.orchestration.scenarios import register_builtin_scenarios

__all__ = ["main", "build_parser"]

#: The two universally applicable engines (the ``--smoke``/``both`` pair).
_ENGINES = ("batched", "reference")

#: The ``--engine all`` grid.  ``kernel`` executes the hot algorithms --
#: fault scenarios included -- as node-loop-free array programs (other
#: solvers fall back to batched, recorded via ``RunMetrics.engine_used``);
#: it is opt-in rather than part of ``both`` purely to keep the smoke pair
#: small.  Cells an engine genuinely cannot run surface as explicit
#: ``skipped`` results in the sweep summary.
_ALL_ENGINES = ("batched", "kernel", "reference")

#: Everything ``--engine`` accepts.  ``sharded`` (the multi-process
#: partitioned-CSR tier) is selectable but deliberately *not* part of
#: ``--engine all``: it cannot run fault plans, so folding it into the
#: ``all`` grid would turn every fault scenario into a skip.  Select it
#: explicitly (optionally with ``--shards N``); unsupported cells surface
#: as structured skips.
_SELECTABLE_ENGINES = _ALL_ENGINES + ("sharded",)


class _UsageError(Exception):
    """A user-facing argument problem (unknown scenario name, ...)."""


def _resolve_scenario(name: str):
    """`get_scenario` with unknown names turned into usage errors.

    Only name resolution is downgraded this way -- an unexpected exception
    anywhere else in a handler must surface as a traceback, not be dressed
    up as a usage error.
    """
    try:
        return get_scenario(name)
    except KeyError as error:
        raise _UsageError(error.args[0]) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Experiment orchestration for the Dory-Ghaffari-Ilchi reproduction: "
                    "scenario registry, cached parallel sweeps, result tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="show the scenario registry")
    list_parser.add_argument("--tag", help="only scenarios carrying this tag")
    list_parser.add_argument(
        "--verbose", action="store_true", help="include the one-line description"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit the registry as machine-readable JSON"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one scenario (or one --spec FILE.json) and print the results"
    )
    run_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (omit when using --spec)",
    )
    run_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE.json",
        help="run one RunSpec wire-format file instead of a scenario "
        "(same codec as the serve endpoint; other run options are ignored)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="sweep cell seed (default 0)")
    _add_cache_arguments(run_parser)
    run_parser.add_argument(
        "--engine", choices=_SELECTABLE_ENGINES, default=DEFAULT_SWEEP_ENGINE,
        help="simulation engine (default: batched)",
    )
    _add_shards_argument(run_parser)
    run_parser.add_argument(
        "--trace", default=None, metavar="FILE.jsonl",
        help="write a JSONL span trace of the cell's runs (forces execution: "
             "cache reads are skipped, results are still written back)",
    )
    _add_faults_argument(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a scenario x seed x engine grid in parallel, through the cache"
    )
    sweep_parser.add_argument("scenarios", nargs="*", help="scenario names (empty with --tag/--all/--smoke)")
    sweep_parser.add_argument("--tag", help="add every scenario carrying this tag")
    sweep_parser.add_argument("--all", action="store_true", help="add every registered scenario")
    sweep_parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: smoke-tagged scenarios, both engines, cross-engine parity check",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=1, metavar="N", help="run seeds 0..N-1 (default 1)"
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1 = serial)"
    )
    sweep_parser.add_argument(
        "--engine", choices=_SELECTABLE_ENGINES + ("both", "all"),
        default=DEFAULT_SWEEP_ENGINE,
        help="simulation engine; 'both' runs batched+reference per cell, 'all' "
             "adds the kernel tier (the sharded tier is select-explicitly only)",
    )
    _add_shards_argument(sweep_parser)
    sweep_parser.add_argument(
        "--report", action="store_true", help="print the full record tables, not just totals"
    )
    sweep_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one JSONL span trace per executed cell into DIR "
             "(cache hits have nothing to trace)",
    )
    _add_faults_argument(sweep_parser)
    _add_cache_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget for the whole sweep; cells the budget "
             "governor cannot fit are skipped (budget) and never cached",
    )
    sweep_parser.add_argument(
        "--budget-bytes", type=int, default=None, metavar="B",
        help="aggregate message-volume budget (bytes of records' total_bits) "
             "for freshly executed cells",
    )
    sweep_parser.add_argument(
        "--cell-max-rss", type=int, default=None, metavar="KIB",
        help="per-cell memory ceiling in KiB; a (scenario, engine) class "
             "observed above it this sweep has its remaining cells skipped",
    )

    report_parser = subparsers.add_parser(
        "report", help="render tables for cached cells without running anything"
    )
    report_parser.add_argument("scenarios", nargs="+", help="scenario names")
    report_parser.add_argument("--seed", type=int, default=0, help="cell seed (default 0)")
    report_parser.add_argument(
        "--engine", choices=_SELECTABLE_ENGINES, default=DEFAULT_SWEEP_ENGINE,
        help="simulation engine the cells were run under",
    )
    report_parser.add_argument("--cache-dir", default=None, help="cache directory")
    report_parser.add_argument(
        "--plots", action="store_true",
        help="also render scaling/fault-frontier figures from the cached "
             "records (requires matplotlib)",
    )
    report_parser.add_argument(
        "--plots-dir", default=None, metavar="DIR",
        help="where --plots writes figures (default: results/plots)",
    )

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="parse an edge-list file -- or download a pinned SNAP dataset -- "
             "into canonical CSR form and print its profile",
    )
    ingest_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="edge-list file, SNAP style, optionally .gz (omit with --download/--list)",
    )
    ingest_parser.add_argument(
        "--download", default=None, metavar="NAME",
        help="fetch + sha256-verify a pinned dataset (see --list), then ingest it",
    )
    ingest_parser.add_argument(
        "--list", action="store_true", dest="list_datasets",
        help="list the pinned downloadable datasets",
    )
    ingest_parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="where downloads live (default: data/snap)",
    )
    ingest_parser.add_argument(
        "--force", action="store_true",
        help="re-download even when a verified copy exists",
    )
    ingest_parser.add_argument(
        "--json", action="store_true", help="emit the ingest profile as JSON"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="start the long-lived HTTP run service (see repro.serve)"
    )
    from repro.serve.http import add_serve_arguments

    add_serve_arguments(serve_parser)
    return parser


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker-process count for --engine sharded (results are "
             "shard-count-independent; default: the sharded tier's own)",
    )


def _resolve_shards(arguments: argparse.Namespace) -> Optional[int]:
    """Validate the ``--shards``/``--engine`` pairing as a usage error."""
    shards = getattr(arguments, "shards", None)
    if shards is None:
        return None
    if shards < 1:
        raise _UsageError(f"--shards must be >= 1, got {shards}")
    if arguments.engine != "sharded":
        raise _UsageError(
            f"--shards requires --engine sharded (got --engine {arguments.engine})"
        )
    return shards


def _resolve_budget(arguments: argparse.Namespace) -> Optional[SweepBudget]:
    """Build the sweep budget from the CLI flags, as a usage error when bad."""
    try:
        budget = SweepBudget(
            seconds=arguments.budget_seconds,
            bytes=arguments.budget_bytes,
            cell_max_rss_kb=arguments.cell_max_rss,
        )
    except ValueError as error:
        raise _UsageError(str(error))
    return budget if budget.bounded else None


def _add_faults_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", choices=sorted(FAULT_MODELS), default=None, metavar="MODEL",
        help="overlay a named fault model onto every selected scenario "
             f"(one of: {', '.join(sorted(FAULT_MODELS))})",
    )


def _overlay_faults(names: List[str], model: Optional[str]) -> List[str]:
    """Re-register each scenario as ``<name>+<model>`` with faults attached.

    Scenarios that already carry a fault spec are left untouched (their
    registered adversary is the experiment); the derived specs hash
    differently from their fault-free parents, so cached results never mix.
    """
    if model is None:
        return names
    fault_spec = FAULT_MODELS[model]
    derived: List[str] = []
    for name in names:
        spec = get_scenario(name)
        if spec.faults is not None:
            derived.append(name)
            continue
        overlaid = dataclasses.replace(
            spec,
            name=f"{name}+{model}",
            faults=fault_spec,
            tags=tuple(spec.tags) + ("faults",),
        )
        register_scenario(overlaid, replace=True)
        derived.append(overlaid.name)
    return derived


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute everything, write nothing"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    register_builtin_scenarios()
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "list": _command_list,
        "run": _command_run,
        "sweep": _command_sweep,
        "report": _command_report,
        "serve": _command_serve,
        "ingest": _command_ingest,
    }
    try:
        return handlers[arguments.command](arguments)
    except _UsageError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2


def _command_ingest(arguments: argparse.Namespace) -> int:
    """Ingest a file (or a pinned downloadable dataset) and print its profile."""
    from repro.graphs import datasets as ds
    from repro.graphs.ingest import ingest_edge_list

    data_dir = arguments.data_dir or ds.DEFAULT_DATA_DIR
    if arguments.list_datasets:
        if arguments.path is not None or arguments.download is not None:
            raise _UsageError("--list takes no file path or --download")
        print(f"{len(ds.DATASETS)} pinned datasets (data dir: {data_dir}):")
        width = max(len(name) for name in ds.DATASETS)
        for name in ds.available_datasets():
            spec = ds.DATASETS[name]
            pin = spec.sha256[:12] if spec.sha256 else "first-download"
            print(
                f"  {name.ljust(width)}  ~{spec.nodes:>9,} nodes "
                f"~{spec.edges:>11,} edges  sha256: {pin:<14}  {spec.description}"
            )
        return 0
    if (arguments.path is None) == (arguments.download is None):
        raise _UsageError("give an edge-list path or --download NAME (or --list)")
    if arguments.download is not None:
        try:
            path = ds.download_dataset(
                arguments.download, data_dir=data_dir, force=arguments.force
            )
        except KeyError as error:
            raise _UsageError(error.args[0]) from None
        except ds.DatasetVerificationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except OSError as error:
            raise _UsageError(f"download failed: {error}") from None
        graph = ingest_edge_list(path, name=arguments.download)
        digest = ds.sha256_file(path)
    else:
        path = arguments.path
        try:
            graph = ingest_edge_list(path)
        except OSError as error:
            raise _UsageError(str(error)) from None
        except ValueError as error:
            raise _UsageError(f"{path}: {error}") from None
        digest = ds.sha256_file(path)
    profile = {
        "name": graph.name,
        "path": str(path),
        "sha256": digest,
        "nodes": graph.n,
        "edges": graph.m,
        "max_degree": graph.max_degree,
        "lines": graph.params.get("lines"),
        "self_loops_dropped": graph.params.get("self_loops_dropped"),
        "duplicates_dropped": graph.params.get("duplicates_dropped"),
    }
    if arguments.json:
        print(json.dumps(profile, indent=2, sort_keys=True))
        return 0
    print(f"ingested {graph.name}: {path}")
    print(f"  sha256      {digest}")
    print(f"  nodes       {graph.n:,}")
    print(f"  edges       {graph.m:,} (max degree {graph.max_degree})")
    print(
        f"  dropped     {profile['self_loops_dropped']} self-loops, "
        f"{profile['duplicates_dropped']} duplicate listings "
        f"({profile['lines']} data lines)"
    )
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from repro.serve.http import serve_command

    return serve_command(arguments)


def _command_list(arguments: argparse.Namespace) -> int:
    specs = list_scenarios(tag=arguments.tag)
    if arguments.json:
        payload = {
            "code_version": code_version(),
            "scenarios": [
                {
                    "name": spec.name,
                    "experiment": spec.experiment,
                    "description": spec.description,
                    "graphs": len(spec.graphs),
                    "solvers": len(spec.solvers),
                    "tags": list(spec.tags),
                    "faults": None if spec.faults is None else spec.faults.display_label,
                    "spec_hash": spec.spec_hash(),
                }
                for spec in specs
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not specs:
        print("(no scenarios match)" if arguments.tag else "(registry is empty)")
        return 0
    width = max(len(spec.name) for spec in specs)
    print(f"{len(specs)} scenarios (code version {code_version()}):")
    for spec in specs:
        tags = ",".join(spec.tags) or "-"
        line = (
            f"  {spec.name.ljust(width)}  {spec.experiment:<13} "
            f"{len(spec.graphs):>2} graphs x {len(spec.solvers)} solvers  "
            f"[{tags}]  {spec.spec_hash()}"
        )
        print(line)
        if arguments.verbose:
            print(f"  {' ' * width}  {spec.description}")
    return 0


def _make_cache(arguments: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(arguments, "no_cache", False):
        return None
    return ResultCache(arguments.cache_dir)


def _print_cell_tables(result: CellResult) -> None:
    spec = get_scenario(result.scenario)
    if result.from_cache:
        # Cached cells still report what the computation originally cost
        # (persisted in the entry meta); pre-telemetry entries show plain
        # "cache".
        origin = "cache" if not result.elapsed_s else f"cache, ran in {result.elapsed_s:.2f}s"
    else:
        origin = f"{result.duration_s:.2f}s"
    faults = "" if spec.faults is None else f", faults {spec.faults.display_label}"
    print(
        f"\n== {result.scenario} (experiment {spec.experiment}, seed {result.seed}, "
        f"engine {result.engine}{faults}, {origin}) =="
    )
    print(render_records(result.records))
    print()
    print(render_summary(aggregate_records(result.records)))


def _violations(records: Sequence[ExperimentRecord]) -> int:
    return sum(
        1
        for record in records
        if not record.is_dominating or record.within_guarantee is False
    )


def _is_fault_scenario(name: str) -> bool:
    return get_scenario(name).faults is not None


def _run_spec_file(path: str) -> int:
    """Run one wire-format RunSpec file; prints the JSON result summary.

    One parser for files and for the service: the file goes through
    :meth:`repro.RunSpec.from_json` -- the exact codec behind ``POST /run``
    -- so error messages (bad field, unknown key) match the server's 400s.
    """
    from repro.run import RunSpec, Session
    from repro.run.wire import WireFormatError
    from repro.serve.service import summarize_result

    try:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except OSError as error:
        raise _UsageError(str(error)) from None
    try:
        spec = RunSpec.from_json(text)
    except WireFormatError as error:
        raise _UsageError(str(error)) from None
    result = Session().run(spec)
    print(json.dumps(summarize_result(result), indent=2, sort_keys=True))
    return 1 if result.is_valid is False else 0


def _command_run(arguments: argparse.Namespace) -> int:
    if arguments.spec is not None:
        if arguments.scenario is not None:
            raise _UsageError("give a scenario name or --spec FILE.json, not both")
        return _run_spec_file(arguments.spec)
    if arguments.scenario is None:
        raise _UsageError("a scenario name (or --spec FILE.json) is required")
    _resolve_scenario(arguments.scenario)  # fail fast on unknown names
    shards = _resolve_shards(arguments)
    (name,) = _overlay_faults([arguments.scenario], arguments.faults)
    runner = SweepRunner(cache=_make_cache(arguments), workers=1, shards=shards)
    if arguments.trace is not None:
        # A trace of a cache hit would be empty: force execution (results
        # are still written back so later runs hit the cache again).
        runner.refresh = True
        cell = SweepCell(scenario=name, seed=arguments.seed, engine=arguments.engine)
        runner.trace_paths[cell] = arguments.trace
    try:
        (result,) = runner.sweep([name], seeds=[arguments.seed],
                                 engines=[arguments.engine])
    except EngineCapabilityError as error:
        # A capability error raised outside the cell body (e.g. while
        # resolving the engine) is an argument problem, not a bug -- report
        # it as the documented exit-2 usage error.
        raise _UsageError(str(error)) from None
    if result.skipped is not None:
        # An unsupported (scenario, engine) cell: same usage-error contract.
        raise _UsageError(result.skipped)
    _print_cell_tables(result)
    if _is_fault_scenario(name):
        degraded = _violations(result.records)
        if degraded:
            print(f"degraded: {degraded}/{len(result.records)} records (adversarial run)")
        return 0
    return 1 if _violations(result.records) else 0


def _select_scenarios(arguments: argparse.Namespace) -> List[str]:
    names: List[str] = list(arguments.scenarios)
    if arguments.smoke:
        names.extend(spec.name for spec in list_scenarios(tag="smoke"))
    if arguments.tag:
        names.extend(spec.name for spec in list_scenarios(tag=arguments.tag))
    if arguments.all:
        names.extend(spec.name for spec in list_scenarios())
    unique: List[str] = []
    for name in names:
        _resolve_scenario(name)  # fail fast on unknown names
        if name not in unique:
            unique.append(name)
    return unique


def _command_sweep(arguments: argparse.Namespace) -> int:
    names = _select_scenarios(arguments)
    if not names:
        print("error: no scenarios selected (give names, --tag, --all or --smoke)",
              file=sys.stderr)
        return 2
    names = _overlay_faults(names, arguments.faults)
    shards = _resolve_shards(arguments)
    if arguments.engine == "all":
        engines: Sequence[str] = _ALL_ENGINES
    elif arguments.smoke or arguments.engine == "both":
        engines = _ENGINES
    else:
        engines = (arguments.engine,)
    seeds = list(range(max(1, arguments.seeds)))
    cells = expand_cells(names, seeds, engines)
    cache = _make_cache(arguments)
    budget = _resolve_budget(arguments)
    runner = SweepRunner(
        cache=cache,
        workers=max(1, arguments.workers),
        trace_dir=arguments.trace_dir,
        shards=shards,
        budget=budget,
    )

    results: List[CellResult] = []
    total_violations = 0
    total_degraded = 0
    total_skipped = 0
    budget_skipped = 0
    for result in runner.run_cells(cells):
        results.append(result)
        origin = "cache " if result.from_cache else f"{result.duration_s:5.2f}s"
        if result.skipped is not None:
            # A cell the sweep could not run: either an unsupported
            # (scenario, engine) combination or one the budget governor
            # refused.  Reported, counted in the summary, never cached --
            # and never silently dropped.
            if result.skip_reason == "budget":
                budget_skipped += 1
            else:
                total_skipped += 1
            print(
                f"[{origin}] {result.scenario} seed={result.seed} "
                f"engine={result.engine} skipped: {result.skipped}"
            )
            continue
        flagged = _violations(result.records)
        if _is_fault_scenario(result.scenario):
            # Adversarial cells measure degradation; a broken guarantee is
            # the data point, not a failure.
            total_degraded += flagged
            status = "" if flagged == 0 else f"  degraded={flagged}"
        else:
            total_violations += flagged
            status = "" if flagged == 0 else f"  VIOLATIONS={flagged}"
        print(
            f"[{origin}] {result.scenario} seed={result.seed} engine={result.engine} "
            f"{len(result.records)} records{status}"
        )

    parity_failures = 0
    if len(engines) > 1:
        parity_failures = _check_engine_parity(results)

    cached = sum(1 for result in results if result.from_cache)
    degraded_note = f", {total_degraded} degraded (adversarial)" if total_degraded else ""
    skipped_note = f", {total_skipped} skipped (unsupported cells)" if total_skipped else ""
    budget_note = f", {budget_skipped} skipped (budget)" if budget_skipped else ""
    print(
        f"\n{len(results)} cells, {cached} from cache "
        f"({100.0 * cached / len(results):.0f}%), "
        f"{sum(len(result.records) for result in results)} records, "
        f"{total_violations} violations{degraded_note}{skipped_note}{budget_note}"
    )
    if budget is not None:
        summary = runner.budget_summary()
        if summary is not None:
            print(summary)
    if total_skipped:
        # The structured (algorithm, engine, fault_model) skip aggregation:
        # which capability-matrix cells this sweep actually asked for.
        counts = aggregate_skips(results)
        rendered = ", ".join(
            f"{format_skip_cell(cell)} x{count}"
            for cell, count in sorted(counts.items(), key=lambda item: format_skip_cell(item[0]))
        )
        print(f"skipped capability cells: {rendered}")
    if cache is not None:
        print(f"cache: {cache.root} ({cache.entry_count()} entries)")
    if arguments.report:
        for result in results:
            if result.skipped is None:
                _print_cell_tables(result)
    return 1 if (total_violations or parity_failures) else 0


def _check_engine_parity(results: Sequence[CellResult]) -> int:
    """Byte-compare record streams across engines for each (scenario, seed)."""
    grouped: Dict[tuple, Dict[str, bytes]] = {}
    for result in results:
        if result.skipped is not None:
            # A skipped cell produced no record stream to compare.
            continue
        grouped.setdefault((result.scenario, result.seed), {})[result.engine] = (
            records_to_bytes(result.records)
        )
    failures = 0
    for (scenario, seed), by_engine in sorted(grouped.items()):
        if len(by_engine) < 2:
            continue
        reference = list(by_engine.values())[0]
        if all(blob == reference for blob in by_engine.values()):
            print(f"parity OK: {scenario} seed={seed} ({', '.join(sorted(by_engine))})")
        else:
            failures += 1
            print(f"parity FAILED: {scenario} seed={seed}", file=sys.stderr)
    return failures


def _command_report(arguments: argparse.Namespace) -> int:
    cache = ResultCache(arguments.cache_dir)
    missing = []
    all_records: List[ExperimentRecord] = []
    for name in arguments.scenarios:
        spec = _resolve_scenario(name)
        key = cache_key(spec.spec_hash(), arguments.seed, arguments.engine)
        entry = cache.get_entry(key)
        if entry is None:
            missing.append(name)
            continue
        records, meta = entry
        all_records.extend(records)
        result = CellResult(
            cell=SweepCell(scenario=name, seed=arguments.seed, engine=arguments.engine),
            records=records,
            from_cache=True,
            duration_s=0.0,
            key=key,
            spec_hash=spec.spec_hash(),
            elapsed_s=float(meta.get("elapsed_s", 0.0)),
            maxrss_kb=int(meta.get("maxrss_kb", 0)),
        )
        _print_cell_tables(result)
    if missing:
        print(
            "error: no cached results for: " + ", ".join(missing)
            + f" (seed {arguments.seed}, engine {arguments.engine}, cache {cache.root}); "
            "run `python -m repro sweep` first",
            file=sys.stderr,
        )
        return 2
    if arguments.plots:
        return _render_report_plots(all_records, arguments.plots_dir)
    return 0


def _render_report_plots(
    records: List[ExperimentRecord], plots_dir: Optional[str]
) -> int:
    from repro.obs.report import DEFAULT_PLOTS_DIR, matplotlib_available, render_plots

    if not matplotlib_available():
        print(
            "error: --plots needs matplotlib, which is not installed "
            "(pip install matplotlib); tables above are unaffected",
            file=sys.stderr,
        )
        return 2
    written = render_plots(records, plots_dir or DEFAULT_PLOTS_DIR)
    for path in written:
        print(f"plot: {path}")
    if not written:
        print("no plots rendered (no applicable data in the cached records)")
    return 0
