"""Parallel experiment orchestration: scenario registry, cached sweeps, CLI.

This subpackage is the scalable successor of the hand-rolled benchmark
boilerplate:

* :mod:`repro.orchestration.registry`  -- declarative, hashable scenario
  specs (graph families x solver configs) and the process-wide registry;
* :mod:`repro.orchestration.scenarios` -- the built-in catalogue: every
  E1-E11 benchmark workload, every example-script workload, extra graph
  families, and the CI smoke cells;
* :mod:`repro.orchestration.cache`     -- content-addressed on-disk result
  cache keyed by (spec hash, seed, engine, code version);
* :mod:`repro.orchestration.runner`    -- multiprocess, cache-aware sweep
  runner with deterministic (byte-identical to serial) output;
* :mod:`repro.orchestration.cli`       -- the ``python -m repro`` command
  (``list`` / ``run`` / ``sweep`` / ``report``).

Importing this package registers the built-in scenarios.
"""

from repro.orchestration.cache import ResultCache, cache_key, code_version, records_to_bytes
from repro.orchestration.registry import (
    FaultSpec,
    GraphSpec,
    ScenarioSpec,
    SolverSpec,
    WeightSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.orchestration.runner import (
    CellResult,
    SweepBudget,
    SweepCell,
    SweepRunner,
    expand_cells,
)
from repro.orchestration.scenarios import register_builtin_scenarios

register_builtin_scenarios()

__all__ = [
    "GraphSpec",
    "WeightSpec",
    "SolverSpec",
    "FaultSpec",
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "register_builtin_scenarios",
    "ResultCache",
    "cache_key",
    "code_version",
    "records_to_bytes",
    "SweepBudget",
    "SweepCell",
    "CellResult",
    "SweepRunner",
    "expand_cells",
]
