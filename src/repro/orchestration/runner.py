"""Parallel, cache-aware sweep runner.

A *sweep* is a grid of cells, one per (scenario, seed, engine) triple.  The
runner:

1. resolves each cell's content address (:func:`repro.orchestration.cache.cache_key`)
   and serves it from the :class:`~repro.orchestration.cache.ResultCache`
   when possible;
2. shards the remaining cells across worker processes with
   :class:`concurrent.futures.ProcessPoolExecutor` (``workers=1`` runs them
   inline -- same code path, no pool);
3. streams :class:`CellResult` objects back *in submission order* as cells
   finish, writing fresh results into the cache as they arrive.

Determinism is a hard guarantee, not a hope: a cell is re-built from nothing
but ``(scenario name, seed, engine)``, every random choice inside the
algorithms derives from the cell seed, and records cross the process
boundary through the same canonical dict form the cache uses.  A parallel
sweep therefore produces records byte-identical to a serial run of the same
cells -- ``tests/orchestration/test_runner.py`` enforces exactly that.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import ExperimentRecord
from repro.congest.engine import get_default_engine, set_default_engine
from repro.orchestration.cache import ResultCache, cache_key, record_from_dict, record_to_dict
from repro.orchestration.governor import SweepBudget, SweepGovernor

__all__ = [
    "SweepBudget",
    "SweepCell",
    "CellResult",
    "SweepRunner",
    "aggregate_skips",
    "expand_cells",
    "format_skip_cell",
    "pool_map_ordered",
]

#: Engine used when the caller does not pick one: the vectorized fast path
#: (observationally identical to the reference engine; see repro.congest.engine).
DEFAULT_SWEEP_ENGINE = "batched"


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a registered scenario at one seed and engine."""

    scenario: str
    seed: int
    engine: str = DEFAULT_SWEEP_ENGINE


@dataclass
class CellResult:
    """The outcome of one cell, cached, freshly computed, or skipped.

    ``skipped`` carries the engine's capability error message when the cell
    names a genuinely unsupported (scenario, engine) combination; such
    results have no records and are never written to the cache, so the cell
    re-runs (and surfaces again) on every sweep until the capability gap is
    closed.  ``skipped_cell`` is the structured ``(algorithm, engine,
    fault_model)`` capability-cell key behind the message (entries may be
    ``None`` when the raising site could not attribute them), so reports
    and the service can aggregate skips without scraping reason strings.

    ``skip_reason`` distinguishes *why* a result is skipped:
    ``"capability"`` (the engine genuinely cannot run the cell) versus
    ``"budget"`` (a :class:`~repro.orchestration.governor.SweepGovernor`
    refused the cell to stay under the sweep's declared budget).  Budget
    skips share the never-cached contract: a later sweep with a bigger
    budget simply runs them.

    ``duration_s`` is time-to-availability at the consumer (0 for cache
    hits); ``elapsed_s``/``maxrss_kb``/``bits`` are the *execution*
    telemetry -- in-worker wall time, the cell's own peak memory growth
    (:class:`repro.obs.metrics.PeakRssMeter`-anchored, so a forked worker
    never reports the coordinator's copy-on-write footprint), and the
    records' aggregate message volume -- measured when the cell actually
    ran and persisted in the cache entry's meta, so a hit still reports
    what the computation originally cost.  ``maxrss_kb`` read back from
    entries written by older code may still be coordinator-sized; the
    governor treats cached values as advisory for exactly that reason.
    """

    cell: SweepCell
    records: List[ExperimentRecord]
    from_cache: bool
    duration_s: float
    key: str
    spec_hash: str = ""
    skipped: Optional[str] = None
    skipped_cell: Optional[Tuple[Optional[str], Optional[str], Optional[str]]] = None
    skip_reason: str = "capability"
    elapsed_s: float = 0.0
    maxrss_kb: int = 0
    bits: int = 0

    @property
    def scenario(self) -> str:
        return self.cell.scenario

    @property
    def seed(self) -> int:
        return self.cell.seed

    @property
    def engine(self) -> str:
        return self.cell.engine


def aggregate_skips(
    results: Iterable[CellResult],
) -> Dict[Tuple[Optional[str], Optional[str], Optional[str]], int]:
    """Count skipped results by ``(algorithm, engine, fault_model)`` cell key.

    The structured aggregation behind the sweep summary's skip lines (and
    usable on any ``CellResult`` stream, e.g. by a report or a service
    surfacing capability gaps); results without a structured key land
    under ``(None, None, None)``.  Budget skips are *not* capability
    gaps -- they are excluded here and summarised by the governor's own
    budget line instead.
    """
    counts: Dict[Tuple[Optional[str], Optional[str], Optional[str]], int] = {}
    for result in results:
        if result.skipped is None or result.skip_reason != "capability":
            continue
        key = result.skipped_cell if result.skipped_cell is not None else (None, None, None)
        counts[key] = counts.get(key, 0) + 1
    return counts


def format_skip_cell(cell: Tuple[Optional[str], Optional[str], Optional[str]]) -> str:
    """Render a capability-cell key as ``algorithm@engine+fault_model``."""
    algorithm, engine, fault_model = cell
    label = f"{algorithm or '?'}@{engine or '?'}"
    return label if fault_model is None else f"{label}+{fault_model}"


def expand_cells(
    scenarios: Iterable[str],
    seeds: Sequence[int],
    engines: Optional[Sequence[str]] = None,
) -> List[SweepCell]:
    """The cross product scenario x seed x engine, in deterministic order."""
    engine_list = list(engines) if engines else [DEFAULT_SWEEP_ENGINE]
    return [
        SweepCell(scenario=name, seed=seed, engine=engine)
        for name in scenarios
        for seed in seeds
        for engine in engine_list
    ]


def pool_map_ordered(
    fn,
    jobs: Union[Sequence, Iterable],
    workers: int,
    window: Optional[int] = None,
) -> Iterator[Tuple[object, float]]:
    """Run ``fn`` over ``jobs``, yielding ``(result, duration_s)`` in
    submission order.

    ``workers <= 1`` (or a single job) executes inline -- same code path, no
    pool; otherwise jobs are submitted to a
    :class:`~concurrent.futures.ProcessPoolExecutor` so later jobs compute
    while earlier ones stream out.  ``duration_s`` is time-to-availability:
    once the pool overlaps work, the wait observed at the consumer is the
    only meaningful per-job cost.

    ``window=None`` (the default) materialises ``jobs`` and submits every
    one upfront.  A positive ``window`` instead pulls jobs **lazily** from
    the iterable, keeping at most ``window`` in flight: the next job is
    drawn only after a result has been yielded (and the consumer resumed),
    so a job *source* that decides work adaptively -- the budget governor's
    cell stream -- observes each completion before committing to the next
    submission.  Both modes preserve submission-order streaming and the
    early-close semantics: an abandoned stream cancels queued futures and
    returns without waiting.

    ``fn`` must be a module-level callable and each job a picklable value.
    This is the worker machinery shared by :class:`SweepRunner` and
    :meth:`repro.run.Session.run_many`.
    """
    if window is not None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        yield from _pool_map_windowed(fn, iter(jobs), workers, window)
        return
    jobs = list(jobs)
    pool = None
    if workers > 1 and len(jobs) > 1:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    exhausted = False
    try:
        futures = [pool.submit(fn, job) for job in jobs] if pool is not None else None
        for index, job in enumerate(jobs):
            start = time.perf_counter()
            result = futures[index].result() if futures is not None else fn(job)
            yield result, time.perf_counter() - start
        exhausted = True
    finally:
        if pool is not None:
            # An abandoned stream (consumer broke out early / GC closed the
            # generator) must not block on jobs nobody will read: drop the
            # queued ones and return without waiting.  A fully consumed
            # stream has nothing pending, so the ordinary waiting shutdown
            # keeps its prompt-cleanup semantics.
            pool.shutdown(wait=exhausted, cancel_futures=not exhausted)


def _pool_map_windowed(
    fn, jobs: Iterator, workers: int, window: int
) -> Iterator[Tuple[object, float]]:
    """The bounded-in-flight arm of :func:`pool_map_ordered`.

    ``jobs`` is consumed lazily: the in-flight deque is topped up to
    ``window`` entries only after each yield resumes, never during the
    consumer's pause, so an adaptive job source sees every completion the
    consumer has processed before it is asked for more work.
    """
    pool = ProcessPoolExecutor(max_workers=min(workers, window)) if (
        workers > 1 and window > 1
    ) else None
    in_flight: deque = deque()

    def top_up() -> None:
        while len(in_flight) < window:
            try:
                job = next(jobs)
            except StopIteration:
                return
            in_flight.append(pool.submit(fn, job) if pool is not None else job)

    exhausted = False
    try:
        top_up()
        while in_flight:
            head = in_flight.popleft()
            start = time.perf_counter()
            result = head.result() if pool is not None else fn(head)
            yield result, time.perf_counter() - start
            top_up()
        exhausted = True
    finally:
        if pool is not None:
            # Same abandoned-stream contract as the upfront arm: drop queued
            # futures and return without waiting when the consumer bails.
            pool.shutdown(wait=exhausted, cancel_futures=not exhausted)


def _execute_cell(
    spec,
    seed: int,
    engine: str,
    default_engine: Optional[str] = None,
    trace_path: Optional[str] = None,
    shards: Optional[int] = None,
) -> Dict[str, object]:
    """Worker entry point: run one cell of an already-resolved scenario.

    Runs in a worker process (or inline for serial sweeps).  The
    :class:`~repro.orchestration.registry.ScenarioSpec` itself is shipped to
    the worker -- specs are plain picklable dataclasses -- so workers never
    consult the registry and user-registered scenarios work under every
    multiprocessing start method (fork *and* spawn).  Returns an envelope::

        {"records": [...], "elapsed_s": float, "maxrss_kb": int}

    with records in canonical dict form: cheap to pickle, and identical
    whichever side of the process boundary produced them.  ``elapsed_s`` is
    the *in-worker* wall time of the run itself (distinct from the
    consumer-side time-to-availability ``CellResult.duration_s``) and
    ``maxrss_kb`` the cell's own peak RSS *growth*
    (:class:`~repro.obs.metrics.PeakRssMeter`): a forked worker's absolute
    high-water starts at the coordinator's copy-on-write footprint, so raw
    ``ru_maxrss``/``VmHWM`` would attribute the coordinator's peak to the
    cell.  The meter anchors a baseline first, so the telemetry the cache
    persists is the memory the cell itself demanded.

    ``default_engine`` is the submitting process's process-wide default
    engine, applied (and restored) around the cell.  The default is module
    state, so whether a worker inherits it depends on the multiprocessing
    start method -- ``fork`` copies the parent's value at fork time, while
    ``spawn`` re-imports the module and silently resets it.  Passing it
    explicitly makes ``engine=None`` cells (and any ``engine=None`` lookup
    inside a solver) resolve identically inline, under fork, and under
    spawn.

    ``trace_path`` attaches a :class:`~repro.obs.trace.FileTracer` to the
    cell's runs when the spec supports it (``ScenarioSpec.run`` accepts a
    ``tracer``; duck-typed user specs without the parameter are run
    untraced rather than broken).  The tracer is created *in the worker*
    -- tracers hold open file handles and must not cross the process
    boundary.

    A cell naming a genuinely unsupported (scenario, engine) combination
    raises :class:`~repro.congest.errors.EngineCapabilityError` inside the
    run; that is a property of the capability matrix, not a bug, so it is
    returned as a skip marker for the runner to surface as an explicit
    skipped :class:`CellResult` instead of crashing the whole sweep.
    """
    from repro.congest.errors import EngineCapabilityError
    from repro.obs.metrics import PeakRssMeter

    run_kwargs: Dict[str, object] = {"seed": seed, "engine": engine}
    if shards is not None and _accepts_keyword(spec, "shards"):
        # Worker-process count for the sharded tier.  Results are
        # shard-count-independent, so this never appears in cache keys.
        run_kwargs["shards"] = shards
    tracer = None
    if trace_path is not None and _accepts_tracer(spec):
        from repro.obs.trace import FileTracer

        tracer = FileTracer(trace_path)
        run_kwargs["tracer"] = tracer
    meter = PeakRssMeter().start()
    started = time.perf_counter()
    try:
        if default_engine is None:
            records = spec.run(**run_kwargs)
        else:
            previous = set_default_engine(default_engine)
            try:
                records = spec.run(**run_kwargs)
            finally:
                set_default_engine(previous)
    except EngineCapabilityError as error:
        return {"skipped": str(error), "cell": list(error.cell)}
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - started
    return {
        "records": [record_to_dict(record) for record in records],
        "elapsed_s": elapsed,
        "maxrss_kb": meter.peak_kb(),
    }


def _accepts_keyword(spec, name: str) -> bool:
    """Whether ``spec.run`` can take the ``name`` keyword.

    Duck-typed user specs predate newer keywords (``tracer``, ``shards``);
    those run without the extra knob rather than crash the cell.
    """
    import inspect

    try:
        parameters = inspect.signature(spec.run).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return name in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _accepts_tracer(spec) -> bool:
    return _accepts_keyword(spec, "tracer")


def _execute_cell_job(job) -> Dict[str, object]:
    """Picklable single-argument adapter over :func:`_execute_cell`."""
    spec, seed, engine, default_engine, trace_path, shards = job
    return _execute_cell(spec, seed, engine, default_engine, trace_path, shards)


@dataclass
class SweepRunner:
    """Runs sweep cells through the cache and a process pool.

    Parameters
    ----------
    cache:
        The result cache; ``None`` disables caching entirely (every cell is
        recomputed, nothing is written).
    workers:
        Worker process count.  ``1`` executes inline in this process.
    trace_dir:
        When set, every *executed* cell (cache hits have nothing to trace)
        writes a JSONL trace to
        ``{trace_dir}/{scenario}__seed{seed}__{engine}.jsonl`` -- scenario
        names are sanitised for the filesystem.  The tracer is created in
        the worker process.
    refresh:
        Skip cache *reads* (every cell executes) while still writing fresh
        results back.  ``repro run --trace`` uses this so a traced run
        actually runs.
    budget:
        When set (and :attr:`SweepBudget.bounded`), a
        :class:`~repro.orchestration.governor.SweepGovernor` schedules the
        cache misses adaptively under the declared limits; cells it refuses
        surface as ``skip_reason == "budget"`` results and are never
        cached.  ``None`` (or an unbounded budget) takes the exact
        ungoverned code path -- byte-identical output, ordering included.
    """

    cache: Optional[ResultCache] = None
    workers: int = 1
    trace_dir: Optional[Union[str, Path]] = None
    trace_paths: Dict[SweepCell, str] = field(default_factory=dict, repr=False)
    refresh: bool = False
    #: Worker-process count handed to ``engine="sharded"`` cells.  Results
    #: are shard-count-independent, so it is deliberately absent from cache
    #: keys: a cached sharded cell answers for every shard count.
    shards: Optional[int] = None
    budget: Optional[SweepBudget] = None
    _keys: Dict[SweepCell, Tuple[str, str]] = field(default_factory=dict, repr=False)
    _specs: Dict[str, object] = field(default_factory=dict, repr=False)
    _governor: Optional[SweepGovernor] = field(default=None, repr=False)

    def _spec(self, cell: SweepCell):
        if cell.scenario not in self._specs:
            from repro.orchestration.registry import get_scenario

            self._specs[cell.scenario] = get_scenario(cell.scenario)
        return self._specs[cell.scenario]

    def _cell_key(self, cell: SweepCell) -> Tuple[str, str]:
        if cell not in self._keys:
            spec_hash = self._spec(cell).spec_hash()
            self._keys[cell] = (cache_key(spec_hash, cell.seed, cell.engine), spec_hash)
        return self._keys[cell]

    def run_cells(self, cells: Sequence[SweepCell]) -> Iterator[CellResult]:
        """Yield one :class:`CellResult` per cell, in the order given.

        Cache hits are yielded as soon as they are reached; misses are
        submitted to the pool upfront so they compute concurrently while
        earlier cells stream out.

        With a bounded :attr:`budget` the misses instead flow through a
        :class:`~repro.orchestration.governor.SweepGovernor`: hits come
        first (they are free), fresh results follow in the governor's
        adaptive order, and budget-refused cells trail as explicit skipped
        results.  Without one, this is the exact historical code path.
        """
        if self.budget is not None and self.budget.bounded:
            yield from self._run_cells_governed(cells)
            return
        lookups: Dict[SweepCell, Optional[Tuple[List[ExperimentRecord], Dict[str, object]]]] = {}
        for cell in cells:
            key, _ = self._cell_key(cell)
            lookups[cell] = (
                self.cache.get_entry(key)
                if self.cache is not None and not self.refresh
                else None
            )

        # Captured once at submission time and shipped to every worker:
        # workers must not rely on spawn-time (or fork-time) module state for
        # the process-wide default engine.
        default_engine = get_default_engine()

        misses = [cell for cell in cells if lookups[cell] is None]
        # Each invocation owns its trace files: start every target fresh
        # before anything executes.  Run ids are only unique per process, so
        # appending a re-run (new process, ids restart at 0) into a stale
        # file would collide; cells sharing one explicit --trace file still
        # accumulate, because truncation happens once, up front.
        for path in {self._trace_path(cell) for cell in misses} - {None}:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text("")
        jobs = [
            (
                self._spec(cell),
                cell.seed,
                cell.engine,
                default_engine,
                self._trace_path(cell),
                self.shards,
            )
            for cell in misses
        ]
        miss_stream = pool_map_ordered(_execute_cell_job, jobs, self.workers)
        try:
            for cell in cells:
                key, spec_hash = self._cell_key(cell)
                cached = lookups[cell]
                if cached is not None:
                    records, meta = cached
                    yield CellResult(
                        cell=cell,
                        records=records,
                        from_cache=True,
                        duration_s=0.0,
                        key=key,
                        spec_hash=spec_hash,
                        elapsed_s=float(meta.get("elapsed_s", 0.0)),
                        maxrss_kb=int(meta.get("maxrss_kb", 0)),
                        bits=int(meta.get("bits", 0)),
                    )
                    continue
                payload, duration = next(miss_stream)
                if "skipped" in payload:
                    # Capability-skip marker: surface it, never cache it.
                    cell_key = payload.get("cell")
                    yield CellResult(
                        cell=cell,
                        records=[],
                        from_cache=False,
                        duration_s=duration,
                        key=key,
                        spec_hash=spec_hash,
                        skipped=payload["skipped"],
                        skipped_cell=None if cell_key is None else tuple(cell_key),
                    )
                    continue
                records = [record_from_dict(entry) for entry in payload["records"]]
                elapsed_s = float(payload.get("elapsed_s", duration))
                maxrss_kb = int(payload.get("maxrss_kb", 0))
                bits = sum(record.total_bits for record in records)
                if self.cache is not None:
                    self.cache.put(
                        key,
                        records,
                        meta={
                            "scenario": cell.scenario,
                            "seed": cell.seed,
                            "engine": cell.engine,
                            "spec_hash": spec_hash,
                            "elapsed_s": elapsed_s,
                            "maxrss_kb": maxrss_kb,
                            "bits": bits,
                        },
                    )
                yield CellResult(
                    cell=cell,
                    records=records,
                    from_cache=False,
                    duration_s=duration,
                    key=key,
                    spec_hash=spec_hash,
                    elapsed_s=elapsed_s,
                    maxrss_kb=maxrss_kb,
                    bits=bits,
                )
        finally:
            miss_stream.close()

    def _run_cells_governed(self, cells: Sequence[SweepCell]) -> Iterator[CellResult]:
        """The bounded-budget arm of :meth:`run_cells`.

        Cache hits stream first, in the given order -- they spend nothing,
        and their persisted telemetry seeds the governor's estimator
        (advisory tier).  The misses are then pulled one at a time from
        :meth:`SweepGovernor.next_cell` through a *windowed*
        :func:`pool_map_ordered`, so every completion's fresh telemetry
        reaches the governor before it commits to the next admission.
        Budget-refused cells trail the stream as explicit ``skip_reason ==
        "budget"`` results and are never written to the cache.
        """
        governor = SweepGovernor(self.budget, workers=self.workers)
        self._governor = governor

        lookups: Dict[SweepCell, Optional[Tuple[List[ExperimentRecord], Dict[str, object]]]] = {}
        for cell in cells:
            key, _ = self._cell_key(cell)
            lookups[cell] = (
                self.cache.get_entry(key)
                if self.cache is not None and not self.refresh
                else None
            )
        default_engine = get_default_engine()
        misses = [cell for cell in cells if lookups[cell] is None]
        for path in {self._trace_path(cell) for cell in misses} - {None}:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text("")

        for cell in cells:
            cached = lookups[cell]
            if cached is None:
                continue
            key, spec_hash = self._cell_key(cell)
            records, meta = cached
            governor.seed(cell, meta)
            yield CellResult(
                cell=cell,
                records=records,
                from_cache=True,
                duration_s=0.0,
                key=key,
                spec_hash=spec_hash,
                elapsed_s=float(meta.get("elapsed_s", 0.0)),
                maxrss_kb=int(meta.get("maxrss_kb", 0)),
                bits=int(meta.get("bits", 0)),
            )

        governor.schedule(misses)
        submitted: Deque[SweepCell] = deque()

        def admitted_jobs() -> Iterator[Tuple]:
            while True:
                cell = governor.next_cell()
                if cell is None:
                    return
                submitted.append(cell)
                yield (
                    self._spec(cell),
                    cell.seed,
                    cell.engine,
                    default_engine,
                    self._trace_path(cell),
                    self.shards,
                )

        # The window bounds how many admissions can be in flight ahead of
        # the telemetry feedback loop -- enough to keep every worker busy,
        # small enough that budget overshoot stays a handful of cells.
        window = max(2, 2 * self.workers)
        miss_stream = pool_map_ordered(
            _execute_cell_job, admitted_jobs(), self.workers, window=window
        )
        try:
            for payload, duration in miss_stream:
                cell = submitted.popleft()
                key, spec_hash = self._cell_key(cell)
                if "skipped" in payload:
                    cell_key = payload.get("cell")
                    yield CellResult(
                        cell=cell,
                        records=[],
                        from_cache=False,
                        duration_s=duration,
                        key=key,
                        spec_hash=spec_hash,
                        skipped=payload["skipped"],
                        skipped_cell=None if cell_key is None else tuple(cell_key),
                    )
                    continue
                records = [record_from_dict(entry) for entry in payload["records"]]
                elapsed_s = float(payload.get("elapsed_s", duration))
                maxrss_kb = int(payload.get("maxrss_kb", 0))
                bits = sum(record.total_bits for record in records)
                if self.cache is not None:
                    self.cache.put(
                        key,
                        records,
                        meta={
                            "scenario": cell.scenario,
                            "seed": cell.seed,
                            "engine": cell.engine,
                            "spec_hash": spec_hash,
                            "elapsed_s": elapsed_s,
                            "maxrss_kb": maxrss_kb,
                            "bits": bits,
                        },
                    )
                governor.observe(
                    cell, elapsed_s=elapsed_s, maxrss_kb=maxrss_kb, bits=bits
                )
                yield CellResult(
                    cell=cell,
                    records=records,
                    from_cache=False,
                    duration_s=duration,
                    key=key,
                    spec_hash=spec_hash,
                    elapsed_s=elapsed_s,
                    maxrss_kb=maxrss_kb,
                    bits=bits,
                )
        finally:
            miss_stream.close()

        for cell, reason in governor.drain_skips():
            key, spec_hash = self._cell_key(cell)
            yield CellResult(
                cell=cell,
                records=[],
                from_cache=False,
                duration_s=0.0,
                key=key,
                spec_hash=spec_hash,
                skipped=reason,
                skip_reason="budget",
            )

    def budget_summary(self) -> Optional[str]:
        """The last governed run's one-line budget summary (``None`` when
        no bounded budget has driven a sweep yet)."""
        if self._governor is None:
            return None
        return self._governor.summary()

    def _trace_path(self, cell: SweepCell) -> Optional[str]:
        """The per-cell trace file: an explicit ``trace_paths`` entry wins
        (``repro run --trace FILE`` names the exact file), else a
        sanitised name under ``trace_dir``, else ``None``."""
        explicit = self.trace_paths.get(cell)
        if explicit is not None:
            return explicit
        if self.trace_dir is None:
            return None
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "-" for ch in cell.scenario
        )
        name = f"{safe}__seed{cell.seed}__{cell.engine}.jsonl"
        return str(Path(self.trace_dir) / name)

    def sweep(
        self,
        scenarios: Iterable[str],
        seeds: Sequence[int] = (0,),
        engines: Optional[Sequence[str]] = None,
    ) -> List[CellResult]:
        """Run the full scenario x seed x engine grid and return all results."""
        return list(self.run_cells(expand_cells(scenarios, seeds, engines)))
