"""Budget-governed adaptive sweep scheduling.

Sweeps used to run *open-loop*: every cell of the scenario x seed x engine
grid executed, however long it took and however much memory it ate.  The
telemetry layer (PR 8) persists what each cell actually cost -- in-worker
wall time, the worker's peak memory, the run's message volume -- but nothing
consumed it.  This module closes the loop.

A :class:`SweepBudget` declares the resources one sweep invocation may
spend: wall-clock seconds, aggregate message bytes, and a per-cell memory
ceiling.  A :class:`SweepGovernor` sits between
:meth:`~repro.orchestration.runner.SweepRunner.run_cells` and the process
pool and keeps consumption strictly under that budget *by adapting the
schedule*, borrowing the peak-hold load-estimator idea from adaptive
sparsification throttles: per (scenario, engine) **cost class** it holds the
worst cost ever observed (a :class:`PeakHoldEstimator`, seeded from cached
entries' persisted telemetry, ratcheted by fresh in-sweep observations) and

* **admits** a cell only while its class's peak-hold cost still fits in the
  remaining budget;
* **reorders** pending cells cheapest-class-first once the projected cost of
  everything pending no longer fits, so the budget buys as many cells as
  possible;
* **downsamples** a class's pending seed list when that class *alone* would
  blow the remaining wall-clock budget;
* **early-stops** everything left once a budget is exhausted.

Cells the governor refuses surface as explicit skipped
:class:`~repro.orchestration.runner.CellResult` records (``skip_reason
== "budget"``) -- the same never-cached machinery capability skips use, so a
later, bigger-budget sweep re-runs them.

Two hard rules keep the governor honest:

* **An absent budget is absent.**  A :class:`SweepRunner` with no (or an
  unbounded) budget takes the exact pre-governor code path; its output is
  byte-identical to today's, ordering included.
* **Cached memory telemetry is advisory.**  ``maxrss_kb`` written by older
  code could carry the *coordinator's* copy-on-write footprint rather than
  the cell's own (see :class:`repro.obs.metrics.PeakRssMeter`); cached
  values therefore only seed the estimator and never, on their own, trigger
  the per-cell memory ceiling -- a class is only vetoed on memory evidence
  observed fresh in this sweep.

Governor decisions are counted in :data:`governor_metrics` (Prometheus text
via :meth:`~repro.obs.metrics.MetricsRegistry.render`) and summarised in the
one-line :meth:`SweepGovernor.summary` the sweep report prints.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SweepBudget",
    "PeakHoldEstimator",
    "SweepGovernor",
    "governor_metrics",
]

#: Process-local decision counters for the sweep governor (admissions,
#: budget skips by reason, reorders, downsampled classes, estimator seeds).
governor_metrics = MetricsRegistry()


@dataclass(frozen=True)
class SweepBudget:
    """Declared resource limits for one sweep invocation.

    Every field is optional; ``None`` means unlimited.  A budget with every
    field ``None`` is *unbounded* and must behave exactly like no budget at
    all -- :class:`~repro.orchestration.runner.SweepRunner` checks
    :attr:`bounded` and keeps the ungoverned code path in that case.

    Attributes
    ----------
    seconds:
        Wall-clock budget for the whole sweep, measured from the moment the
        governor starts scheduling.  Cache hits are free; only fresh
        execution spends it.
    bytes:
        Aggregate message-volume budget: the sum over freshly executed
        cells of their records' ``total_bits``, in bytes.
    cell_max_rss_kb:
        Per-cell memory ceiling in KiB.  A cost class whose *freshly
        observed* peak exceeds it has its remaining cells skipped; cached
        (advisory) telemetry never triggers this.
    """

    seconds: Optional[float] = None
    bytes: Optional[int] = None
    cell_max_rss_kb: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("seconds", "bytes", "cell_max_rss_kb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"budget {name} must be positive, got {value}")

    @property
    def bounded(self) -> bool:
        """Whether any limit is actually set."""
        return (
            self.seconds is not None
            or self.bytes is not None
            or self.cell_max_rss_kb is not None
        )

    # -- wire form ---------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form (the CLI/registry wire format)."""
        return {
            "seconds": self.seconds,
            "bytes": self.bytes,
            "cell_max_rss_kb": self.cell_max_rss_kb,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepBudget":
        unknown = set(payload) - {"seconds", "bytes", "cell_max_rss_kb"}
        if unknown:
            raise ValueError(f"unknown budget fields: {sorted(unknown)}")
        seconds = payload.get("seconds")
        raw_bytes = payload.get("bytes")
        ceiling = payload.get("cell_max_rss_kb")
        return cls(
            seconds=None if seconds is None else float(seconds),
            bytes=None if raw_bytes is None else int(raw_bytes),
            cell_max_rss_kb=None if ceiling is None else int(ceiling),
        )

    def describe(self) -> str:
        parts = []
        if self.seconds is not None:
            parts.append(f"{self.seconds:g}s wall")
        if self.bytes is not None:
            parts.append(f"{self.bytes:,} bytes")
        if self.cell_max_rss_kb is not None:
            parts.append(f"{self.cell_max_rss_kb:,} KiB/cell")
        return ", ".join(parts) if parts else "unbounded"


class PeakHoldEstimator:
    """Per-class peak-hold cost estimates: the worst cost ever seen, held.

    The estimator is deliberately pessimistic and deliberately simple --
    values only ratchet upward (``tests/orchestration/test_governor.py``
    holds monotonicity under arbitrary observation streams), because an
    estimate that decays optimistically is exactly how a governor overruns
    its budget.

    Two evidence tiers: :meth:`seed` feeds *advisory* telemetry (persisted
    by possibly-older code -- in particular ``maxrss_kb`` from before the
    worker-RSS fix could be coordinator-sized), :meth:`observe` feeds
    *fresh* in-sweep measurements.  Both ratchet the estimates; only fresh
    evidence marks the memory estimate trustworthy
    (:meth:`rss_is_fresh`), which is what gates memory-based vetoes.
    """

    def __init__(self) -> None:
        self._elapsed_s: Dict[Hashable, float] = {}
        self._bits: Dict[Hashable, int] = {}
        self._rss_kb: Dict[Hashable, int] = {}
        self._rss_fresh: Dict[Hashable, bool] = {}

    def _ratchet(self, key: Hashable, elapsed_s: float, maxrss_kb: int, bits: int) -> None:
        self._elapsed_s[key] = max(self._elapsed_s.get(key, 0.0), float(elapsed_s))
        self._bits[key] = max(self._bits.get(key, 0), int(bits))
        self._rss_kb[key] = max(self._rss_kb.get(key, 0), int(maxrss_kb))

    def seed(self, key: Hashable, elapsed_s: float = 0.0, maxrss_kb: int = 0,
             bits: int = 0) -> None:
        """Ratchet from persisted (advisory) telemetry, e.g. a cache entry."""
        self._ratchet(key, elapsed_s, maxrss_kb, bits)
        self._rss_fresh.setdefault(key, False)

    def observe(self, key: Hashable, elapsed_s: float = 0.0, maxrss_kb: int = 0,
                bits: int = 0) -> None:
        """Ratchet from a fresh in-sweep measurement."""
        self._ratchet(key, elapsed_s, maxrss_kb, bits)
        self._rss_fresh[key] = True

    def elapsed_s(self, key: Hashable) -> float:
        """Peak-hold wall-time estimate for ``key`` (0.0 when unseen)."""
        return self._elapsed_s.get(key, 0.0)

    def bits(self, key: Hashable) -> int:
        """Peak-hold message-volume estimate for ``key`` (0 when unseen)."""
        return self._bits.get(key, 0)

    def maxrss_kb(self, key: Hashable) -> int:
        """Peak-hold memory estimate for ``key`` (0 when unseen)."""
        return self._rss_kb.get(key, 0)

    def rss_is_fresh(self, key: Hashable) -> bool:
        """Whether the memory estimate carries in-sweep (non-advisory) evidence."""
        return self._rss_fresh.get(key, False)

    def known(self, key: Hashable) -> bool:
        return key in self._elapsed_s


#: A cost class: cells of one (scenario, engine) share instance sizes and
#: solver sets, so one peak-hold estimate covers all of its seeds.
ClassKey = Tuple[str, str]


def _class_key(cell) -> ClassKey:
    return (cell.scenario, cell.engine)


class SweepGovernor:
    """Adaptive scheduler holding one sweep under a :class:`SweepBudget`.

    Protocol (driven by :class:`~repro.orchestration.runner.SweepRunner`):

    1. :meth:`seed` once per cache hit with the entry's persisted telemetry;
    2. :meth:`schedule` with the cells that still need execution, then
       :meth:`start` when execution is about to begin;
    3. :meth:`next_cell` repeatedly -- each call returns the next admitted
       cell (possibly after reordering or vetoing queued ones) or ``None``
       once nothing else fits;
    4. :meth:`observe` once per completed fresh cell;
    5. :meth:`drain_skips` for the ``(cell, reason)`` list of everything the
       budget refused, and :meth:`summary` for the report line.

    Admission is predictive *and* reactive: a cell is refused up front when
    its class's peak-hold cost no longer fits the remaining budget, and
    everything pending is dropped the moment a budget is actually
    exhausted.  With parallel workers the projected cost of pending work is
    divided by the worker count (cells overlap), but exhaustion checks use
    real wall-clock -- overshoot is bounded by the cells already in flight,
    which the bounded submission window keeps small.
    """

    def __init__(
        self,
        budget: SweepBudget,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not budget.bounded:
            raise ValueError("an unbounded budget needs no governor")
        self.budget = budget
        self.workers = max(1, int(workers))
        self.estimator = PeakHoldEstimator()
        self._clock = clock
        self._started_at: Optional[float] = None
        self._pending: Deque[object] = deque()
        self._skips: List[Tuple[object, str]] = []
        self._spent_bits = 0
        self._admitted = 0
        self._skipped_total = 0
        self._completed = 0
        self._reorders = 0
        self._downsampled: Dict[ClassKey, int] = {}
        self._quota: Dict[ClassKey, int] = {}
        self._order_dirty = True

    # -- inputs ------------------------------------------------------------

    def seed(self, cell, meta: Dict[str, object]) -> None:
        """Feed one cache entry's persisted telemetry into the estimator."""
        self.estimator.seed(
            _class_key(cell),
            elapsed_s=float(meta.get("elapsed_s", 0.0) or 0.0),
            maxrss_kb=int(meta.get("maxrss_kb", 0) or 0),
            bits=int(meta.get("bits", 0) or 0),
        )
        governor_metrics.counter(
            "repro_governor_estimator_seeds_total",
            "Cache entries whose telemetry seeded the peak-hold estimator",
        ).inc()

    def schedule(self, cells: Sequence[object]) -> None:
        """Hand the governor the cells that still need execution, in order."""
        self._pending = deque(cells)
        self._order_dirty = True

    def start(self) -> None:
        """Start the wall clock (idempotent; called when execution begins)."""
        if self._started_at is None:
            self._started_at = self._clock()

    def observe(self, cell, elapsed_s: float, maxrss_kb: int, bits: int) -> None:
        """Record one freshly executed cell's measured cost."""
        self._completed += 1
        self._spent_bits += max(0, int(bits))
        self.estimator.observe(
            _class_key(cell), elapsed_s=elapsed_s, maxrss_kb=maxrss_kb, bits=bits
        )
        # Fresh evidence can change every projection: re-plan on next pull.
        self._order_dirty = True

    # -- accounting --------------------------------------------------------

    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    def spent_bytes(self) -> int:
        return self._spent_bits // 8

    def _remaining_seconds(self) -> Optional[float]:
        if self.budget.seconds is None:
            return None
        return self.budget.seconds - self.elapsed_s()

    def _remaining_bits(self) -> Optional[int]:
        if self.budget.bytes is None:
            return None
        return self.budget.bytes * 8 - self._spent_bits

    def _exhausted_reason(self) -> Optional[str]:
        remaining_s = self._remaining_seconds()
        if remaining_s is not None and remaining_s <= 0:
            return (
                f"budget: wall-clock budget exhausted "
                f"({self.elapsed_s():.2f}s of {self.budget.seconds:g}s spent)"
            )
        remaining_bits = self._remaining_bits()
        if remaining_bits is not None and remaining_bits <= 0:
            return (
                f"budget: byte budget exhausted "
                f"({self.spent_bytes():,} of {self.budget.bytes:,} bytes spent)"
            )
        return None

    # -- scheduling --------------------------------------------------------

    def _projected_pending_seconds(self) -> float:
        total = sum(self.estimator.elapsed_s(_class_key(cell)) for cell in self._pending)
        return total / self.workers

    def _replan(self) -> None:
        """Reorder pending cheapest-class-first once the budget gets tight.

        Only fires when the projected cost of everything pending exceeds
        the remaining wall-clock budget: while everything fits, submission
        order is preserved (stable output, no churn); once it stops
        fitting, running cheap classes first maximises how many cells the
        remaining budget buys.  The sort is stable, so cells inside one
        class keep their seed order.
        """
        self._order_dirty = False
        remaining_s = self._remaining_seconds()
        if remaining_s is None or len(self._pending) < 2:
            return
        if self._projected_pending_seconds() <= remaining_s:
            return
        before = list(self._pending)
        reordered = sorted(
            before, key=lambda cell: self.estimator.elapsed_s(_class_key(cell))
        )
        if reordered != before:
            self._pending = deque(reordered)
            self._reorders += 1
            governor_metrics.counter(
                "repro_governor_reorders_total",
                "Pending-cell reorders (cheapest class first) under budget pressure",
            ).inc()
        self._maybe_downsample()

    def _maybe_downsample(self) -> None:
        """Cap classes whose pending seed list alone would blow the budget.

        When the peak-hold estimate says a single class's remaining cells
        cannot all fit in the remaining wall-clock budget even with every
        worker on them, the class's seed list is downsampled: only the
        prefix that fits keeps its admission quota, the tail is vetoed at
        pull time.  Quotas only shrink (re-planning never resurrects a
        dropped seed), mirroring the estimator's monotonicity.
        """
        remaining_s = self._remaining_seconds()
        if remaining_s is None:
            return
        counts: Dict[ClassKey, int] = {}
        for cell in self._pending:
            key = _class_key(cell)
            counts[key] = counts.get(key, 0) + 1
        for key, count in counts.items():
            estimate = self.estimator.elapsed_s(key)
            if estimate <= 0:
                continue
            projected = estimate * count / self.workers
            if projected <= remaining_s:
                continue
            quota = max(0, int(remaining_s * self.workers / estimate))
            previous = self._quota.get(key, count)
            if quota < previous:
                if key not in self._downsampled:
                    governor_metrics.counter(
                        "repro_governor_downsampled_classes_total",
                        "Cost classes whose seed list was downsampled to fit the budget",
                    ).inc()
                self._downsampled[key] = self._downsampled.get(key, 0)
                self._quota[key] = quota

    def _veto(self, cell) -> Optional[Tuple[str, str]]:
        """A ``(reason, metric_label)`` veto for ``cell``, or ``None`` to admit."""
        key = _class_key(cell)
        quota = self._quota.get(key)
        if quota is not None and quota <= 0:
            return (
                f"budget: seed list of {cell.scenario!r} ({cell.engine}) downsampled "
                f"-- the class alone would exceed the remaining wall-clock budget",
                "downsampled",
            )
        ceiling = self.budget.cell_max_rss_kb
        if (
            ceiling is not None
            and self.estimator.rss_is_fresh(key)
            and self.estimator.maxrss_kb(key) > ceiling
        ):
            return (
                f"budget: observed cell memory {self.estimator.maxrss_kb(key):,} KiB "
                f"exceeds the {ceiling:,} KiB per-cell ceiling",
                "memory-ceiling",
            )
        remaining_s = self._remaining_seconds()
        if remaining_s is not None and self.estimator.elapsed_s(key) > remaining_s:
            return (
                f"budget: estimated cell cost {self.estimator.elapsed_s(key):.2f}s "
                f"exceeds the remaining {max(0.0, remaining_s):.2f}s wall-clock budget",
                "wont-fit",
            )
        remaining_bits = self._remaining_bits()
        if remaining_bits is not None and self.estimator.bits(key) > remaining_bits:
            return (
                f"budget: estimated cell volume {self.estimator.bits(key) // 8:,} bytes "
                f"exceeds the remaining {max(0, remaining_bits) // 8:,} byte budget",
                "wont-fit",
            )
        return None

    def _skip(self, cell, reason: str, metric_reason: str) -> None:
        self._skips.append((cell, reason))
        self._skipped_total += 1
        governor_metrics.counter(
            "repro_governor_cells_skipped_total",
            "Cells refused by the sweep governor",
            reason=metric_reason,
        ).inc()

    def next_cell(self):
        """The next admitted cell, or ``None`` once nothing else fits.

        ``None`` is final: everything still pending at that point has been
        moved to the skip list (:meth:`drain_skips`).
        """
        self.start()
        while self._pending:
            exhausted = self._exhausted_reason()
            if exhausted is not None:
                metric = (
                    "exhausted-bytes" if "byte budget" in exhausted
                    else "exhausted-wall-clock"
                )
                while self._pending:
                    self._skip(self._pending.popleft(), exhausted, metric)
                return None
            if self._order_dirty:
                self._replan()
            cell = self._pending.popleft()
            veto = self._veto(cell)
            if veto is not None:
                reason, metric = veto
                if metric == "downsampled":
                    self._downsampled[_class_key(cell)] += 1
                self._skip(cell, reason, metric)
                continue
            quota = self._quota.get(_class_key(cell))
            if quota is not None:
                self._quota[_class_key(cell)] = quota - 1
            self._admitted += 1
            governor_metrics.counter(
                "repro_governor_cells_admitted_total",
                "Cells admitted for execution by the sweep governor",
            ).inc()
            return cell
        return None

    # -- outputs -----------------------------------------------------------

    def drain_skips(self) -> List[Tuple[object, str]]:
        """The ``(cell, reason)`` list of everything the budget refused."""
        drained = self._skips
        self._skips = []
        return drained

    def summary(self) -> str:
        """One line for the sweep report: spend vs budget plus decisions."""
        parts = []
        if self.budget.seconds is not None:
            parts.append(f"{self.elapsed_s():.1f}s/{self.budget.seconds:g}s wall")
        if self.budget.bytes is not None:
            parts.append(f"{self.spent_bytes():,}/{self.budget.bytes:,} bytes")
        if self.budget.cell_max_rss_kb is not None:
            parts.append(f"cell ceiling {self.budget.cell_max_rss_kb:,} KiB")
        parts.append(f"{self._admitted} admitted")
        parts.append(f"{self._skipped_total} skipped (budget)")
        if self._downsampled:
            noun = "class" if len(self._downsampled) == 1 else "classes"
            parts.append(f"{len(self._downsampled)} {noun} downsampled")
        if self._reorders:
            noun = "reorder" if self._reorders == 1 else "reorders"
            parts.append(f"{self._reorders} {noun}")
        return "budget: " + ", ".join(parts)

    def skipped_count(self) -> int:
        return self._skipped_total

    def admitted_count(self) -> int:
        return self._admitted
