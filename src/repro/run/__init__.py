"""Unified execution API: declarative run specs and compiled sessions.

This package is the single front door for executing the paper's algorithms
(and the registered baselines) on a graph:

* :class:`~repro.run.spec.RunSpec` -- a typed, declarative description of
  one execution: the graph (prebuilt, or a registry :class:`GraphSpec` to
  materialise), optional weights, the algorithm plus its parameters, the
  simulation engine, an optional fault model, the seed, the validation
  policy and the simulator budget knobs.
* :class:`~repro.run.session.Session` -- compiles once, runs many.  Graph
  canonicalisation (the certified arboricity bound, the weighted/unweighted
  dispatch), the network with its CSR adjacency layout, the payload-bit
  memo and the fault-session scaffolding are built a single time per graph
  and reused across multi-seed / multi-algorithm batches via
  :meth:`~repro.run.session.Session.run` and
  :meth:`~repro.run.session.Session.run_many` (a streaming iterator with
  optional process-pool fan-out).
* :func:`~repro.run.session.execute` -- the module-level one-shot, also
  re-exported as :func:`repro.execute`.

Every execution returns the same :class:`DominatingSetResult` the legacy
``solve_*`` helpers produced -- byte-identical, in fact: the helpers are now
thin wrappers over this API, and ``tests/run/test_parity_grid.py`` enforces
the equivalence across the full algorithm x graph-family grid.

One-shot::

    import repro
    result = repro.execute(repro.RunSpec(graph=g, algorithm="deterministic",
                                         params={"epsilon": 0.2}))

Compiled batch::

    with repro.Session(engine="batched") as session:
        spec = repro.RunSpec(graph=g, algorithm="randomized", params={"t": 2})
        for result in session.run_many(base=spec, seeds=range(16)):
            print(result.weight, result.rounds)
"""

from repro.run.algorithms import (
    ALGORITHMS,
    AlgorithmRecipe,
    ResolvedRun,
    available_algorithms,
    register_algorithm,
    registry_lookup,
    resolve_algorithm,
)
from repro.run.result import DominatingSetResult, package_result, result_bytes
from repro.run.session import CompiledGraph, Session, execute
from repro.run.spec import RunSpec
from repro.run.wire import WireFormatError

__all__ = [
    "ALGORITHMS",
    "AlgorithmRecipe",
    "CompiledGraph",
    "DominatingSetResult",
    "ResolvedRun",
    "RunSpec",
    "Session",
    "WireFormatError",
    "available_algorithms",
    "execute",
    "package_result",
    "register_algorithm",
    "registry_lookup",
    "resolve_algorithm",
    "result_bytes",
]
