"""Byte-parity smoke for the unified execution API.

``python -m repro.run.smoke`` exercises :func:`repro.execute` and
:meth:`repro.Session.run_many` on **both** engines, with and without a
fault model, and byte-compares every result against the legacy ``solve_*``
path (which the CI pipeline runs as a dedicated step).  It is deliberately
small -- a few seconds -- because its job is wiring, not coverage: the
exhaustive algorithm x family grids live in ``tests/run/`` and
``tests/congest/``.

Exit code 0 when every comparison matches, 1 otherwise.
"""

from __future__ import annotations

import sys
import warnings
from typing import Optional, Sequence

import repro
from repro.faults import AdversarialEngine, fault_model
from repro.graphs.generators import forest_union_graph
from repro.graphs.weights import assign_random_weights
from repro.run.result import result_bytes

__all__ = ["main"]

SEEDS = (0, 1, 2, 3)


def _check(label: str, new_results, legacy_results, failures: list) -> None:
    new_blobs = [result_bytes(result) for result in new_results]
    legacy_blobs = [result_bytes(result) for result in legacy_results]
    status = "OK" if new_blobs == legacy_blobs else "MISMATCH"
    print(f"  {label:<44} {status}")
    if new_blobs != legacy_blobs:
        failures.append(label)


def main(argv: Optional[Sequence[str]] = None) -> int:
    del argv
    graph = forest_union_graph(n=120, alpha=3, seed=5)
    assign_random_weights(graph, 1, 25, seed=7)
    plan = fault_model("lossy10").materialize(graph, 0)

    failures: list = []
    with warnings.catch_warnings():
        # The legacy helpers warn about their own deprecation; calling them
        # is this smoke's entire purpose.
        warnings.simplefilter("ignore", DeprecationWarning)
        for engine in ("reference", "batched"):
            print(f"engine={engine}:")

            spec = repro.RunSpec(
                graph=graph,
                algorithm="weighted",
                params={"epsilon": 0.2},
                alpha=3,
                seed=1,
                engine=engine,
            )
            _check(
                "execute vs solve_weighted_mds",
                [repro.execute(spec)],
                [repro.solve_weighted_mds(graph, alpha=3, epsilon=0.2, seed=1, engine=engine)],
                failures,
            )

            with repro.Session() as session:
                base = repro.RunSpec(
                    graph=graph, algorithm="randomized", params={"t": 2},
                    alpha=3, engine=engine,
                )
                _check(
                    f"run_many x{len(SEEDS)} vs solve_mds_randomized loop",
                    list(session.run_many(base=base, seeds=SEEDS)),
                    [
                        repro.solve_mds_randomized(graph, alpha=3, t=2, seed=seed, engine=engine)
                        for seed in SEEDS
                    ],
                    failures,
                )

                faulted = repro.RunSpec(
                    graph=graph, algorithm="deterministic", params={"epsilon": 0.2},
                    alpha=3, engine=engine, faults=plan,
                )
                _check(
                    f"run_many x{len(SEEDS)} under {plan.describe()!r} vs legacy",
                    list(session.run_many(base=faulted, seeds=SEEDS)),
                    [
                        repro.solve_mds(
                            graph, alpha=3, epsilon=0.2, seed=seed,
                            engine=AdversarialEngine(plan, inner=engine),
                        )
                        for seed in SEEDS
                    ],
                    failures,
                )

    if failures:
        print(f"\n{len(failures)} parity failure(s): {failures}", file=sys.stderr)
        return 1
    print("\nall new-API executions byte-identical to the legacy solve_* path")
    return 0


if __name__ == "__main__":
    sys.exit(main())
