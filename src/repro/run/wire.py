"""The canonical JSON wire format for :class:`~repro.run.spec.RunSpec`.

One codec, three consumers: the ``repro serve`` service decodes request
bodies with it, the CLI (``repro run --spec FILE.json``) decodes spec files
with it, and the service's run/graph cache keys hash the canonical encoding
it produces.  Because every path goes through this module there is exactly
one parser and no drift between what a script writes, what the server
accepts, and what the cache addresses.

Encoding rules
--------------
* Field order is stable: :func:`spec_to_dict` emits the ``runspec`` schema
  marker first, then every :class:`RunSpec` field in declaration order.
  :func:`canonical_json` (sorted keys, compact separators) is the hashing
  form; :meth:`RunSpec.to_json` keeps the readable declaration order.
* The codec is *total* over wire-expressible specs and fails loudly
  otherwise: an ad-hoc ``SynchronousAlgorithm`` instance, an engine
  instance, or a materialised :class:`~repro.faults.plan.FaultPlan` has no
  wire form and raises :class:`WireFormatError` naming the field.
* Unknown keys are rejected with the shared listing ``KeyError`` helper
  (:func:`repro.run.algorithms.registry_lookup`), so a typo'd field reads
  exactly like a typo'd algorithm name.
* Decoding is validating: every error -- codec-level or construction-time
  inside ``RunSpec.__post_init__`` -- surfaces as a
  :class:`WireFormatError` carrying the offending ``field``, which is what
  the service turns into structured 400 responses.

Graph forms (the ``graph`` field is a tagged object)
----------------------------------------------------
``{"kind": "family", "family": ..., "params": {...}, ...}``
    A registry :class:`~repro.orchestration.registry.GraphSpec`,
    materialised with ``graph_seed``.
``{"kind": "edges", "nodes": [...], "edges": [[u, v], ...], "weights": ...}``
    An inline :class:`networkx.Graph` (int/str node labels only).
``{"kind": "csr", "n": ..., "edges": [[u, v], ...], ...}``
    An inline :class:`~repro.graphs.large_scale.CSRGraph` (kernel tier).
``{"kind": "file", "path": ...}``
    A real edge-list file streamed into CSR form by
    :func:`repro.graphs.ingest.load_edge_list` (SNAP-style text, ``.gz``
    transparently decompressed); loads are memoized per path.
``{"kind": "named", "name": ...}``
    A graph registered via :func:`repro.graphs.ingest.register_graph`.

Weight forms: ``null``, ``{"kind": "mapping", "entries": [[node, w], ...]}``
or ``{"kind": "scheme", "scheme": ..., "params": {...}, "seed": ...}`` (a
registry ``WeightSpec``).  Fault forms: ``null``, a model name string, or
``{"kind": "spec", ...}`` (a graph-agnostic ``FaultSpec``).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Dict, Mapping, Optional

import networkx as nx

from repro.graphs.generators import GraphInstance
from repro.run.algorithms import registry_lookup
from repro.run.spec import RunSpec

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "canonical_json",
    "spec_from_dict",
    "spec_to_dict",
    "spec_wire_hash",
]

#: Bumped when the wire layout changes incompatibly; part of every payload.
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """A spec payload (or a spec) that cannot cross the wire.

    ``field`` names the offending :class:`RunSpec` field (``None`` when the
    problem is the payload envelope itself, e.g. a non-object body).  The
    service maps this 1:1 onto its structured 400 responses.
    """

    def __init__(self, field: Optional[str], message: str):
        self.field = field
        prefix = "RunSpec payload" if field is None else f"RunSpec field {field!r}"
        super().__init__(f"{prefix}: {message}")
        self.reason = message


def canonical_json(payload: Any) -> str:
    """The canonical (sorted-key, compact) JSON form used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_wire_hash(wire: Mapping[str, Any]) -> str:
    """Content hash of a wire payload (the service's run/graph cache basis)."""
    import hashlib

    return hashlib.sha256(canonical_json(wire).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# JSON-ability checks
# ---------------------------------------------------------------------------

_SCALARS = (str, int, float, bool, type(None))


def _require_jsonable(field: str, value: Any) -> Any:
    """Validate (and shallow-copy) a JSON-expressible value."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, entry in value.items():
            if not isinstance(key, str):
                raise WireFormatError(field, f"mapping keys must be strings, got {key!r}")
            out[key] = _require_jsonable(field, entry)
        return out
    if isinstance(value, (list, tuple)):
        return [_require_jsonable(field, entry) for entry in value]
    raise WireFormatError(
        field, f"value {value!r} of type {type(value).__name__} is not JSON-expressible"
    )


def _node_label(field: str, node: Any) -> Any:
    if isinstance(node, bool) or not isinstance(node, (int, str)):
        raise WireFormatError(
            field,
            f"node label {node!r} is not wire-expressible; inline graphs need "
            "int or str node labels (relabel with networkx.convert_node_labels_to_integers)",
        )
    return node


# ---------------------------------------------------------------------------
# Graph encoding
# ---------------------------------------------------------------------------


def _ingest_module():
    """The graph registry module, *only* if something was ever registered.

    Looked up through ``sys.modules`` so encoding a spec never drags in the
    NumPy-backed ingestion machinery: if a graph object is registered (or
    was ingested from a file), its module is necessarily already loaded.
    """
    return sys.modules.get("repro.graphs.ingest")


def _registry_module():
    return sys.modules.get("repro.orchestration.registry")


def _as_csr(graph: Any):
    module = sys.modules.get("repro.graphs.large_scale")
    if module is None:
        return None
    return graph if isinstance(graph, module.CSRGraph) else None


def _encode_graph(graph: Any) -> Dict[str, Any]:
    ingest = _ingest_module()
    if ingest is not None:
        name = ingest.registered_name(graph)
        if name is not None:
            return {"kind": "named", "name": name}
    registry = _registry_module()
    if registry is not None and isinstance(graph, registry.GraphSpec):
        entry = {"kind": "family"}
        entry.update(graph.as_dict())
        entry["params"] = _require_jsonable("graph", entry["params"])
        return entry
    csr = _as_csr(graph)
    if csr is not None:
        source = csr.params.get("source_path")
        if isinstance(source, str):
            return {"kind": "file", "path": source}
        u, v = csr.edge_arrays()
        return {
            "kind": "csr",
            "n": csr.n,
            "edges": [list(edge) for edge in zip(u.tolist(), v.tolist())],
            "weights": None if csr.weights is None else csr.weights.tolist(),
            "name": csr.name,
            "alpha": csr.alpha,
        }
    if isinstance(graph, GraphInstance):
        graph = graph.graph
    if isinstance(graph, nx.Graph):
        nodes = [_node_label("graph", node) for node in graph.nodes()]
        edges = [
            [_node_label("graph", u), _node_label("graph", v)] for u, v in graph.edges()
        ]
        weights = None
        if any("weight" in graph.nodes[node] for node in graph.nodes()):
            weights = [graph.nodes[node].get("weight", 1) for node in graph.nodes()]
        return {"kind": "edges", "nodes": nodes, "edges": edges, "weights": weights}
    raise WireFormatError(
        "graph",
        f"object of type {type(graph).__name__} has no wire form; use a registry "
        "GraphSpec, an inline networkx/CSR graph, an ingested edge-list file, or "
        "register it under a name (repro.graphs.ingest.register_graph)",
    )


def _entry_fields(
    entry: Mapping[str, Any], kind: str, required, optional, field: str = "graph"
) -> Dict[str, Any]:
    """Extract a tagged object's fields, rejecting unknown keys with a listing."""
    known = {"kind": None}
    known.update({name: None for name in required})
    known.update(optional)
    for key in entry:
        try:
            registry_lookup(known, key, f"{kind!r} form key")
        except KeyError as error:
            raise WireFormatError(field, error.args[0]) from None
    out = {}
    for name in required:
        if name not in entry:
            raise WireFormatError(field, f"{kind!r} form requires a {name!r} entry")
        out[name] = entry[name]
    for name, default in optional.items():
        out[name] = entry.get(name, default)
    return out


def _decode_graph_family(entry: Mapping[str, Any]) -> Any:
    from repro.orchestration.registry import FAMILY_BUILDERS, GraphSpec

    fields = _entry_fields(
        entry,
        "family",
        ["family"],
        {"params": {}, "name": None, "alpha": None, "weights": None,
         "seed": None, "seed_offset": 0},
    )
    try:
        registry_lookup(FAMILY_BUILDERS, fields["family"], "graph family")
    except KeyError as error:
        raise WireFormatError("graph", error.args[0]) from None
    weights = fields["weights"]
    if weights is not None:
        weights = _decode_weight_scheme("graph", weights)
    return GraphSpec(
        family=fields["family"],
        params=dict(fields["params"]),
        name=fields["name"],
        alpha=fields["alpha"],
        weights=weights,
        seed=fields["seed"],
        seed_offset=fields["seed_offset"],
    )


def _decode_graph_edges(entry: Mapping[str, Any]) -> nx.Graph:
    fields = _entry_fields(entry, "edges", ["nodes", "edges"], {"weights": None})
    graph = nx.Graph()
    graph.add_nodes_from(_node_label("graph", node) for node in fields["nodes"])
    for pair in fields["edges"]:
        if len(pair) != 2:
            raise WireFormatError("graph", f"edge entry {pair!r} is not a [u, v] pair")
        graph.add_edge(_node_label("graph", pair[0]), _node_label("graph", pair[1]))
    weights = fields["weights"]
    if weights is not None:
        if len(weights) != len(fields["nodes"]):
            raise WireFormatError(
                "graph",
                f"weights has {len(weights)} entries for {len(fields['nodes'])} nodes",
            )
        for node, weight in zip(fields["nodes"], weights):
            graph.nodes[node]["weight"] = weight
    return graph


def _decode_graph_csr(entry: Mapping[str, Any]):
    import numpy as np

    from repro.graphs.large_scale import csr_from_edges

    fields = _entry_fields(
        entry, "csr", ["n", "edges"],
        {"weights": None, "name": "csr-graph", "alpha": None},
    )
    edges = fields["edges"]
    u = np.asarray([pair[0] for pair in edges], dtype=np.int64)
    v = np.asarray([pair[1] for pair in edges], dtype=np.int64)
    weights = fields["weights"]
    if weights is not None:
        weights = np.asarray(weights, dtype=np.int64)
    try:
        return csr_from_edges(
            fields["n"], u, v, weights=weights,
            name=fields["name"], alpha=fields["alpha"],
        )
    except ValueError as error:
        raise WireFormatError("graph", str(error)) from None


def _decode_graph_file(entry: Mapping[str, Any]):
    from repro.graphs.ingest import load_edge_list

    fields = _entry_fields(entry, "file", ["path"], {})
    try:
        return load_edge_list(fields["path"])
    except (OSError, ValueError) as error:
        raise WireFormatError("graph", str(error)) from None


def _decode_graph_named(entry: Mapping[str, Any]):
    from repro.graphs.ingest import get_graph

    fields = _entry_fields(entry, "named", ["name"], {})
    try:
        return get_graph(fields["name"])
    except KeyError as error:
        raise WireFormatError("graph", error.args[0]) from None


_GRAPH_KINDS: Dict[str, Callable[[Mapping[str, Any]], Any]] = {
    "family": _decode_graph_family,
    "edges": _decode_graph_edges,
    "csr": _decode_graph_csr,
    "file": _decode_graph_file,
    "named": _decode_graph_named,
}


def _decode_graph(entry: Any) -> Any:
    if not isinstance(entry, Mapping):
        raise WireFormatError(
            "graph", f"must be a tagged object with a 'kind' entry, got {entry!r}"
        )
    kind = entry.get("kind")
    try:
        decoder = registry_lookup(_GRAPH_KINDS, kind, "graph form")
    except KeyError as error:
        raise WireFormatError("graph", error.args[0]) from None
    return decoder(entry)


# ---------------------------------------------------------------------------
# Weights
# ---------------------------------------------------------------------------


def _decode_weight_scheme(field: str, entry: Mapping[str, Any]):
    from repro.orchestration.registry import WEIGHT_SCHEMES, WeightSpec

    fields = _entry_fields(
        entry, "scheme", ["scheme"], {"params": {}, "seed": None}, field=field
    )
    try:
        registry_lookup(WEIGHT_SCHEMES, fields["scheme"], "weight scheme")
    except KeyError as error:
        raise WireFormatError(field, error.args[0]) from None
    return WeightSpec(
        scheme=fields["scheme"], params=dict(fields["params"]), seed=fields["seed"]
    )


def _encode_weights(weights: Any) -> Optional[Dict[str, Any]]:
    if weights is None:
        return None
    registry = _registry_module()
    if registry is not None and isinstance(weights, registry.WeightSpec):
        entry = {"kind": "scheme"}
        entry.update(weights.as_dict())
        entry["params"] = _require_jsonable("weights", entry["params"])
        return entry
    if isinstance(weights, Mapping):
        entries = [
            [_node_label("weights", node), _require_jsonable("weights", weight)]
            for node, weight in weights.items()
        ]
        return {"kind": "mapping", "entries": entries}
    raise WireFormatError(
        "weights",
        f"object of type {type(weights).__name__} has no wire form; use a "
        "node->weight mapping or a registry WeightSpec",
    )


def _decode_weights(entry: Any) -> Any:
    if entry is None:
        return None
    if not isinstance(entry, Mapping):
        raise WireFormatError(
            "weights", f"must be null or a tagged object, got {entry!r}"
        )
    kind = entry.get("kind")
    if kind == "scheme":
        return _decode_weight_scheme("weights", entry)
    if kind == "mapping":
        fields = _entry_fields(entry, "mapping", ["entries"], {}, field="weights")
        mapping = {}
        for pair in fields["entries"]:
            if len(pair) != 2:
                raise WireFormatError(
                    "weights", f"entry {pair!r} is not a [node, weight] pair"
                )
            mapping[_node_label("weights", pair[0])] = pair[1]
        return mapping
    try:
        registry_lookup({"scheme": None, "mapping": None}, kind, "weights form")
    except KeyError as error:
        raise WireFormatError("weights", error.args[0]) from None


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


def _encode_faults(faults: Any) -> Any:
    if faults is None or isinstance(faults, str):
        return faults
    from repro.faults import FaultPlan, FaultSpec

    if isinstance(faults, FaultSpec):
        entry: Dict[str, Any] = {"kind": "spec"}
        entry.update(faults.as_dict())
        entry["label"] = faults.label
        return entry
    if isinstance(faults, FaultPlan):
        raise WireFormatError(
            "faults",
            "a materialised FaultPlan names concrete nodes/edges and has no "
            "wire form; send a graph-agnostic FaultSpec or a model name and "
            "let the server materialise it (fault_seed pins the draw)",
        )
    raise WireFormatError(
        "faults",
        f"object of type {type(faults).__name__} has no wire form; use a model "
        "name, a FaultSpec object, or null",
    )


def _decode_faults(entry: Any) -> Any:
    if entry is None or isinstance(entry, str):
        return entry  # model names are validated by RunSpec itself
    if not isinstance(entry, Mapping):
        raise WireFormatError(
            "faults", f"must be null, a model name, or a tagged object, got {entry!r}"
        )
    kind = entry.get("kind")
    if kind != "spec":
        try:
            registry_lookup({"spec": None}, kind, "faults form")
        except KeyError as error:
            raise WireFormatError("faults", error.args[0]) from None
    from repro.faults import FaultSpec

    known = {name: None for name in FaultSpec().as_dict()}
    known["label"] = None
    fields = _entry_fields(entry, "spec", [], known, field="faults")
    kwargs = {name: value for name, value in fields.items() if value is not None}
    try:
        return FaultSpec(**kwargs)
    except (TypeError, ValueError) as error:
        raise WireFormatError("faults", str(error)) from None


# ---------------------------------------------------------------------------
# Scalar field checks
# ---------------------------------------------------------------------------


def _check_int(field: str, value: Any, optional: bool = False) -> Any:
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError(field, f"must be an integer, got {value!r}")
    return value


def _check_bool(field: str, value: Any, optional: bool = False) -> Any:
    if value is None and optional:
        return None
    if not isinstance(value, bool):
        raise WireFormatError(field, f"must be a boolean, got {value!r}")
    return value


def _check_str(field: str, value: Any, optional: bool = False) -> Any:
    if value is None and optional:
        return None
    if not isinstance(value, str):
        raise WireFormatError(field, f"must be a string, got {value!r}")
    return value


def _check_number(field: str, value: Any, optional: bool = False) -> Any:
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireFormatError(field, f"must be a number, got {value!r}")
    return value


def _check_params(field: str, value: Any, optional: bool = False) -> Any:
    if value is None and optional:
        return None
    if not isinstance(value, Mapping):
        raise WireFormatError(field, f"must be an object, got {value!r}")
    return _require_jsonable(field, value)


# ---------------------------------------------------------------------------
# The codec proper
# ---------------------------------------------------------------------------

#: Decoders keyed by RunSpec field name -- doubling as the known-key registry
#: that :func:`spec_from_dict` rejects unknown keys against.
_FIELD_DECODERS: Dict[str, Callable[[Any], Any]] = {
    "graph": _decode_graph,
    "algorithm": lambda value: _check_str("algorithm", value),
    "params": lambda value: _check_params("params", value),
    "alpha": lambda value: _check_int("alpha", value, optional=True),
    "weights": _decode_weights,
    "engine": lambda value: _check_str("engine", value, optional=True),
    "faults": _decode_faults,
    "fault_seed": lambda value: _check_int("fault_seed", value, optional=True),
    "seed": lambda value: _check_int("seed", value),
    "graph_seed": lambda value: _check_int("graph_seed", value),
    "validate": lambda value: _check_str("validate", value),
    "max_rounds": lambda value: _check_int("max_rounds", value),
    "bandwidth_words": lambda value: _check_int("bandwidth_words", value),
    "strict": lambda value: _check_bool("strict", value),
    "knows_max_degree": lambda value: _check_bool("knows_max_degree", value, optional=True),
    "guarantee": lambda value: _check_number("guarantee", value, optional=True),
    "config": lambda value: _check_params("config", value, optional=True),
    "shards": lambda value: _check_int("shards", value, optional=True),
}


def spec_to_dict(spec: RunSpec) -> Dict[str, Any]:
    """Encode ``spec`` as its canonical wire dict (stable field order).

    Raises :class:`WireFormatError` for specs that hold objects without a
    wire form (algorithm/engine instances, materialised fault plans,
    unregistered opaque graph sources).
    """
    if not isinstance(spec.algorithm, str):
        raise WireFormatError(
            "algorithm",
            f"instance algorithm {type(spec.algorithm).__name__} has no wire "
            "form; register a recipe (repro.run.register_algorithm) and send "
            "its name",
        )
    if spec.engine is not None and not isinstance(spec.engine, str):
        raise WireFormatError(
            "engine",
            f"engine instance {type(spec.engine).__name__} has no wire form; "
            "send an engine name",
        )
    return {
        "runspec": WIRE_VERSION,
        "graph": _encode_graph(spec.graph),
        "algorithm": spec.algorithm,
        "params": _require_jsonable("params", spec.params),
        "alpha": spec.alpha,
        "weights": _encode_weights(spec.weights),
        "engine": spec.engine,
        "faults": _encode_faults(spec.faults),
        "fault_seed": spec.fault_seed,
        "seed": spec.seed,
        "graph_seed": spec.graph_seed,
        "validate": spec.validate,
        "max_rounds": spec.max_rounds,
        "bandwidth_words": spec.bandwidth_words,
        "strict": spec.strict,
        "knows_max_degree": spec.knows_max_degree,
        "guarantee": spec.guarantee,
        "config": None if spec.config is None else _require_jsonable("config", spec.config),
        "shards": spec.shards,
    }


#: Substrings that identify the offending field in RunSpec construction
#: errors (whose messages predate the wire format and name things their own
#: way).  Checked in order; first hit wins.
_CONSTRUCTION_HINTS = (
    ("unknown algorithm", "algorithm"),
    ("unknown fault model", "faults"),
    ("unknown engine", "engine"),
    ("validate must be", "validate"),
    ("alpha must be", "alpha"),
    ("max_rounds must be", "max_rounds"),
    ("bandwidth_words must be", "bandwidth_words"),
    ("shards must be", "shards"),
    ("shards requires", "shards"),
)


def spec_from_dict(payload: Any) -> RunSpec:
    """Decode a wire dict into a validated :class:`RunSpec`.

    Unknown keys are rejected with a listing error; every validation
    failure -- including ``RunSpec``'s own construction-time checks --
    surfaces as :class:`WireFormatError` naming the bad field.
    """
    if not isinstance(payload, Mapping):
        raise WireFormatError(None, f"must be a JSON object, got {type(payload).__name__}")
    data = dict(payload)
    version = data.pop("runspec", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise WireFormatError(
            "runspec", f"unsupported wire version {version!r} (this build speaks {WIRE_VERSION})"
        )
    for key in data:
        try:
            registry_lookup(_FIELD_DECODERS, key, "RunSpec field")
        except KeyError as error:
            raise WireFormatError(key, error.args[0]) from None
    if "graph" not in data:
        raise WireFormatError("graph", "is required")
    kwargs = {key: _FIELD_DECODERS[key](value) for key, value in data.items()}
    try:
        return RunSpec(**kwargs)
    except WireFormatError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else str(error)
        field = None
        for hint, name in _CONSTRUCTION_HINTS:
            if hint in message:
                field = name
                break
        if field is None:
            for name in _FIELD_DECODERS:
                if name in message:
                    field = name
                    break
        raise WireFormatError(field, message) from error
