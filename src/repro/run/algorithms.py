"""The algorithm registry behind :class:`~repro.run.spec.RunSpec`.

Every named algorithm is a *recipe*: a function that, given the compiled
graph and the run spec, resolves everything the simulator needs --

* the :class:`~repro.congest.algorithm.SynchronousAlgorithm` instance built
  from the spec's ``params``,
* the ``alpha`` handed to the network (``None`` for the alpha-free
  algorithms),
* whether nodes globally know ``Delta`` (Remark 4.4 relaxes this),
* the proven approximation guarantee to attach to the result.

The seven built-in recipes mirror the legacy ``solve_*`` helpers line for
line, which is what makes those helpers byte-identical thin wrappers over
the unified API.  The distributed baselines and ablation variants used by
the scenario registry are registered here too, so a ``RunSpec`` can name
any of them uniformly.

Unknown names raise a ``KeyError`` that lists the available registrations
(via :func:`registry_lookup`, the same helper behind
:func:`repro.core.api.resolve_solver`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.congest.algorithm import SynchronousAlgorithm

__all__ = [
    "ALGORITHMS",
    "AlgorithmRecipe",
    "ResolvedRun",
    "available_algorithms",
    "register_algorithm",
    "registry_lookup",
    "resolve_algorithm",
]


def registry_lookup(registry: Mapping[str, Any], name: str, kind: str) -> Any:
    """Look up ``name`` in ``registry``; unknown names raise a ``KeyError``
    that lists every known name.

    Shared by :func:`resolve_algorithm`, :func:`repro.core.api.resolve_solver`
    and the :class:`~repro.run.spec.RunSpec` validation, so the error reads
    the same wherever a bad name is given.
    """
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown {kind} {name!r}; known {kind}s: {known}") from None


@dataclass(frozen=True)
class ResolvedRun:
    """Everything a recipe resolved for one execution."""

    algorithm: SynchronousAlgorithm
    alpha: Optional[int]
    knows_max_degree: bool
    guarantee: Optional[float]


#: A recipe maps ``(compiled graph, run spec)`` to a :class:`ResolvedRun`.
AlgorithmRecipe = Callable[[Any, Any], ResolvedRun]


def _resolve_alpha(compiled, alpha: Optional[int]) -> int:
    """The legacy ``_resolve_alpha``, against the compiled degeneracy bound."""
    if alpha is not None:
        if alpha < 1:
            raise ValueError("alpha must be at least 1")
        return alpha
    return compiled.default_alpha


def _params(spec, **defaults):
    merged = dict(defaults)
    merged.update(spec.params)
    return merged


# --------------------------------------------------------------------------
# The paper's seven entry points (mirroring core.api's solve_* helpers)
# --------------------------------------------------------------------------

def _deterministic(compiled, spec) -> ResolvedRun:
    """Theorems 1.1 / 3.1: dispatch on weights like ``solve_mds``."""
    from repro.core.unweighted import UnweightedMDSAlgorithm
    from repro.core.weighted import WeightedMDSAlgorithm

    params = _params(spec, epsilon=0.1)
    alpha = _resolve_alpha(compiled, spec.alpha)
    if compiled.is_unweighted:
        algorithm = UnweightedMDSAlgorithm(**params)
    else:
        algorithm = WeightedMDSAlgorithm(**params)
    return ResolvedRun(algorithm, alpha, True, algorithm.approximation_guarantee(alpha))


def _weighted(compiled, spec) -> ResolvedRun:
    from repro.core.weighted import WeightedMDSAlgorithm

    params = _params(spec, epsilon=0.1)
    alpha = _resolve_alpha(compiled, spec.alpha)
    algorithm = WeightedMDSAlgorithm(**params)
    return ResolvedRun(algorithm, alpha, True, algorithm.approximation_guarantee(alpha))


def _randomized(compiled, spec) -> ResolvedRun:
    from repro.core.randomized import RandomizedMDSAlgorithm

    params = _params(spec, t=1)
    alpha = _resolve_alpha(compiled, spec.alpha)
    algorithm = RandomizedMDSAlgorithm(**params)
    return ResolvedRun(algorithm, alpha, True, algorithm.approximation_guarantee(alpha))


def _general(compiled, spec) -> ResolvedRun:
    """Theorem 1.3; alpha-free (``spec.alpha`` is ignored, like the helper)."""
    from repro.core.general_graphs import GeneralGraphMDSAlgorithm

    algorithm = GeneralGraphMDSAlgorithm(**_params(spec, k=2))
    guarantee = algorithm.approximation_guarantee(compiled.max_degree)
    return ResolvedRun(algorithm, None, True, guarantee)


def _forest(compiled, spec) -> ResolvedRun:
    from repro.core.trees import ForestMDSAlgorithm

    del compiled
    return ResolvedRun(ForestMDSAlgorithm(**_params(spec)), None, True, 3.0)


def _unknown_degree(compiled, spec) -> ResolvedRun:
    from repro.core.unknown_params import UnknownDegreeMDSAlgorithm

    params = _params(spec, epsilon=0.1)
    alpha = _resolve_alpha(compiled, spec.alpha)
    algorithm = UnknownDegreeMDSAlgorithm(**params)
    guarantee = (2 * alpha + 1) * (1 + algorithm.epsilon)
    return ResolvedRun(algorithm, alpha, False, guarantee)


def _unknown_arboricity(compiled, spec) -> ResolvedRun:
    """Remark 4.5; runs without alpha, guarantee cites the degeneracy bound."""
    from repro.core.unknown_params import UnknownArboricityMDSAlgorithm

    params = _params(spec, epsilon=0.25)
    algorithm = UnknownArboricityMDSAlgorithm(**params)
    guarantee = (2 * compiled.default_alpha + 1) * (2 + 3 * algorithm.epsilon)
    return ResolvedRun(algorithm, None, False, guarantee)


# --------------------------------------------------------------------------
# Distributed baselines and ablations (the scenario registry's extra solvers)
# --------------------------------------------------------------------------

def _lw_deterministic(compiled, spec) -> ResolvedRun:
    from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm

    del compiled
    return ResolvedRun(LWDeterministicAlgorithm(**_params(spec)), spec.alpha, True, None)


def _lw_randomized(compiled, spec) -> ResolvedRun:
    from repro.baselines.lenzen_wattenhofer import LWRandomizedAlgorithm

    del compiled
    return ResolvedRun(LWRandomizedAlgorithm(**_params(spec)), spec.alpha, True, None)


def _msw_combinatorial(compiled, spec) -> ResolvedRun:
    from repro.baselines.msw import MSWStyleAlgorithm

    del compiled
    return ResolvedRun(MSWStyleAlgorithm(**_params(spec)), spec.alpha, True, None)


def _weighted_lambda_scaled(compiled, spec) -> ResolvedRun:
    """Theorem 1.1 with the partial-phase threshold lambda scaled (E10)."""
    from repro.core.partial import theorem11_lambda
    from repro.core.weighted import WeightedMDSAlgorithm

    params = _params(spec, epsilon=0.2, lambda_scale=1.0)
    lambda_scale = params.pop("lambda_scale")
    alpha = _resolve_alpha(compiled, spec.alpha)
    lambda_value = theorem11_lambda(alpha, params["epsilon"]) * lambda_scale
    algorithm = WeightedMDSAlgorithm(lambda_value=lambda_value, **params)
    guarantee = algorithm.approximation_guarantee(alpha) if lambda_scale == 1.0 else None
    return ResolvedRun(algorithm, alpha, True, guarantee)


#: Named algorithm recipes.  The first seven are the paper's public entry
#: points (the names the legacy ``SOLVERS`` registry used); the rest are the
#: baselines/ablations previously reachable only through the scenario
#: registry's ``EXTRA_SOLVERS``.
ALGORITHMS: Dict[str, AlgorithmRecipe] = {
    "deterministic": _deterministic,
    "weighted": _weighted,
    "randomized": _randomized,
    "general": _general,
    "forest": _forest,
    "unknown-degree": _unknown_degree,
    "unknown-arboricity": _unknown_arboricity,
    "lw-deterministic": _lw_deterministic,
    "lw-randomized": _lw_randomized,
    "msw-combinatorial": _msw_combinatorial,
    "weighted-lambda-scaled": _weighted_lambda_scaled,
}


def available_algorithms() -> Tuple[str, ...]:
    """Return the registered algorithm names, sorted."""
    return tuple(sorted(ALGORITHMS))


def resolve_algorithm(name: str) -> AlgorithmRecipe:
    """Return the recipe registered under ``name`` (``KeyError`` lists all)."""
    return registry_lookup(ALGORITHMS, name, "algorithm")


def register_algorithm(
    name: str, recipe: AlgorithmRecipe, replace: bool = False
) -> AlgorithmRecipe:
    """Register a custom recipe under ``name``; rejects silent redefinition."""
    if not replace and name in ALGORITHMS:
        raise ValueError(f"algorithm {name!r} is already registered")
    ALGORITHMS[name] = recipe
    return recipe
