"""The result type shared by every execution path.

:class:`DominatingSetResult` historically lived in :mod:`repro.core.api`;
it moved here when the ``solve_*`` helpers became wrappers over the unified
execution API (``repro.core.api`` re-exports it, so existing imports keep
working).  :func:`package_result` is the one place a raw simulator
:class:`~repro.congest.simulator.RunResult` is turned into a verified,
user-facing result -- the legacy ``_package`` helper, now with an explicit
validation policy.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Set

import networkx as nx

from repro.congest.metrics import RunMetrics
from repro.congest.simulator import RunResult
from repro.graphs.validation import dominating_set_weight, is_dominating_set

__all__ = ["DominatingSetResult", "package_result", "package_result_csr", "result_bytes"]


@dataclass
class DominatingSetResult:
    """The outcome of running one dominating-set algorithm on one graph.

    ``is_valid`` is ``True``/``False`` when the output was checked against
    the graph (the default policy), and ``None`` when the run was executed
    with ``validate="skip"`` -- unknown, not valid.
    """

    algorithm: str
    dominating_set: Set[Hashable]
    weight: int
    rounds: int
    is_valid: Optional[bool]
    metrics: RunMetrics
    outputs: Dict[Hashable, Any] = field(repr=False, default_factory=dict)
    guarantee: Optional[float] = None

    def __len__(self) -> int:
        return len(self.dominating_set)

    @property
    def engine_used(self) -> Optional[str]:
        """The engine that actually executed the run.

        ``"kernel"`` only when a true array kernel ran; a kernel request
        that fell back to the batched engine reports ``"batched"``, so a
        benchmark can no longer mistake a fallback run for a kernel run.
        """
        return self.metrics.engine_used


def package_result(
    graph: nx.Graph,
    result: RunResult,
    guarantee: Optional[float] = None,
    validate: bool = True,
) -> DominatingSetResult:
    """Package a simulator run into a :class:`DominatingSetResult`.

    ``validate=False`` skips the independent dominating-set re-check (an
    ``O(n + m)`` pass) and records ``is_valid=None``; the weight is always
    computed -- it is cheap and every consumer reads it.
    """
    selected = result.selected_nodes()
    return DominatingSetResult(
        algorithm=result.algorithm_name,
        dominating_set=selected,
        weight=dominating_set_weight(graph, selected),
        rounds=result.rounds,
        is_valid=is_dominating_set(graph, selected) if validate else None,
        metrics=result.metrics,
        outputs=result.outputs,
        guarantee=guarantee,
    )


def package_result_csr(
    csr_graph,
    result: RunResult,
    guarantee: Optional[float] = None,
    validate: bool = True,
) -> DominatingSetResult:
    """:func:`package_result` for CSR-backed kernel runs.

    Weight and the optional domination re-check run as array reductions
    over the CSR layout (:mod:`repro.graphs.large_scale`) instead of graph
    traversals, so packaging stays cheap at 10^5 nodes.
    """
    from repro.graphs.large_scale import csr_is_dominating_set

    selected = result.selected_nodes()
    weights = csr_graph.weight_array()
    weight = 0
    if selected:
        import numpy as np

        chosen = np.fromiter(selected, dtype=np.int64, count=len(selected))
        weight = int(weights[chosen].sum())
    return DominatingSetResult(
        algorithm=result.algorithm_name,
        dominating_set=selected,
        weight=weight,
        rounds=result.rounds,
        is_valid=csr_is_dominating_set(csr_graph, selected) if validate else None,
        metrics=result.metrics,
        outputs=result.outputs,
        guarantee=guarantee,
    )


def result_bytes(result: DominatingSetResult) -> bytes:
    """A canonical byte form of everything a result observably carries.

    Two executions are "byte-identical" exactly when their ``result_bytes``
    agree; this is the comparator behind every new-vs-legacy parity gate
    (``python -m repro.run.smoke``, ``tests/run/test_parity_grid.py``, the
    E13 benchmark).  The set is serialised in sorted-repr order so iteration
    order can never mask or fake a difference.

    ``RunMetrics.engine_used`` is normalised away: it names the engine that
    ran, which by design differs between the executions this comparator is
    meant to prove equivalent.  Read it off ``result.engine_used`` directly
    when the identity of the executing engine is the thing under test.
    """
    from dataclasses import replace

    return pickle.dumps(
        (
            result.algorithm,
            sorted(map(repr, result.dominating_set)),
            result.weight,
            result.rounds,
            result.is_valid,
            replace(result.metrics, engine_used=None),
            result.outputs,
            result.guarantee,
        )
    )
