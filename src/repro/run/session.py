"""Compile-once, run-many execution sessions.

The legacy entry points rebuilt everything per call: the degeneracy bound,
the :class:`~repro.congest.network.Network` (one ``NodeContext`` per node),
the engines' CSR adjacency layout, the payload-bit memo and -- under a
fault model -- the fault session's per-edge arrays.  A :class:`Session`
builds each of those exactly once per graph and reuses them across every
run that shares the graph, whatever the seed, algorithm or fault model:

* **graph canonicalisation** -- the certified arboricity (degeneracy)
  bound, the weighted/unweighted dispatch and the maximum degree are
  computed lazily, once;
* **network reuse** -- one compiled :class:`Network` is re-targeted per run
  (:meth:`Network.rebind` swaps the globally-known config,
  :meth:`Network.reset` rewinds every node's private random stream to the
  run's seed), producing executions byte-identical to a freshly built
  network;
* **adjacency + memo reuse** -- the engines and the fault runtime read the
  network's cached :class:`~repro.congest.network.NetworkLayout` (CSR
  arrays, degree vector, payload-bit memo), so none of it is rebuilt;
* **fault plans** -- a :class:`~repro.faults.spec.FaultSpec` (or named
  model) is materialised once per ``(regime, seed)`` and cached.

``Session.run_many`` streams results as they complete and can fan the batch
out across worker processes (reusing the orchestration runner's pool
machinery); a parallel batch is byte-identical to a serial one.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec, get_default_engine, get_engine
from repro.congest.network import Network
from repro.congest.simulator import Simulator
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import GraphInstance
from repro.run.algorithms import resolve_algorithm, ResolvedRun
from repro.run.result import DominatingSetResult, package_result, package_result_csr
from repro.run.spec import RunSpec

__all__ = ["CompiledGraph", "Session", "execute", "fault_model_label"]


def fault_model_label(faults: Any) -> Optional[str]:
    """A short display label for a spec's fault source (cell-key reporting)."""
    if faults is None:
        return None
    if isinstance(faults, str):
        return faults
    label = getattr(faults, "display_label", None)
    if label is not None:
        return str(label)
    return type(faults).__name__


def _as_csr(graph: Any):
    """Return ``graph`` as a :class:`~repro.graphs.large_scale.CSRGraph`, else ``None``.

    Checked through ``sys.modules`` so the large-scale module (and NumPy)
    is never imported by sessions that only ever see dict-based graphs: if
    the caller holds a ``CSRGraph``, its module is necessarily loaded.
    """
    module = sys.modules.get("repro.graphs.large_scale")
    if module is None:
        return None
    return graph if isinstance(graph, module.CSRGraph) else None


class CompiledGraph:
    """Everything reusable about one graph, compiled lazily.

    Create through :meth:`Session.compile`; holds strong references to the
    graph (and the source object it came from), so identity-keyed session
    caching stays sound.  The compiled network snapshots node weights and
    topology -- mutate the graph and you must compile again
    (:meth:`Session.invalidate`).
    """

    def __init__(self, graph: nx.Graph, source: Any = None, weights_source: Any = None):
        self.graph = graph
        # Strong references to the objects whose id() keys the session cache:
        # as long as this entry lives, neither id can be recycled by a new
        # object, so an identity hit is always a true hit.
        self.source = source
        self.weights_source = weights_source
        # Always the degeneracy bound, never a caller-pinned alpha: the
        # legacy helpers certify alpha themselves when none is given, and an
        # explicitly pinned instance alpha reaches runs via RunSpec.alpha.
        self._default_alpha: Optional[int] = None
        self._is_unweighted: Optional[bool] = None
        self._max_degree: Optional[int] = None
        self._network: Optional[Network] = None
        self._network_key: Optional[Tuple] = None
        self._plans: Dict[Tuple, Any] = {}

    # -- canonicalisation (each computed at most once) --------------------

    @property
    def default_alpha(self) -> int:
        """The certified arboricity bound: ``max(1, degeneracy)``.

        CSR graphs use their generator's certificate when one exists, and
        the CSR-native degeneracy sweep otherwise -- the same bound the
        dict-based path computes.
        """
        if self._default_alpha is None:
            csr = _as_csr(self.graph)
            if csr is not None:
                from repro.graphs.large_scale import csr_degeneracy

                certified = csr.alpha if csr.alpha is not None else csr_degeneracy(csr)
                self._default_alpha = max(1, certified)
            else:
                self._default_alpha = max(1, arboricity_upper_bound(self.graph))
        return self._default_alpha

    @property
    def is_unweighted(self) -> bool:
        if self._is_unweighted is None:
            csr = _as_csr(self.graph)
            if csr is not None:
                self._is_unweighted = csr.is_unweighted
            else:
                graph = self.graph
                self._is_unweighted = all(
                    graph.nodes[node].get("weight", 1) == 1 for node in graph.nodes()
                )
        return self._is_unweighted

    @property
    def max_degree(self) -> int:
        if self._max_degree is None:
            csr = _as_csr(self.graph)
            if csr is not None:
                self._max_degree = csr.max_degree
            else:
                self._max_degree = max(dict(self.graph.degree()).values(), default=0)
        return self._max_degree

    # -- the reusable network ---------------------------------------------

    def network(
        self,
        alpha: Optional[int],
        config: Optional[Mapping[str, Any]],
        knows_max_degree: bool,
        seed: int,
    ) -> Network:
        """Return the compiled network, re-targeted for one run.

        The first call builds it; later calls rebind the globally-known
        config when it changed and rewind every node's random stream to
        ``seed``, which is observationally identical to constructing
        ``Network(graph, alpha=..., config=..., seed=seed, ...)`` afresh --
        minus the per-node construction cost and with the cached adjacency
        layout (CSR arrays, payload-bit memo) carried over.
        """
        key = (
            alpha,
            None if config is None else dict(config),
            knows_max_degree,
        )
        if self._network is None:
            self._network = Network(
                self.graph,
                alpha=alpha,
                config=config,
                seed=seed,
                knows_max_degree=knows_max_degree,
            )
            self._network_key = key
        else:
            if key != self._network_key:
                self._network.rebind(
                    alpha, config=config, knows_max_degree=knows_max_degree
                )
                self._network_key = key
            self._network.reset(seed=seed)
        return self._network

    # -- fault plans -------------------------------------------------------

    def fault_plan(self, spec: RunSpec):
        """Resolve ``spec.faults`` to a concrete plan (memoized per seed)."""
        faults = spec.faults
        if faults is None:
            return None
        from repro.faults import FAULT_MODELS, FaultPlan

        if isinstance(faults, FaultPlan):
            return faults
        if isinstance(faults, str):
            from repro.run.algorithms import registry_lookup

            faults = registry_lookup(FAULT_MODELS, faults, "fault model")
        seed = spec.fault_seed if spec.fault_seed is not None else spec.seed
        try:
            key = (faults, seed)
            cached = self._plans.get(key)
        except TypeError:  # unhashable custom spec: materialise every time
            return faults.materialize(self.graph, seed)
        if cached is None:
            cached = faults.materialize(self.graph, seed)
            self._plans[key] = cached
        return cached


class Session:
    """A reusable execution context: compiles graphs once, runs specs many.

    Parameters
    ----------
    engine:
        Default engine for specs that leave ``engine=None``; ``None`` (the
        default) falls through to the process-wide default, exactly like
        the legacy helpers.
    tracer:
        Optional :class:`repro.obs.trace.Tracer` attached to every run of
        this session (overridable per call via ``run(spec, tracer=...)``).
        With no tracer (or a disabled one) every execution takes the exact
        untraced code path -- the zero-overhead-when-off contract gated by
        the E17 benchmark; with a tracer, runs are routed through the
        hooked round loop under an empty fault plan (byte-identical by the
        zero-fault parity guarantee) so round timestamps can be captured on
        all three engines.

    Usable as a context manager (``with Session() as session: ...``); exit
    drops the compiled-state cache.
    """

    def __init__(self, engine: EngineSpec = None, tracer: Optional[Any] = None):
        get_engine(engine)  # fail fast on unknown engine names
        self.engine = engine
        self.tracer = tracer
        self._compiled: Dict[Tuple, CompiledGraph] = {}

    # -- compilation -------------------------------------------------------

    def _graph_key(self, spec: RunSpec) -> Tuple:
        weights_key = None if spec.weights is None else id(spec.weights)
        seed_key = spec.graph_seed if (
            spec.weights is not None or not isinstance(spec.graph, (nx.Graph, GraphInstance))
        ) else 0
        return (id(spec.graph), weights_key, seed_key)

    def compile(self, spec: RunSpec) -> CompiledGraph:
        """Return the compiled state for ``spec``'s graph (cached by identity).

        Two specs sharing the same graph object (and weight source) share
        one :class:`CompiledGraph`; a buildable graph source is materialised
        once per ``graph_seed``.
        """
        key = self._graph_key(spec)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self._build(spec)
            self._compiled[key] = compiled
        return compiled

    def _build(self, spec: RunSpec) -> CompiledGraph:
        source = spec.graph
        if _as_csr(source) is not None:
            if spec.weights is not None:
                raise TypeError(
                    "RunSpec.weights cannot be applied to a CSRGraph; bake "
                    "weights into the CSR arrays instead (e.g. "
                    "repro.graphs.large_scale.random_integer_weights)"
                )
            return CompiledGraph(source, source=source)
        if isinstance(source, nx.Graph):
            graph = source
        elif isinstance(source, GraphInstance):
            graph = source.graph
        elif callable(getattr(source, "build", None)):
            graph = source.build(spec.graph_seed).graph
        else:
            raise TypeError(
                "RunSpec.graph must be a networkx.Graph, a GraphInstance, or "
                f"an object with a build(seed) method, got {type(source).__name__}"
            )
        if spec.weights is not None:
            graph = graph.copy()
            apply = getattr(spec.weights, "apply", None)
            if callable(apply):
                apply(graph, spec.graph_seed)
            elif isinstance(spec.weights, Mapping):
                nx.set_node_attributes(graph, dict(spec.weights), "weight")
            else:
                raise TypeError(
                    "RunSpec.weights must be a node->weight mapping or an "
                    "object with an apply(graph, seed) method, got "
                    f"{type(spec.weights).__name__}"
                )
        return CompiledGraph(graph, source=source, weights_source=spec.weights)

    def invalidate(self, graph: Any = None) -> None:
        """Drop compiled state -- for one graph source, or everything.

        Call after mutating a graph that was already compiled (the session
        snapshots weights and topology at compile time).
        """
        if graph is None:
            self._compiled.clear()
            return
        for key in [key for key in self._compiled if key[0] == id(graph)]:
            del self._compiled[key]

    @property
    def compiled_count(self) -> int:
        return len(self._compiled)

    # -- execution ---------------------------------------------------------

    def _resolve(self, compiled: CompiledGraph, spec: RunSpec) -> ResolvedRun:
        if isinstance(spec.algorithm, str):
            return resolve_algorithm(spec.algorithm)(compiled, spec)
        knows = True if spec.knows_max_degree is None else spec.knows_max_degree
        return ResolvedRun(spec.algorithm, spec.alpha, knows, spec.guarantee)

    def run(self, spec: RunSpec, *, tracer: Optional[Any] = None) -> DominatingSetResult:
        """Execute one spec, reusing every piece of compiled state it allows.

        ``tracer`` overrides the session-level tracer for this run only.
        With no (enabled) tracer, execution is exactly the untraced path.
        """
        active = tracer if tracer is not None else self.tracer
        if active is not None and not getattr(active, "enabled", True):
            active = None
        if active is not None:
            return self._run_traced(spec, active)
        compiled = self.compile(spec)
        resolved = self._resolve(compiled, spec)
        csr = _as_csr(compiled.graph)
        if csr is not None:
            raw = self._simulate_csr(compiled, csr, resolved, spec)
            return self._package_csr(csr, raw, resolved, spec)
        raw = self._simulate_network(compiled, resolved, spec)
        return self._package_network(compiled, raw, resolved, spec)

    def _run_traced(self, spec: RunSpec, tracer: Any) -> DominatingSetResult:
        """The traced twin of :meth:`run`: same simulate/package calls, with
        phase timing, live round timestamps, and a post-run span emission.

        Fault-free network runs are wrapped in an *empty*
        :class:`~repro.faults.FaultPlan` (``AdversarialEngine(None, ...)``)
        so the hooked round loop -- whose ``begin_round`` the
        :class:`~repro.obs.trace.TracingHooks` proxy timestamps -- executes
        on every engine; the fault test-suite holds that wrapping
        byte-identical to the plain path.  Fault-free CSR runs keep the
        closed-form kernel path untouched (no per-round hooks at 10^5-node
        scale); their round records are emitted from the run's metrics with
        ``t_start_s`` null.
        """
        from repro.obs.trace import RoundTimer, emit_run_trace

        run_started = time.perf_counter()
        compiled = self.compile(spec)
        resolved = self._resolve(compiled, spec)
        compile_done = time.perf_counter()
        timer = RoundTimer()
        csr = _as_csr(compiled.graph)
        if csr is not None:
            raw = self._simulate_csr(
                compiled, csr, resolved, spec, hook_wrapper=timer.wrap
            )
        else:
            raw = self._simulate_network(
                compiled, resolved, spec, hook_wrapper=timer.wrap
            )
        execute_done = time.perf_counter()
        if csr is not None:
            result = self._package_csr(csr, raw, resolved, spec)
        else:
            result = self._package_network(compiled, raw, resolved, spec)
        package_done = time.perf_counter()
        n = csr.n if csr is not None else compiled.graph.number_of_nodes()
        emit_run_trace(
            tracer,
            algorithm=spec.algorithm_label,
            n=n,
            seed=spec.seed,
            result=result,
            phase_seconds={
                "compile": compile_done - run_started,
                "execute": execute_done - compile_done,
                "package": package_done - execute_done,
            },
            wall_s=package_done - run_started,
            round_starts=timer.relative_starts(run_started),
            fault_model=fault_model_label(spec.faults),
        )
        return result

    def _simulate_network(
        self,
        compiled: CompiledGraph,
        resolved: ResolvedRun,
        spec: RunSpec,
        hook_wrapper: Optional[Any] = None,
    ):
        network = compiled.network(
            alpha=resolved.alpha,
            config=spec.config,
            knows_max_degree=resolved.knows_max_degree,
            seed=spec.seed,
        )
        engine_spec = spec.engine if spec.engine is not None else self.engine
        sharded = self._resolve_sharded(engine_spec, spec)
        if sharded is not None:
            engine_spec = sharded
        plan = compiled.fault_plan(spec)
        if plan is not None or (hook_wrapper is not None and sharded is None):
            # Fault-free sharded runs stay unwrapped: per-round hooks cannot
            # cross the process boundary, so traced runs emit their round
            # records from the metrics (like the fault-free CSR path), and
            # faulted sharded cells surface EngineCapabilityError below.
            from repro.faults import AdversarialEngine

            engine_spec = AdversarialEngine(
                plan, inner=engine_spec, hook_wrapper=hook_wrapper
            )
        simulator = Simulator(
            bandwidth_words=spec.bandwidth_words,
            max_rounds=spec.max_rounds,
            strict=spec.strict,
            engine=engine_spec,
        )
        return simulator.run(network, resolved.algorithm)

    @staticmethod
    def _resolve_sharded(engine_spec: Any, spec: RunSpec):
        """A :class:`ShardedEngine` instance when the run selects the sharded
        tier (folding in ``spec.shards``), else ``None``.

        ``spec.shards`` with any other resolved engine is an error -- the
        knob only exists on the sharded tier.
        """
        selected = (
            engine_spec == "sharded"
            or getattr(engine_spec, "name", None) == "sharded"
        )
        if not selected and spec.shards is None:
            return None
        from repro.congest.engine import get_engine
        from repro.congest.sharded.engine import ShardedEngine

        engine = get_engine(engine_spec)
        if not isinstance(engine, ShardedEngine):
            raise ValueError(
                f"shards requires engine='sharded', got engine={engine.name!r}"
            )
        if spec.shards is not None and engine.shards != spec.shards:
            engine = ShardedEngine(
                shards=spec.shards,
                start_method=engine.start_method,
                barrier_timeout=engine.barrier_timeout,
            )
        return engine

    def _package_network(
        self, compiled: CompiledGraph, raw, resolved: ResolvedRun, spec: RunSpec
    ) -> DominatingSetResult:
        return package_result(
            compiled.graph,
            raw,
            guarantee=resolved.guarantee,
            validate=spec.validate == "full",
        )

    def _simulate_csr(
        self,
        compiled: CompiledGraph,
        csr,
        resolved: ResolvedRun,
        spec: RunSpec,
        hook_wrapper: Optional[Any] = None,
    ):
        """Execute a spec on a streamed CSR graph through the kernel tier.

        No :class:`Network` (and no per-node context objects) is ever
        built: the kernel runs directly over the CSR arrays, which is what
        makes 10^5-node instances tractable.  Fault plans run here too: the
        plan compiles straight against the CSR arrays
        (:meth:`~repro.faults.session.FaultSession.for_csr`) and the kernels
        apply it, byte-identical to a reference run on ``to_networkx()``
        under the same plan.  Only algorithms *without* a kernel need the
        dict-based path (``CSRGraph.to_networkx()``).
        """
        from repro.congest.engine import get_engine
        from repro.congest.errors import EngineCapabilityError
        from repro.congest.kernels import kernel_for
        from repro.congest.kernels.engine import KernelEngine
        from repro.congest.kernels.grid import grid_from_csr
        from repro.congest.network import shared_config
        from repro.congest.simulator import RunResult, resolve_budget_and_limit

        engine_spec = spec.engine if spec.engine is not None else self.engine
        # With nothing explicitly selected, a CSR input resolves straight to
        # the kernel tier -- the only engine that can execute it -- instead
        # of tripping over the process-wide default.
        engine = get_engine("kernel" if engine_spec is None else engine_spec)
        fault_label = fault_model_label(spec.faults)
        if engine.name == "sharded" or spec.shards is not None:
            sharded = self._resolve_sharded(engine, spec)
            return self._simulate_csr_sharded(
                compiled, csr, resolved, spec, sharded, fault_label
            )
        if not isinstance(engine, KernelEngine):
            raise EngineCapabilityError(
                f"CSRGraph inputs run on engine='kernel' or engine='sharded' only "
                f"(got {engine.name!r}); use CSRGraph.to_networkx() for the "
                "reference/batched engines",
                algorithm=spec.algorithm_label,
                engine=engine.name,
                fault_model=fault_label,
            )
        algorithm = resolved.algorithm
        plan = compiled.fault_plan(spec)
        kernel = kernel_for(algorithm)
        if kernel is None:
            if plan is not None:
                raise EngineCapabilityError(
                    f"unsupported capability cell: algorithm "
                    f"{spec.algorithm_label!r} on engine='kernel' with faults -- "
                    "the algorithm has no kernel, and CSRGraph runs cannot fall "
                    "back to the per-node engines; use CSRGraph.to_networkx() "
                    "with engine='batched'",
                    algorithm=spec.algorithm_label,
                    engine="kernel",
                    fault_model=fault_label,
                )
            raise EngineCapabilityError(
                f"algorithm {spec.algorithm_label!r} has no kernel implementation; "
                "CSRGraph runs cannot fall back to the per-node engines -- use "
                "CSRGraph.to_networkx() instead",
                algorithm=spec.algorithm_label,
                engine="kernel",
            )
        hooks = None
        if plan is not None:
            from repro.faults.session import FaultSession

            hooks = FaultSession.for_csr(plan, csr)
            if hook_wrapper is not None:
                # Faulted CSR runs already pay the hooked driver; wrapping
                # the session adds round timestamps to the trace.  Unfaulted
                # CSR runs keep hooks=None -- the closed-form kernel path --
                # so tracing never distorts the 10^5-node scale target.
                hooks = hook_wrapper(hooks)
        config = shared_config(
            csr.n, csr.max_degree, resolved.alpha, spec.config,
            resolved.knows_max_degree,
        )
        budget, limit = resolve_budget_and_limit(
            algorithm, csr, spec.bandwidth_words, spec.max_rounds
        )
        outputs, metrics = kernel(
            grid_from_csr(csr), config, algorithm,
            budget=budget, limit=limit, strict=spec.strict,
            seed=spec.seed, hooks=hooks,
        )
        metrics.engine_used = engine.name
        return RunResult(
            algorithm_name=algorithm.name, outputs=outputs, metrics=metrics
        )

    def _simulate_csr_sharded(
        self, compiled, csr, resolved, spec: RunSpec, engine, fault_label
    ):
        """Execute a CSR spec across shard worker processes.

        Same capability contract as the engine itself: fault plans and
        unkerneled algorithms raise :class:`EngineCapabilityError` so sweeps
        surface the cell as a structured skip.
        """
        from repro.congest.errors import EngineCapabilityError
        from repro.congest.kernels.grid import grid_from_csr
        from repro.congest.network import shared_config
        from repro.congest.sharded.engine import (
            has_sharded_program,
            run_sharded_program,
        )
        from repro.congest.simulator import RunResult, resolve_budget_and_limit

        if compiled.fault_plan(spec) is not None:
            raise EngineCapabilityError(
                "unsupported capability cell: fault plans do not run on "
                "engine='sharded'; run faulted CSR cells on engine='kernel'",
                algorithm=spec.algorithm_label,
                engine="sharded",
                fault_model=fault_label,
            )
        algorithm = resolved.algorithm
        if not has_sharded_program(algorithm):
            raise EngineCapabilityError(
                f"algorithm {spec.algorithm_label!r} has no sharded program; "
                "engine='sharded' supports exactly the kerneled algorithms",
                algorithm=spec.algorithm_label,
                engine="sharded",
            )
        config = shared_config(
            csr.n, csr.max_degree, resolved.alpha, spec.config,
            resolved.knows_max_degree,
        )
        budget, limit = resolve_budget_and_limit(
            algorithm, csr, spec.bandwidth_words, spec.max_rounds
        )
        outputs, metrics = run_sharded_program(
            grid_from_csr(csr), config, algorithm,
            budget=budget, limit=limit, strict=spec.strict,
            seed=spec.seed, shards=engine.shards,
            start_method=engine.start_method,
            barrier_timeout=engine.barrier_timeout,
            tracer=None,
        )
        metrics.engine_used = engine.name
        return RunResult(
            algorithm_name=algorithm.name, outputs=outputs, metrics=metrics
        )

    def _package_csr(
        self, csr, raw, resolved: ResolvedRun, spec: RunSpec
    ) -> DominatingSetResult:
        return package_result_csr(
            csr, raw,
            guarantee=resolved.guarantee,
            validate=spec.validate == "full",
        )

    def run_many(
        self,
        specs: Optional[Iterable[RunSpec]] = None,
        *,
        base: Optional[RunSpec] = None,
        seeds: Optional[Iterable[int]] = None,
        workers: int = 1,
    ) -> Iterator[DominatingSetResult]:
        """Run a batch of specs; yields results in order, as they complete.

        Either pass ``specs`` explicitly, or ``base`` plus ``seeds`` for the
        common multi-seed batch (each seed runs ``dataclasses.replace(base,
        seed=s)``).  ``workers > 1`` fans contiguous chunks of the batch out
        to worker processes through the orchestration runner's pool helper;
        each worker compiles its chunk's graphs once, and the merged stream
        is byte-identical to a serial run (the workers receive the
        submitting process's default engine, so ``engine=None`` resolves
        the same everywhere).
        """
        if specs is None:
            if base is None or seeds is None:
                raise ValueError("run_many needs either specs, or base= and seeds=")
            batch = [dataclasses.replace(base, seed=int(seed)) for seed in seeds]
        else:
            if base is not None or seeds is not None:
                raise ValueError("pass either specs or (base, seeds), not both")
            batch = list(specs)
        if workers > 1 and len(batch) > 1:
            return self._run_many_pooled(batch, workers)
        return (self.run(spec) for spec in batch)

    def _run_many_pooled(
        self, batch: Sequence[RunSpec], workers: int
    ) -> Iterator[DominatingSetResult]:
        # Imported lazily: orchestration sits above this package.
        from repro.orchestration.runner import pool_map_ordered

        chunks = _chunked(batch, workers)
        default_engine = get_default_engine()
        jobs = [(chunk, self.engine, default_engine) for chunk in chunks]

        def _stream() -> Iterator[DominatingSetResult]:
            for results, _duration in pool_map_ordered(_run_chunk, jobs, workers):
                yield from results

        return _stream()

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.invalidate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(engine={self.engine!r}, compiled={self.compiled_count})"


def _chunked(batch: Sequence[RunSpec], workers: int) -> List[List[RunSpec]]:
    """Split into at most ``workers`` contiguous, near-equal chunks."""
    count = min(workers, len(batch))
    size, extra = divmod(len(batch), count)
    chunks: List[List[RunSpec]] = []
    start = 0
    for index in range(count):
        end = start + size + (1 if index < extra else 0)
        chunks.append(list(batch[start:end]))
        start = end
    return chunks


def _run_chunk(job) -> List[DominatingSetResult]:
    """Worker entry point: run one contiguous chunk through a local session.

    The chunk's specs share graphs wherever the submitting session's did
    (they cross the process boundary as one pickle, preserving object
    identity), so the worker compiles each graph once.  The parent's
    process-wide default engine is applied around the chunk -- see
    :func:`repro.orchestration.runner._execute_cell` for why spawn-started
    workers would otherwise silently reset it.
    """
    specs, session_engine, default_engine = job
    from repro.congest.engine import set_default_engine

    previous = set_default_engine(default_engine)
    try:
        session = Session(engine=session_engine)
        return [session.run(spec) for spec in specs]
    finally:
        set_default_engine(previous)


def execute(spec: RunSpec) -> DominatingSetResult:
    """One-shot execution of a :class:`RunSpec` (a throwaway :class:`Session`).

    This is what the legacy ``solve_*`` helpers call; for repeated runs on
    the same graph, create a :class:`Session` and keep it -- that is the
    whole point of the compiled API.
    """
    return Session().run(spec)
