"""The declarative run specification.

A :class:`RunSpec` says *what* to execute; a
:class:`~repro.run.session.Session` (or the one-shot
:func:`~repro.run.session.execute`) decides *how*, reusing compiled state
wherever the spec allows it.  Specs are plain dataclasses: cheap to build,
picklable (which is what lets ``Session.run_many`` fan out across worker
processes), and ``dataclasses.replace``-able for multi-seed batches.

Validation happens at construction: unknown algorithm names, engines and
fault models fail immediately with the same listing errors the rest of the
code base raises (see :func:`repro.run.algorithms.registry_lookup`), not
deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import networkx as nx

from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.engine import EngineSpec, get_engine
from repro.congest.simulator import DEFAULT_BANDWIDTH_WORDS, DEFAULT_MAX_ROUNDS
from repro.run.algorithms import ALGORITHMS, registry_lookup

__all__ = ["RunSpec", "VALIDATION_POLICIES"]

#: Validation policies: ``"full"`` re-checks the output independently (the
#: legacy behavior), ``"skip"`` records ``is_valid=None`` and saves the
#: ``O(n + m)`` pass -- for throughput-critical serving where a downstream
#: verifier (or the guarantee itself) is trusted.
VALIDATION_POLICIES = ("full", "skip")


@dataclass(frozen=True)
class RunSpec:
    """One execution, declaratively.

    Attributes
    ----------
    graph:
        The input: a prebuilt :class:`networkx.Graph`, a
        :class:`~repro.graphs.generators.GraphInstance`, a streamed
        :class:`~repro.graphs.large_scale.CSRGraph` (kernel tier only --
        executed without ever building a network), or any object with a
        ``build(seed) -> GraphInstance`` method (e.g. a registry
        :class:`~repro.orchestration.registry.GraphSpec`), materialised with
        ``graph_seed``.
    algorithm:
        A registered algorithm name (see
        :func:`repro.run.algorithms.available_algorithms`) or a
        :class:`~repro.congest.algorithm.SynchronousAlgorithm` instance for
        ad-hoc runs (the old ``solve_with_algorithm`` escape hatch).
    params:
        Keyword parameters for the named algorithm's recipe (``epsilon``,
        ``t``, ``k``, ...).  Ignored for instance algorithms, which are
        already constructed.
    alpha:
        Certified arboricity upper bound.  ``None`` lets the recipe resolve
        it (the compiled degeneracy bound for the alpha-dependent
        algorithms); alpha-free algorithms ignore it.
    weights:
        Optional node-weight source applied to a *copy* of the graph at
        compile time: a mapping ``node -> weight``, or any object with an
        ``apply(graph, seed)`` method (e.g. a registry ``WeightSpec``,
        seeded with ``graph_seed``).
    engine:
        Simulation engine (``"reference"``/``"batched"``/``"kernel"``/
        ``"sharded"``, an engine instance, or ``None`` for the
        session/process default).
    faults:
        Adversarial regime: a materialised
        :class:`~repro.faults.plan.FaultPlan`, a graph-agnostic
        :class:`~repro.faults.spec.FaultSpec`, or a model name from
        :data:`repro.faults.FAULT_MODELS`.  ``None`` runs fault-free.
    fault_seed:
        Seed used to materialise a ``FaultSpec``/model name against the
        graph; ``None`` derives it from ``seed`` (each seed faces a fresh
        adversary drawn from the same regime).
    seed:
        The execution seed: every node's private random stream derives from
        it.
    graph_seed:
        Seed used when ``graph`` is a buildable spec, and the default seed
        for ``weights`` application.
    validate:
        ``"full"`` (default) or ``"skip"`` -- see
        :data:`VALIDATION_POLICIES`.
    max_rounds / bandwidth_words / strict:
        The simulator budget knobs, with the simulator's defaults.
    knows_max_degree:
        Only consulted for instance algorithms (named recipes fix their own
        knowledge model); ``None`` means the default ``True``.
    guarantee:
        Only consulted for instance algorithms: attached verbatim to the
        result (named recipes compute their proven factor).
    config:
        Extra globally-known entries merged into every node's config
        mapping.
    shards:
        Worker-process count for ``engine="sharded"`` (``None`` uses the
        sharded tier's default).  Setting it with any other explicit engine
        is an error -- results are shard-count-independent, so the knob
        only affects process layout, never outputs.
    """

    graph: Union[nx.Graph, Any]
    algorithm: Union[str, SynchronousAlgorithm] = "deterministic"
    params: Dict[str, Any] = field(default_factory=dict)
    alpha: Optional[int] = None
    weights: Optional[Any] = None
    engine: EngineSpec = None
    faults: Optional[Any] = None
    fault_seed: Optional[int] = None
    seed: int = 0
    graph_seed: int = 0
    validate: str = "full"
    max_rounds: int = DEFAULT_MAX_ROUNDS
    bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS
    strict: bool = True
    knows_max_degree: Optional[bool] = None
    guarantee: Optional[float] = None
    config: Optional[Mapping[str, Any]] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.algorithm, str):
            # Fail fast with the listing KeyError shared with resolve_solver.
            registry_lookup(ALGORITHMS, self.algorithm, "algorithm")
        elif not isinstance(self.algorithm, SynchronousAlgorithm):
            raise TypeError(
                "algorithm must be a registered name or a SynchronousAlgorithm "
                f"instance, got {type(self.algorithm).__name__}"
            )
        if self.validate not in VALIDATION_POLICIES:
            raise ValueError(
                f"validate must be one of {VALIDATION_POLICIES}, got {self.validate!r}"
            )
        if self.alpha is not None and self.alpha < 1:
            raise ValueError("alpha must be at least 1")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.bandwidth_words < 0:
            raise ValueError(f"bandwidth_words must be >= 0, got {self.bandwidth_words}")
        if isinstance(self.engine, str):
            get_engine(self.engine)  # unknown engine names fail fast
        if self.shards is not None:
            if self.shards < 1:
                raise ValueError(f"shards must be >= 1, got {self.shards}")
            if isinstance(self.engine, str) and self.engine != "sharded":
                raise ValueError(
                    f"shards requires engine='sharded', got engine={self.engine!r}"
                )
        if isinstance(self.faults, str):
            from repro.faults import FAULT_MODELS

            registry_lookup(FAULT_MODELS, self.faults, "fault model")

    @property
    def algorithm_label(self) -> str:
        """The algorithm's registry name, or the instance's own name."""
        if isinstance(self.algorithm, str):
            return self.algorithm
        return getattr(self.algorithm, "name", type(self.algorithm).__name__)

    # -- the canonical wire format (see repro.run.wire) --------------------

    def to_dict(self) -> Dict[str, Any]:
        """Encode as the canonical wire dict (stable field order).

        This is the single codec shared by the ``repro serve`` service, the
        CLI (``--spec FILE.json``) and the service cache keys; specs holding
        objects without a wire form (algorithm/engine instances,
        materialised fault plans) raise
        :class:`~repro.run.wire.WireFormatError`.
        """
        from repro.run.wire import spec_to_dict

        return spec_to_dict(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The wire dict as JSON, keys in declaration order."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Decode and validate a wire dict; errors name the bad field."""
        from repro.run.wire import spec_from_dict

        return spec_from_dict(payload)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Decode a JSON wire payload (see :meth:`from_dict`)."""
        import json

        from repro.run.wire import WireFormatError

        try:
            payload = json.loads(text)
        except ValueError as error:
            raise WireFormatError(None, f"not valid JSON: {error}") from None
        return cls.from_dict(payload)
