"""Entry point for ``python -m repro`` -- see :mod:`repro.orchestration.cli`."""

import sys

from repro.orchestration.cli import main

if __name__ == "__main__":
    sys.exit(main())
