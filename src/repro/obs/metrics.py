"""Process-local metrics: counters, gauges, fixed-bucket histograms.

No third-party metrics client: instruments are tiny mutable objects, the
registry is an insertion-ordered dict of metric families, and
:meth:`MetricsRegistry.render` produces the Prometheus text exposition
format (the ``GET /metrics`` body of ``repro serve``).

Histogram quantiles are deliberately conservative: :meth:`Histogram.quantile`
returns the upper bound of the bucket containing the requested rank, so for
any sample stream the reported pXX is **an upper bound on the true pXX**,
tight to one bucket width -- precisely: it equals the smallest bucket bound
``>=`` the true quantile (computed with the same ``rank = max(1,
ceil(q * count))`` convention).  ``tests/obs/test_obs_metrics.py`` holds this
property under hypothesis-generated sample streams.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeakRssMeter",
    "peak_rss_kib",
    "reset_peak_rss",
]


def peak_rss_kib() -> int:
    """This process's peak resident set size in KiB (0 where unknown).

    Prefers ``VmHWM`` from ``/proc/self/status`` over
    ``getrusage(...).ru_maxrss`` because the high-water mark is tracked per
    address space: an exec'd (``spawn``) child starts it fresh, while its
    ``ru_maxrss`` inherits the parent's copy-on-write footprint at fork
    time -- a spawn worker forked off a coordinator holding a 10^7-node
    graph would report the coordinator's peak, not its own.

    This is the one place that normalises ``ru_maxrss`` units on the
    fallback path (Linux reports KiB, macOS bytes); every other peak-RSS
    reader in the package delegates here.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def reset_peak_rss() -> bool:
    """Best-effort reset of this process's RSS high-water mark.

    Writes ``5`` to ``/proc/self/clear_refs`` (Linux), which snaps
    ``VmHWM`` back to the *current* RSS so :func:`peak_rss_kib` afterwards
    reflects only peaks reached from now on.  Returns whether the reset
    took effect; on non-Linux platforms it never does and callers must
    treat the high-water mark as cumulative.
    """
    try:
        with open("/proc/self/clear_refs", "w") as clear_refs:
            clear_refs.write("5")
    except OSError:
        return False
    return True


class PeakRssMeter:
    """Measures the peak RSS *growth* a section of work causes.

    Kernel high-water counters cannot isolate a forked worker's own
    footprint: a fork child's page tables map the parent's copy-on-write
    pages, so both ``ru_maxrss`` *and* ``VmHWM`` start at roughly the
    parent's resident size (a spawn child's ``VmHWM`` starts fresh, but
    its ``ru_maxrss`` still carries the pre-``exec`` footprint).  The
    meter therefore anchors a **baseline**: :meth:`start` resets the
    high-water mark to the current RSS (:func:`reset_peak_rss`, falling
    back to just snapshotting the peak where the reset is unsupported)
    and :meth:`peak_kb` reports the growth above it -- the memory the
    measured work itself demanded, comparable across fork, spawn, and
    inline execution.

    The sweep runner wraps every cell in one of these, so the
    ``maxrss_kb`` telemetry feeding the budget governor's memory
    estimator is the *cell's* peak, never the coordinator's.
    """

    __slots__ = ("_baseline_kb",)

    def __init__(self) -> None:
        self._baseline_kb: Optional[int] = None

    def start(self) -> "PeakRssMeter":
        reset_peak_rss()
        self._baseline_kb = peak_rss_kib()
        return self

    def peak_kb(self) -> int:
        """Peak RSS growth in KiB since :meth:`start` (0 where unknown)."""
        if self._baseline_kb is None:
            return 0
        return max(0, peak_rss_kib() - self._baseline_kb)

#: Log-spaced latency buckets (seconds) from 0.1 ms to one minute -- wide
#: enough that a cache hit and a 10^5-node kernel run land in interior
#: buckets, fine enough that "within one bucket" is a meaningful agreement
#: gate (the E17 histogram-vs-loadgen check).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the current level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative counts and a sum.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; observations above the last bound land in
    the implicit ``+Inf`` bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "sum")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        chosen = tuple(bounds) if bounds is not None else DEFAULT_SECONDS_BUCKETS
        if not chosen or list(chosen) != sorted(set(chosen)):
            raise ValueError(f"bucket bounds must be strictly increasing, got {chosen}")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts: List[int] = [0] * (len(chosen) + 1)
        self.sum: float = 0.0

    @property
    def count(self) -> int:
        return sum(self.bucket_counts)

    def observe(self, value: float) -> None:
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per finite bucket, Prometheus ``le`` style."""
        total = 0
        cumulative: List[int] = []
        for count in self.bucket_counts[:-1]:
            total += count
            cumulative.append(total)
        return cumulative

    def quantile(self, q: float) -> float:
        """An upper bound on the true ``q``-quantile, tight to one bucket.

        Returns the upper edge of the bucket holding rank
        ``max(1, ceil(q * count))``; observations in the overflow bucket
        report ``inf``.  Zero observations report ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, count in enumerate(self.bucket_counts[:-1]):
            seen += count
            if seen >= rank:
                return self.bounds[index]
        return math.inf

    def quantile_bucket(self, q: float) -> int:
        """The index of the bucket :meth:`quantile` reports (``len(bounds)``
        means the overflow bucket)."""
        total = self.count
        if total == 0:
            return 0
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, count in enumerate(self.bucket_counts[:-1]):
            seen += count
            if seen >= rank:
                return index
        return len(self.bounds)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metric families with optional labels, rendered as Prometheus text.

    Instruments are created on first access and returned on every later
    access with the same ``(name, labels)`` -- the usual
    ``registry.counter("requests_total", outcome="hit").inc()`` idiom.
    A name is bound to one instrument type for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._families: "Dict[str, Dict[str, object]]" = {}

    def _series(
        self, kind: str, name: str, help_text: str, labels: Dict[str, str],
        buckets: Optional[Sequence[float]] = None,
    ):
        family = self._families.get(name)
        if family is None:
            family = {"type": kind, "help": help_text, "series": {}, "buckets": buckets}
            self._families[name] = family
        elif family["type"] != kind:
            raise ValueError(
                f"metric {name!r} is a {family['type']}, requested as {kind}"
            )
        key = tuple(sorted(labels.items()))
        series = family["series"]
        instrument = series.get(key)
        if instrument is None:
            if kind == "histogram":
                instrument = Histogram(family["buckets"])
            else:
                instrument = _TYPES[kind]()
            series[key] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._series("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._series("gauge", name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        return self._series("histogram", name, help_text, labels, buckets=buckets)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, family in self._families.items():
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for key, instrument in family["series"].items():
                labels = dict(key)
                if family["type"] == "histogram":
                    lines.extend(_render_histogram(name, labels, instrument))
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format_value(float(bound))


def _render_histogram(name: str, labels: Dict[str, str], histogram: Histogram) -> List[str]:
    lines: List[str] = []
    for bound, cumulative in zip(histogram.bounds, histogram.cumulative()):
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_bound(bound)
        lines.append(f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}")
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_render_labels(inf_labels)} {histogram.count}")
    lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(histogram.sum)}")
    lines.append(f"{name}_count{_render_labels(labels)} {histogram.count}")
    return lines
