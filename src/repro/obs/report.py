"""The ``repro report --plots`` artifact pipeline.

Renders publication-style figures from cached sweep records
(:class:`~repro.analysis.experiments.ExperimentRecord` streams) into a
plots directory:

* ``rounds_vs_n.png`` -- round-complexity scaling curves, one series per
  solver label (the paper's headline O(log n log Delta / eps)-style claims
  as measured curves);
* ``messages_vs_n.png`` -- message-volume scaling (from the record's
  ``messages`` field, populated from ``RunMetrics.total_messages``);
* ``quality_vs_faults.png`` -- the quality-vs-fault frontier: approximation
  ratio per fault model, one series per solver, fault-free runs anchored
  at ``none``.

matplotlib is an **optional** dependency: :func:`matplotlib_available`
gates everything, the CLI prints an actionable message instead of crashing,
and the smoke test skips itself when the library is absent.  Rendering
forces the ``Agg`` backend so the pipeline works headless (CI artifact
jobs, containers without a display).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import ExperimentRecord

__all__ = [
    "matplotlib_available",
    "render_plots",
    "DEFAULT_PLOTS_DIR",
]

#: Where ``repro report --plots`` writes unless ``--plots-dir`` says otherwise.
DEFAULT_PLOTS_DIR = "results/plots"


def matplotlib_available() -> bool:
    """Whether the optional plotting dependency is importable."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _pyplot():
    """Import pyplot on the headless ``Agg`` backend, or ``None`` without
    matplotlib installed."""
    try:
        import matplotlib
    except ImportError:
        return None
    matplotlib.use("Agg", force=True)
    import matplotlib.pyplot as plt

    return plt


def _solver_label(record: ExperimentRecord) -> str:
    label = record.params.get("solver_label")
    return str(label) if label is not None else record.algorithm


def _fault_label(record: ExperimentRecord) -> str:
    label = record.params.get("faults")
    return str(label) if label is not None else "none"


def _series_by_label(
    records: Sequence[ExperimentRecord], value_of
) -> Dict[str, List[Tuple[int, float]]]:
    """Group ``(n, mean value)`` points per solver label, sorted by n."""
    grouped: Dict[str, Dict[int, List[float]]] = {}
    for record in records:
        grouped.setdefault(_solver_label(record), {}).setdefault(record.n, []).append(
            float(value_of(record))
        )
    series: Dict[str, List[Tuple[int, float]]] = {}
    for label, by_n in grouped.items():
        series[label] = [
            (n, sum(values) / len(values)) for n, values in sorted(by_n.items())
        ]
    return series


def _plot_scaling(
    plt,
    records: Sequence[ExperimentRecord],
    value_of,
    *,
    path: Path,
    ylabel: str,
    title: str,
) -> Optional[Path]:
    series = {
        label: points
        for label, points in _series_by_label(records, value_of).items()
        if any(value > 0 for _, value in points)
    }
    if not series:
        return None
    figure, axes = plt.subplots(figsize=(7, 4.5))
    for label, points in sorted(series.items()):
        xs = [n for n, _ in points]
        ys = [value for _, value in points]
        axes.plot(xs, ys, marker="o", label=label)
    axes.set_xscale("log")
    axes.set_yscale("log")
    axes.set_xlabel("n (nodes)")
    axes.set_ylabel(ylabel)
    axes.set_title(title)
    axes.grid(True, which="both", alpha=0.3)
    axes.legend(fontsize=8)
    figure.tight_layout()
    figure.savefig(path, dpi=150)
    plt.close(figure)
    return path


def _plot_fault_frontier(
    plt, records: Sequence[ExperimentRecord], *, path: Path
) -> Optional[Path]:
    """Approximation ratio per fault model; requires at least one faulted record."""
    fault_labels = sorted({_fault_label(record) for record in records})
    if fault_labels == ["none"]:
        return None
    # "none" anchors the frontier on the left, then fault models by name.
    ordered = (["none"] if "none" in fault_labels else []) + [
        label for label in fault_labels if label != "none"
    ]
    positions = {label: index for index, label in enumerate(ordered)}
    by_solver: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        by_solver.setdefault(_solver_label(record), {}).setdefault(
            _fault_label(record), []
        ).append(float(record.ratio))
    figure, axes = plt.subplots(figsize=(7, 4.5))
    for solver, by_fault in sorted(by_solver.items()):
        xs = [positions[label] for label in ordered if label in by_fault]
        ys = [
            sum(by_fault[label]) / len(by_fault[label])
            for label in ordered
            if label in by_fault
        ]
        axes.plot(xs, ys, marker="s", label=solver)
    axes.set_xticks(range(len(ordered)))
    axes.set_xticklabels(ordered, rotation=30, ha="right", fontsize=8)
    axes.set_xlabel("fault model")
    axes.set_ylabel("approximation ratio (vs OPT estimate)")
    axes.set_title("Quality vs fault model")
    axes.grid(True, alpha=0.3)
    axes.legend(fontsize=8)
    figure.tight_layout()
    figure.savefig(path, dpi=150)
    plt.close(figure)
    return path


def render_plots(
    records: Iterable[ExperimentRecord],
    out_dir: Union[str, Path] = DEFAULT_PLOTS_DIR,
) -> List[Path]:
    """Render every applicable figure from ``records`` into ``out_dir``.

    Returns the paths written (figures whose data is absent -- e.g. no
    faulted records for the frontier -- are skipped, not emitted empty).
    Raises :class:`RuntimeError` when matplotlib is not installed; CLI
    callers check :func:`matplotlib_available` first for a soft landing.
    """
    plt = _pyplot()
    if plt is None:
        raise RuntimeError(
            "matplotlib is not installed; `pip install matplotlib` to enable "
            "`repro report --plots`"
        )
    record_list = list(records)
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    rounds_plot = _plot_scaling(
        plt,
        record_list,
        lambda record: record.rounds,
        path=out_path / "rounds_vs_n.png",
        ylabel="rounds",
        title="Round complexity scaling",
    )
    if rounds_plot is not None:
        written.append(rounds_plot)
    messages_plot = _plot_scaling(
        plt,
        record_list,
        lambda record: record.messages,
        path=out_path / "messages_vs_n.png",
        ylabel="messages",
        title="Message volume scaling",
    )
    if messages_plot is not None:
        written.append(messages_plot)
    frontier = _plot_fault_frontier(
        plt, record_list, path=out_path / "quality_vs_faults.png"
    )
    if frontier is not None:
        written.append(frontier)
    return written
