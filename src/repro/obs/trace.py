"""Round-level execution tracing: span records, JSONL sink, schema tools.

A trace is a flat stream of JSON records (one per line in a
:class:`FileTracer` file) describing a tree of spans:

``run`` span
    One per :meth:`repro.run.Session.run` execution: algorithm, graph size,
    seed, engine, rounds, total wall time, and the process peak RSS
    (``resource.getrusage``).  Carries the canonical metrics serialization
    (:meth:`repro.congest.metrics.RunMetrics.to_dict`).
``phase`` spans
    ``compile`` (graph canonicalisation + algorithm resolution),
    ``execute`` (the engine's round loop) and ``package`` (validation +
    result assembly), each with its wall time, keyed to the run by
    ``run_id``.
``round`` records
    One per communication round, emitted from the run's
    :class:`~repro.congest.metrics.RoundMetrics` -- messages delivered,
    dropped and delayed, payload bits, active/crashed nodes.  Because the
    per-round metrics are byte-identical across the reference, batched and
    kernel engines (the parity discipline of the congest test-suite), the
    emitted span tree is identical whichever engine executed the run; only
    the timing fields differ.  When the run executed through the hooked
    round loop, each record also carries ``t_start_s`` -- the round's start
    time relative to the run span -- captured live by :class:`TracingHooks`.

Live round timestamps ride the existing ``hooks=`` round-loop protocol:
every engine's hooked loop (``Engine._execute_hooked`` and the kernel fault
driver's :class:`~repro.congest.kernels.faults.FaultedRun`) calls
``hooks.begin_round(r)`` exactly once per round, so :class:`TracingHooks`
-- a delegating proxy around any real hooks object -- timestamps rounds on
all three engines without either engine knowing tracing exists.  A traced
fault-free run wraps the engine in an *empty*
:class:`~repro.faults.FaultPlan`, which the fault test-suite holds
byte-identical to the plain path; with no tracer attached, nothing is
wrapped and the plain hot paths run unchanged.

``python -m repro.obs.trace FILE.jsonl`` validates a trace against the
schema (the CI smoke job runs it after ``repro run --trace``).
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "FileTracer",
    "RoundTimer",
    "TracingHooks",
    "emit_run_trace",
    "load_trace",
    "validate_trace",
    "span_tree",
    "main",
]

#: Bumped when the record layout changes; stamped on every ``run`` span.
TRACE_SCHEMA_VERSION = 1

#: The record types a valid trace may contain.
_RECORD_TYPES = ("run", "phase", "round", "event")

#: The phase names a ``run`` span decomposes into.
_PHASES = ("compile", "execute", "package")


class Tracer:
    """Span/event sink protocol.

    Implementations override :meth:`emit`; ``enabled`` is the zero-overhead
    switch -- every integration point checks it (or checks ``tracer is
    None``) *once per run*, never per round, so a disabled tracer costs
    nothing on the hot paths.
    """

    enabled: bool = True

    #: Process-wide run-id source: distinct tracers appending to one file
    #: never collide *within a process*.  Across processes ids restart at 0,
    #: so whoever owns the file must start it fresh (the sweep runner
    #: truncates every trace target before executing).
    _run_ids = itertools.count()

    def next_run_id(self) -> int:
        """A process-unique monotonic id tying one run's records together."""
        return next(Tracer._run_ids)

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point-in-time annotation record."""
        self.emit({"type": "event", "name": name, **fields})


class NullTracer(Tracer):
    """The no-op default: ``enabled`` is false, :meth:`emit` discards."""

    enabled = False

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class FileTracer(Tracer):
    """JSONL tracer: one sorted-key JSON object per line, appended.

    Usable as a context manager; :meth:`close` is idempotent.  Records are
    flushed per emit so a trace survives a crashed (or killed) run up to
    the last complete span.
    """

    def __init__(self, path: Union[str, Path]):
        super().__init__()
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        if self._stream is None:
            raise ValueError(f"FileTracer({self.path}) is closed")
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "FileTracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RoundTimer:
    """Collects live per-round start timestamps during one traced run."""

    def __init__(self) -> None:
        self.starts: List[Tuple[int, float]] = []

    def mark(self, round_index: int) -> None:
        self.starts.append((round_index, time.perf_counter()))

    def wrap(self, hooks: Any) -> "TracingHooks":
        return TracingHooks(hooks, self)

    def relative_starts(self, origin: float) -> Dict[int, float]:
        """Map round index -> seconds since ``origin`` (first mark wins)."""
        relative: Dict[int, float] = {}
        for round_index, stamp in self.starts:
            relative.setdefault(round_index, stamp - origin)
        return relative


class TracingHooks:
    """A delegating proxy over any round-hooks object that timestamps rounds.

    Every attribute and method of the wrapped hooks object (the fault
    session's full protocol: ``runnable``/``acting``/``collect``/``route``/
    ``broadcast``/``edge_fates``/``stop_at_limit``/...) passes straight
    through, so the engines see exactly the behavior they would without
    tracing; only ``begin_round`` -- the one call each hooked loop makes
    exactly once per round -- is intercepted to record a timestamp before
    delegating.
    """

    __slots__ = ("_inner", "_timer")

    def __init__(self, inner: Any, timer: RoundTimer):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_timer", timer)

    def begin_round(self, round_index: int) -> None:
        self._timer.mark(round_index)
        return self._inner.begin_round(round_index)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def emit_run_trace(
    tracer: Tracer,
    *,
    algorithm: str,
    n: int,
    seed: int,
    result: Any,
    phase_seconds: Dict[str, float],
    wall_s: float,
    round_starts: Optional[Dict[int, float]] = None,
    fault_model: Optional[str] = None,
) -> int:
    """Emit one run's complete span tree; returns the assigned ``run_id``.

    The round records are derived from ``result.metrics.per_round`` *after*
    the run, which is what guarantees identical trees across engines: the
    engines' metrics are byte-identical by the parity discipline, so the
    only per-engine differences in a trace are ``engine_used`` and the
    timing fields.
    """
    metrics = result.metrics
    run_id = tracer.next_run_id()
    tracer.emit(
        {
            "type": "run",
            "trace_schema": TRACE_SCHEMA_VERSION,
            "run_id": run_id,
            "algorithm": algorithm,
            "n": n,
            "seed": seed,
            "fault_model": fault_model,
            "engine_used": metrics.engine_used,
            "rounds": metrics.rounds,
            "wall_s": round(wall_s, 6),
            "ru_maxrss_kb": _peak_rss_kb(),
            "metrics": metrics.to_dict(),
        }
    )
    for phase in _PHASES:
        tracer.emit(
            {
                "type": "phase",
                "run_id": run_id,
                "phase": phase,
                "wall_s": round(phase_seconds.get(phase, 0.0), 6),
            }
        )
    starts = round_starts or {}
    for round_metrics in metrics.per_round:
        record: Dict[str, Any] = {"type": "round", "run_id": run_id}
        record.update(round_metrics.to_dict())
        start = starts.get(round_metrics.round_index)
        record["t_start_s"] = None if start is None else round(start, 6)
        tracer.emit(record)
    return run_id


def _peak_rss_kb() -> Optional[int]:
    """The process memory high-water in KiB, or ``None`` where unavailable.

    Unit handling (Linux KiB vs macOS bytes) lives in exactly one place:
    :func:`repro.obs.metrics.peak_rss_kib`.
    """
    from repro.obs.metrics import peak_rss_kib

    return peak_rss_kib() or None


# ---------------------------------------------------------------------------
# Reading and validating traces
# ---------------------------------------------------------------------------


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into its record list."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: not valid JSON: {error}") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{line_number}: record is not an object")
            records.append(record)
    return records


_RUN_REQUIRED = ("run_id", "algorithm", "n", "seed", "rounds", "wall_s", "metrics")
_ROUND_REQUIRED = (
    "run_id",
    "round_index",
    "messages",
    "bits",
    "max_message_bits",
    "active_nodes",
    "dropped_messages",
    "delayed_messages",
    "crashed_nodes",
)


def validate_trace(records: List[Dict[str, Any]]) -> List[str]:
    """Check a record stream against the trace schema; returns problems.

    An empty list means the trace is valid.  Checks are structural: record
    types, required fields, the schema version stamp, phase names, and that
    every ``phase``/``round`` record points at an emitted ``run`` span with
    a consistent round count.
    """
    problems: List[str] = []
    runs: Dict[int, Dict[str, Any]] = {}
    rounds_seen: Dict[int, int] = {}
    for index, record in enumerate(records):
        kind = record.get("type")
        where = f"record {index}"
        if kind not in _RECORD_TYPES:
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        if kind == "run":
            if record.get("trace_schema") != TRACE_SCHEMA_VERSION:
                problems.append(
                    f"{where}: trace_schema is {record.get('trace_schema')!r}, "
                    f"expected {TRACE_SCHEMA_VERSION}"
                )
            missing = [field for field in _RUN_REQUIRED if field not in record]
            if missing:
                problems.append(f"{where}: run span missing fields {missing}")
                continue
            if record["run_id"] in runs:
                problems.append(
                    f"{where}: duplicate run_id {record['run_id']!r} "
                    "(rounds of colliding runs would pool)"
                )
                continue
            runs[record["run_id"]] = record
        elif kind == "phase":
            if record.get("phase") not in _PHASES:
                problems.append(f"{where}: unknown phase {record.get('phase')!r}")
            if record.get("run_id") not in runs:
                problems.append(f"{where}: phase for unknown run_id {record.get('run_id')!r}")
        elif kind == "round":
            missing = [field for field in _ROUND_REQUIRED if field not in record]
            if missing:
                problems.append(f"{where}: round record missing fields {missing}")
                continue
            run_id = record["run_id"]
            if run_id not in runs:
                problems.append(f"{where}: round for unknown run_id {run_id!r}")
                continue
            rounds_seen[run_id] = rounds_seen.get(run_id, 0) + 1
    for run_id, run in runs.items():
        expected = run["rounds"]
        seen = rounds_seen.get(run_id, 0)
        if seen != expected:
            problems.append(
                f"run {run_id}: {seen} round records for a {expected}-round run"
            )
    return problems


def span_tree(records: List[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    """Group a flat record stream into per-run trees.

    Returns ``{run_id: {"run": <run span>, "phases": [...], "rounds":
    [...]}}`` with phases and rounds in emission order.
    """
    tree: Dict[int, Dict[str, Any]] = {}
    for record in records:
        run_id = record.get("run_id")
        if run_id is None:
            continue
        entry = tree.setdefault(run_id, {"run": None, "phases": [], "rounds": []})
        kind = record.get("type")
        if kind == "run":
            entry["run"] = record
        elif kind == "phase":
            entry["phases"].append(record)
        elif kind == "round":
            entry["rounds"].append(record)
    return tree


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.trace FILE...`` -- validate trace files."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Validate JSONL trace files against the span schema.",
    )
    parser.add_argument("paths", nargs="+", metavar="FILE.jsonl")
    arguments = parser.parse_args(argv)
    status = 0
    for path in arguments.paths:
        try:
            records = load_trace(path)
        except (OSError, ValueError) as error:
            print(f"{path}: UNREADABLE: {error}", file=sys.stderr)
            status = 1
            continue
        problems = validate_trace(records)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            runs = sum(1 for record in records if record.get("type") == "run")
            print(f"{path}: ok ({len(records)} records, {runs} runs)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    import sys

    sys.exit(main())
