"""Unified observability layer: tracing, metrics, and report plots.

Three independent, dependency-light pieces threaded through the execution
stack (see ROADMAP.md's telemetry prerequisite for adaptive sweeps):

* :mod:`repro.obs.trace` -- run/phase/round span tracing.  A
  :class:`~repro.obs.trace.Tracer` attaches to :class:`repro.run.Session`
  (``Session(tracer=...)`` or ``session.run(spec, tracer=...)``) and to the
  CLI (``repro run --trace PATH``, ``repro sweep --trace-dir DIR``);
  :class:`~repro.obs.trace.FileTracer` writes one JSONL record per span.
  The hard contract: with no tracer every hot path takes the exact pre-PR
  code path (E17 gates the overhead), and with a tracer attached
  ``result_bytes`` stays byte-identical across all three engines.
* :mod:`repro.obs.metrics` -- process-local counters, gauges and
  fixed-bucket histograms with a Prometheus text renderer (no third-party
  metrics client).  ``repro serve`` aggregates per-request observations
  into ``GET /metrics``; the sweep runner stamps per-cell wall time and
  memory high-water onto every :class:`~repro.orchestration.runner.CellResult`.
* :mod:`repro.obs.report` -- ``repro report --plots``: scaling curves and
  quality-vs-fault frontiers rendered from cached sweep records
  (matplotlib is an *optional* dependency; everything degrades to a clear
  message without it).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    FileTracer,
    NullTracer,
    Tracer,
    TracingHooks,
    load_trace,
    span_tree,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "FileTracer",
    "TracingHooks",
    "load_trace",
    "span_tree",
    "validate_trace",
]
