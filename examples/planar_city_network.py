#!/usr/bin/env python
"""Facility placement on a planar road network.

Planar graphs have arboricity at most 3, so they are a flagship application
of the paper.  This example models a city's road network as a Delaunay
triangulation of random intersections, with a "construction cost" per
intersection, and asks for a minimum-cost set of facility locations such that
every intersection is adjacent to (or is) a facility -- a weighted dominating
set.  It compares the paper's deterministic distributed algorithm against the
centralized greedy and the LP lower bound, and shows how the round count
scales with the maximum degree rather than the city size.
"""

from __future__ import annotations

import repro
from repro.analysis.tables import format_table
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.lp import lp_dominating_set_lower_bound
from repro.graphs.arboricity import arboricity_upper_bound
from repro.orchestration import get_scenario


def run_city(instance) -> dict:
    """Solve the facility placement problem on one pre-built city."""
    # The cities (Delaunay road networks with degree-based construction
    # costs) are declared once in the scenario registry -- the same specs
    # back `python -m repro run example/planar-city`.
    city = instance.graph
    alpha = min(3, max(1, arboricity_upper_bound(city)))

    distributed = repro.execute(
        repro.RunSpec(graph=city, algorithm="weighted",
                      params={"epsilon": 0.25}, alpha=alpha)
    )
    greedy_set, greedy_cost = greedy_dominating_set(city)
    lp_bound = lp_dominating_set_lower_bound(city)

    assert distributed.is_valid
    return {
        "intersections": city.number_of_nodes(),
        "roads": city.number_of_edges(),
        "max_degree": max(dict(city.degree()).values()),
        "facility cost (distributed)": distributed.weight,
        "facility cost (greedy)": greedy_cost,
        "LP lower bound": round(lp_bound, 1),
        "ratio vs LP": round(distributed.weight / lp_bound, 3),
        "CONGEST rounds": distributed.rounds,
    }


def main() -> None:
    print("Weighted dominating set as facility placement on planar road networks")
    print("(arboricity <= 3; the guarantee is (2*3+1)*(1+eps))\n")
    scenario = get_scenario("example/planar-city")
    rows = [run_city(spec.build()) for spec in scenario.graphs]
    print(format_table(rows))
    print(
        "\nNote how the number of CONGEST rounds barely moves as the city "
        "grows: the round complexity is O(log(Delta)/eps), independent of n."
    )


if __name__ == "__main__":
    main()
