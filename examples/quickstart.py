#!/usr/bin/env python
"""Quickstart: a five-minute tour of the public API.

Run with::

    python examples/quickstart.py

It builds a small bounded-arboricity graph, runs the paper's deterministic
and randomized algorithms plus the classic greedy baseline through the
unified execution API (``repro.RunSpec`` + ``repro.execute`` /
``repro.Session``), verifies every output, and prints a comparison table.
"""

from __future__ import annotations

import repro
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.baselines.greedy import greedy_dominating_set
from repro.graphs.arboricity import arboricity
from repro.graphs.generators import forest_union_graph
from repro.graphs.validation import is_dominating_set
from repro.graphs.weights import assign_random_weights


def main() -> None:
    # 1. Build a graph with arboricity at most 3 (a union of three random
    #    spanning trees) and assign random integer node weights.
    graph = forest_union_graph(n=150, alpha=3, seed=42)
    assign_random_weights(graph, low=1, high=50, seed=7)
    alpha = arboricity(graph)
    print(f"graph: n={graph.number_of_nodes()} m={graph.number_of_edges()} "
          f"max_degree={max(dict(graph.degree()).values())} arboricity={alpha}")

    # 2. A certified lower bound on the optimum (exact for this size).
    opt = estimate_opt(graph)
    print(f"optimum ({opt.kind}): {opt.value:.0f}\n")

    # 3. Run the algorithms: declare *what* to run as RunSpecs and execute
    #    them through one Session, which compiles the graph (network, CSR
    #    adjacency, certified arboricity bound) once and reuses it per run.
    session = repro.Session()
    deterministic = session.run(
        repro.RunSpec(graph=graph, algorithm="weighted",
                      params={"epsilon": 0.2}, alpha=alpha)
    )
    randomized = session.run(
        repro.RunSpec(graph=graph, algorithm="randomized",
                      params={"t": 2}, alpha=alpha, seed=1)
    )
    greedy_set, greedy_weight = greedy_dominating_set(graph)

    # 4. Everything is verified: validity, weight, rounds, guarantees.
    rows = [
        {
            "algorithm": deterministic.algorithm,
            "weight": deterministic.weight,
            "ratio": deterministic.weight / opt.value,
            "guarantee": deterministic.guarantee,
            "CONGEST rounds": deterministic.rounds,
        },
        {
            "algorithm": randomized.algorithm,
            "weight": randomized.weight,
            "ratio": randomized.weight / opt.value,
            "guarantee": randomized.guarantee,
            "CONGEST rounds": randomized.rounds,
        },
        {
            "algorithm": "centralized-greedy (baseline)",
            "weight": greedy_weight,
            "ratio": greedy_weight / opt.value,
            "guarantee": None,
            "CONGEST rounds": None,
        },
    ]
    print(format_table(rows))

    assert deterministic.is_valid and randomized.is_valid
    assert is_dominating_set(graph, greedy_set)
    print("\nall outputs verified to be dominating sets")

    # 5. The "deterministic" algorithm dispatches to the Section 3 warm-up
    #    when every weight is one; repro.execute is the one-shot form (the
    #    legacy solve_mds(...) helpers wrap exactly this, byte-identically).
    unweighted = forest_union_graph(n=150, alpha=3, seed=43)
    result = repro.execute(
        repro.RunSpec(graph=unweighted, algorithm="deterministic",
                      params={"epsilon": 0.2}, alpha=3)
    )
    print(f"\nunweighted run: |S|={len(result)} rounds={result.rounds} "
          f"guarantee={result.guarantee:.2f} valid={result.is_valid}")

    # 6. This exact workload is also registered in the scenario registry as
    #    "example/quickstart", so the orchestration layer can run it too --
    #    with verification, caching and parallelism for free:
    #
    #        python -m repro run example/quickstart
    #
    from repro.orchestration import get_scenario

    records = get_scenario("example/quickstart").run(seed=0)
    print("\nvia the scenario registry (python -m repro run example/quickstart):")
    for record in records:
        print(f"  {record.params['solver_label']}: weight={record.weight:.0f} "
              f"ratio={record.ratio:.3f} rounds={record.rounds}")


if __name__ == "__main__":
    main()
