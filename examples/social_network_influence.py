#!/usr/bin/env python
"""Influence seeding on a social-network-like graph, against all baselines.

Social networks are huge, have heavy-tailed degree distributions (a few
celebrities with enormous degree) and small arboricity -- the paper's
motivating regime.  Selecting a minimum set of accounts such that everyone
follows at least one selected account is a dominating set problem.  This
example runs the paper's algorithms and every implemented baseline on a
preferential-attachment graph and prints the comparison that Section 1.2 of
the paper makes in prose: quality comparable to the best prior work, with a
round complexity that depends only logarithmically on the maximum degree.

The distributed contenders (the paper's two algorithms, both
Lenzen--Wattenhofer variants, and the combinatorial alpha-baseline) are
declared once in the scenario registry as ``example/social-influence`` --
this script runs that scenario and appends the centralized baselines, which
are not CONGEST executions.  The same distributed table is available from
the command line via ``python -m repro run example/social-influence``.
"""

from __future__ import annotations

from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.sun import sun_reverse_delete_dominating_set
from repro.graphs.validation import is_dominating_set
from repro.orchestration import get_scenario


def main() -> None:
    scenario = get_scenario("example/social-influence")
    records = scenario.run(seed=0)
    assert all(record.is_dominating for record in records)

    instance = scenario.graphs[0].build()
    graph, alpha = instance.graph, instance.alpha
    max_degree = instance.max_degree
    opt = estimate_opt(graph)
    print(
        f"social graph: n={graph.number_of_nodes()} m={graph.number_of_edges()} "
        f"max_degree={max_degree} alpha<={alpha} OPT bound ({opt.kind}) = {opt.value:.1f}\n"
    )

    rows = [
        {
            "algorithm": record.params["solver_label"],
            "|seed set|": int(record.weight),
            "ratio vs bound": round(record.ratio, 3),
            "CONGEST rounds": record.rounds,
            "note": "",
        }
        for record in records
    ]

    def record_row(name, size, rounds, note=""):
        rows.append(
            {
                "algorithm": name,
                "|seed set|": size,
                "ratio vs bound": round(size / opt.value, 3),
                "CONGEST rounds": rounds,
                "note": note,
            }
        )

    bu = bansal_umboh_dominating_set(graph, alpha=alpha, epsilon=0.2)
    assert is_dominating_set(graph, bu.dominating_set)
    record_row("Bansal-Umboh LP rounding", len(bu.dominating_set), bu.nominal_rounds,
               "LP solved centrally")

    kmw = kmw_lp_rounding_dominating_set(graph, seed=4)
    assert is_dominating_set(graph, kmw.dominating_set)
    record_row("KMW LP rounding", len(kmw.dominating_set), kmw.nominal_rounds,
               "LP solved centrally")

    greedy_set, _ = greedy_dominating_set(graph)
    record_row("centralized greedy", len(greedy_set), None, "centralized")

    sun = sun_reverse_delete_dominating_set(graph)
    record_row("Sun'21-style primal-dual + reverse delete", len(sun.dominating_set), None,
               "centralized")

    print(format_table(rows))
    print(
        "\nReading the table: the paper's algorithms match the O(alpha)-quality "
        "prior work while using rounds that scale with log(Delta) only."
    )


if __name__ == "__main__":
    main()
