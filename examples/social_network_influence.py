#!/usr/bin/env python
"""Influence seeding on a social-network-like graph, against all baselines.

Social networks are huge, have heavy-tailed degree distributions (a few
celebrities with enormous degree) and small arboricity -- the paper's
motivating regime.  Selecting a minimum set of accounts such that everyone
follows at least one selected account is a dominating set problem.  This
example builds a preferential-attachment graph, runs the paper's algorithms
and every implemented baseline, and prints the comparison that Section 1.2 of
the paper makes in prose: quality comparable to the best prior work, with a
round complexity that depends only logarithmically on the maximum degree.
"""

from __future__ import annotations

from repro import solve_mds, solve_mds_randomized
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm, LWRandomizedAlgorithm
from repro.baselines.msw import MSWStyleAlgorithm
from repro.baselines.sun import sun_reverse_delete_dominating_set
from repro.congest.simulator import run_algorithm
from repro.graphs.generators import preferential_attachment_graph
from repro.graphs.validation import is_dominating_set


def main() -> None:
    attachment = 4
    graph = preferential_attachment_graph(600, attachment=attachment, seed=3)
    alpha = attachment  # certified by the preferential-attachment construction
    max_degree = max(dict(graph.degree()).values())
    opt = estimate_opt(graph)
    print(
        f"social graph: n={graph.number_of_nodes()} m={graph.number_of_edges()} "
        f"max_degree={max_degree} alpha<={alpha} OPT bound ({opt.kind}) = {opt.value:.1f}\n"
    )

    rows = []

    def record(name, size, rounds, note=""):
        rows.append(
            {
                "algorithm": name,
                "|seed set|": size,
                "ratio vs bound": round(size / opt.value, 3),
                "CONGEST rounds": rounds,
                "note": note,
            }
        )

    ours_det = solve_mds(graph, alpha=alpha, epsilon=0.2)
    record("this paper, deterministic (Thm 1.1)", len(ours_det), ours_det.rounds)

    ours_rand = solve_mds_randomized(graph, alpha=alpha, t=2, seed=1)
    record("this paper, randomized (Thm 1.2)", len(ours_rand), ours_rand.rounds)

    lw_det = run_algorithm(graph, LWDeterministicAlgorithm(), alpha=alpha)
    assert is_dominating_set(graph, lw_det.selected_nodes())
    record("Lenzen-Wattenhofer style, deterministic", len(lw_det.selected_nodes()), lw_det.rounds)

    lw_rand = run_algorithm(graph, LWRandomizedAlgorithm(), alpha=alpha, seed=2)
    assert is_dominating_set(graph, lw_rand.selected_nodes())
    record("Lenzen-Wattenhofer style, randomized", len(lw_rand.selected_nodes()), lw_rand.rounds)

    comb = run_algorithm(graph, MSWStyleAlgorithm(), alpha=alpha)
    record("combinatorial alpha-baseline", len(comb.selected_nodes()), comb.rounds)

    bu = bansal_umboh_dominating_set(graph, alpha=alpha, epsilon=0.2)
    record("Bansal-Umboh LP rounding", len(bu.dominating_set), bu.nominal_rounds, "LP solved centrally")

    kmw = kmw_lp_rounding_dominating_set(graph, seed=4)
    record("KMW LP rounding", len(kmw.dominating_set), kmw.nominal_rounds, "LP solved centrally")

    greedy_set, _ = greedy_dominating_set(graph)
    record("centralized greedy", len(greedy_set), None, "centralized")

    sun = sun_reverse_delete_dominating_set(graph)
    record("Sun'21-style primal-dual + reverse delete", len(sun.dominating_set), None, "centralized")

    print(format_table(rows))
    print(
        "\nReading the table: the paper's algorithms match the O(alpha)-quality "
        "prior work while using rounds that scale with log(Delta) only."
    )


if __name__ == "__main__":
    main()
