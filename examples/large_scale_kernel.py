#!/usr/bin/env python
"""Production-scale runs on the kernel tier: 10^5-node graphs in seconds.

Run with::

    python examples/large_scale_kernel.py

The dict-based graph path tops out around a few thousand nodes; this
example streams three large graph families straight into CSR arrays
(:mod:`repro.graphs.large_scale`), executes the paper's deterministic
algorithm through ``engine="kernel"`` -- whole-graph NumPy array programs,
no per-node Python objects -- and cross-checks a downsized instance byte
for byte against the reference engine.
"""

from __future__ import annotations

import time

import repro
from repro.analysis.tables import format_table
from repro.graphs.large_scale import (
    large_grid,
    large_preferential_attachment,
    large_random_geometric,
    random_integer_weights,
)
from repro.run.result import result_bytes


def run_kernel(csr, algorithm="deterministic", **spec_kwargs):
    spec = repro.RunSpec(graph=csr, algorithm=algorithm, engine="kernel", **spec_kwargs)
    start = time.perf_counter()
    result = repro.execute(spec)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> None:
    # 1. Three scale families, built as CSR arrays (no networkx dicts).
    #    The BA instance is the ISSUE's headline: 10^5 nodes, 4x10^5 edges.
    instances = [
        large_preferential_attachment(100_000, attachment=4, seed=2022),
        large_grid(300, 300),
        random_integer_weights(
            large_random_geometric(50_000, radius=0.006, seed=7), 1, 50, seed=8
        ),
    ]

    rows = []
    for csr in instances:
        algorithm = "deterministic" if csr.is_unweighted else "weighted"
        result, elapsed = run_kernel(csr, algorithm=algorithm, alpha=csr.alpha)
        rows.append(
            {
                "instance": csr.name,
                "n": csr.n,
                "m": csr.m,
                "algorithm": result.algorithm,
                "|S| weight": result.weight,
                "rounds": result.rounds,
                "valid": result.is_valid,
                "seconds": round(elapsed, 2),
            }
        )
    print(format_table(rows))

    # 2. Trust, but verify: at a size every tier can run, the kernel result
    #    is byte-identical to the reference oracle on the same topology.
    small = large_preferential_attachment(500, attachment=4, seed=2022)
    kernel_result, _ = run_kernel(small, alpha=small.alpha)
    reference_result = repro.execute(
        repro.RunSpec(
            graph=small.to_networkx(), algorithm="deterministic",
            alpha=small.alpha, engine="reference",
        )
    )
    assert result_bytes(kernel_result) == result_bytes(reference_result)
    print("\ndownsized cross-check: kernel byte-identical to the reference engine")


if __name__ == "__main__":
    main()
