#!/usr/bin/env python
"""Cluster-head election in an ad-hoc wireless network.

The classic distributed-systems motivation for dominating sets: every device
in an ad-hoc network must either be a cluster head or hear one directly, and
cluster heads should be chosen to minimise total battery cost.  Devices
scattered in the plane with a fixed radio range form a unit-disk-like graph;
such deployment graphs are sparse (their arboricity stays small) while their
maximum degree can be large in dense spots -- exactly the regime where an
O(log Delta)-round, O(alpha)-approximation algorithm shines.

The example elects cluster heads with three algorithms (the paper's
deterministic and randomized algorithms and the trivial "every undominated
node becomes a head" strategy), reports battery cost and round counts, and
verifies the guarantees.
"""

from __future__ import annotations

import networkx as nx

import repro
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import random_geometric_graph
from repro.graphs.validation import is_dominating_set, undominated_nodes
from repro.graphs.weights import assign_degree_weights


def deployment_graph(n: int, radio_range: float, seed: int) -> nx.Graph:
    """Scatter ``n`` devices in the unit square; connect pairs within range.

    The substrate is the ``random-geometric`` registry family; the battery
    cost (devices with more neighbours pay more to serve as heads) is the
    ``degree`` weight scheme with base 3.  The 150- and 300-device
    deployments are registered as scenario ``example/adhoc-wireless``.
    """
    graph = random_geometric_graph(n, radio_range, seed=seed)
    assign_degree_weights(graph, base=3)
    return graph


def naive_clustering(graph: nx.Graph) -> int:
    """Every node that hears no head becomes a head itself (greedy sweep)."""
    heads = set()
    for node in sorted(graph.nodes()):
        if node not in heads and not any(neighbor in heads for neighbor in graph.neighbors(node)):
            heads.add(node)
    assert is_dominating_set(graph, heads) or not undominated_nodes(graph, heads)
    return sum(graph.nodes[node]["weight"] for node in heads)


def main() -> None:
    rows = []
    for n, radio_range, seed in [(150, 0.14, 1), (300, 0.10, 2), (500, 0.08, 3)]:
        graph = deployment_graph(n, radio_range, seed)
        alpha = max(1, arboricity_upper_bound(graph))
        opt = estimate_opt(graph)

        session = repro.Session()
        deterministic = session.run(
            repro.RunSpec(graph=graph, algorithm="weighted",
                          params={"epsilon": 0.25}, alpha=alpha)
        )
        randomized = session.run(
            repro.RunSpec(graph=graph, algorithm="randomized",
                          params={"t": 2}, alpha=alpha, seed=seed)
        )
        naive_cost = naive_clustering(graph)

        assert deterministic.is_valid and randomized.is_valid
        rows.append(
            {
                "devices": n,
                "links": graph.number_of_edges(),
                "max_degree": max(dict(graph.degree()).values()),
                "alpha (certified)": alpha,
                "cost det": deterministic.weight,
                "cost rand": randomized.weight,
                "cost naive": naive_cost,
                "opt bound": round(opt.value, 1),
                "rounds det": deterministic.rounds,
                "rounds rand": randomized.rounds,
            }
        )
    print("Cluster-head election on synthetic ad-hoc wireless deployments\n")
    print(format_table(rows))
    print(
        "\nThe distributed algorithms come with worst-case guarantees of "
        "(2*alpha+1)(1+eps) resp. about alpha times the optimal cost and finish "
        "in O(log Delta) CONGEST rounds; the naive sweep is a sequential sweep "
        "over all devices with no guarantee (it can be arbitrarily bad when "
        "cheap devices could cover many expensive ones)."
    )


if __name__ == "__main__":
    main()
