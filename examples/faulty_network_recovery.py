#!/usr/bin/env python
"""Cluster-head election while the network misbehaves.

The wireless deployment of ``adhoc_wireless_clustering.py``, stressed: nodes
in one region brown out for a few rounds (crash-recover), every radio link
drops a fraction of its messages, and stragglers deliver late.  The paper's
algorithms were designed for a fault-free synchronous CONGEST network, so
the interesting question is *degradation*: how much coverage and cost do
they lose as conditions worsen, and how much traffic does the adversary
eat?

The example runs the deterministic algorithm on a geometric deployment
graph under increasingly hostile fault regimes -- each one a
:class:`repro.RunSpec` differing only in its ``faults`` field, executed
through a single compiled :class:`repro.Session` (the graph, network and
adjacency layout are built once for all five regimes) -- and reports
coverage (fraction of devices dominated), cost, rounds, and the drop/delay
volume from the extended run metrics.  The same regimes are registered as
``faults/*`` scenarios (``python -m repro list --tag faults``) and any
scenario can be stressed from the CLI with ``--faults <model>``.
"""

from __future__ import annotations

import dataclasses

import repro
from repro.analysis.tables import format_table
from repro.faults import FaultSpec
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import random_geometric_graph
from repro.graphs.validation import undominated_nodes
from repro.graphs.weights import assign_degree_weights

#: The fault regimes to sweep, from clean to hostile.  ``None`` entries in a
#: spec mean crash-stop; here every crash recovers, modelling brown-outs.
REGIMES = [
    ("clean", FaultSpec()),
    ("lossy 10%", FaultSpec(drop_probability=0.10)),
    ("brown-out", FaultSpec(crash_fraction=0.20, crash_at=2, recover_after=4)),
    ("stragglers", FaultSpec(latency_max=2)),
    (
        "all at once",
        FaultSpec(
            crash_fraction=0.20,
            crash_at=2,
            recover_after=4,
            drop_probability=0.10,
            latency_max=2,
        ),
    ),
]


def main() -> None:
    graph = random_geometric_graph(200, radius=0.12, seed=2)
    assign_degree_weights(graph, base=3)
    alpha = max(1, arboricity_upper_bound(graph))

    base = repro.RunSpec(
        graph=graph,
        algorithm="weighted",
        params={"epsilon": 0.25},
        alpha=alpha,
        engine="batched",
        fault_seed=0,
    )
    session = repro.Session()
    rows = []
    for label, spec in REGIMES:
        result = session.run(dataclasses.replace(base, faults=spec))

        uncovered = undominated_nodes(graph, result.dominating_set)
        metrics = result.metrics
        rows.append(
            {
                "regime": label,
                "coverage": f"{1 - len(uncovered) / graph.number_of_nodes():.1%}",
                "heads": len(result.dominating_set),
                "cost": result.weight,
                "rounds": result.rounds,
                "delivered": metrics.total_messages,
                "dropped": metrics.total_dropped_messages,
                "delayed": metrics.total_delayed_messages,
                "crashed": len(metrics.faulty_nodes),
            }
        )

    print("Cluster-head election on a 200-device deployment under adversarial conditions\n")
    print(format_table(rows))
    print(
        "\nEvery regime is deterministic in its seed and byte-identical across "
        "the reference and batched engines.  Message loss silently shrinks the "
        "packing information each node sees (costs drift up), brown-outs leave "
        "the sleeping region to self-elect on recovery, and stragglers starve "
        "whole phases -- the degradation is graceful, but the (2*alpha+1)(1+eps) "
        "guarantee only holds in the fault-free model."
    )


if __name__ == "__main__":
    main()
