#!/usr/bin/env python
"""Build the Theorem 1.4 / Figure 1 lower-bound graph and run the reduction.

The paper's lower bound says: even at arboricity 2, any constant or
poly-logarithmic approximation of minimum dominating set needs
Omega(log Delta / log log Delta) rounds.  The proof constructs a graph ``H``
from a KMW-style base graph ``G`` and converts dominating sets of ``H`` into
fractional vertex covers of ``G``.  This example performs the construction,
verifies every structural property claimed in Section 5, runs the paper's own
algorithm on ``H``, and carries out the conversion, printing the chain of
quantities the proof manipulates.

The plain "run Theorem 1.1 on H" workload is also registered as scenario
``E5/lower-bound`` (``python -m repro run E5/lower-bound``); this script
keeps the structural verification and the reduction, which need the
construction's internals rather than just records.
"""

from __future__ import annotations

import repro
from repro.analysis.tables import format_table
from repro.baselines.lp import fractional_vertex_cover_lp
from repro.lowerbound.kmw_graph import bipartite_regular_base_graph
from repro.lowerbound.reduction import (
    build_lower_bound_graph,
    extract_fractional_vertex_cover,
    verify_structural_properties,
)


def main() -> None:
    rows = []
    for side, degree in [(6, 3), (10, 4), (16, 5)]:
        base = bipartite_regular_base_graph(side, degree, seed=side)
        instance = build_lower_bound_graph(base)  # copies = Delta^2 as in the paper
        checks = verify_structural_properties(instance)
        assert all(checks.values()), checks

        result = repro.execute(
            repro.RunSpec(graph=instance.graph, algorithm="deterministic",
                          params={"epsilon": 0.3}, alpha=2)
        )
        assert result.is_valid

        fractional = extract_fractional_vertex_cover(instance, result.dominating_set)
        _, opt_mfvc = fractional_vertex_cover_lp(base.graph)
        rows.append(
            {
                "base n / m": f"{base.n} / {base.m}",
                "copies (Delta^2)": instance.copies,
                "H nodes": instance.n_h,
                "H max degree": max(dict(instance.graph.degree()).values()),
                "H arboricity cert": "out-deg 2, acyclic",
                "|DS(H)|": len(result.dominating_set),
                "extracted VC value": round(sum(fractional.values()), 2),
                "OPT fractional VC(G)": round(opt_mfvc, 2),
                "VC ratio": round(sum(fractional.values()) / opt_mfvc, 3),
            }
        )
    print("Figure 1 construction and the dominating-set -> fractional-VC reduction\n")
    print(format_table(rows))
    print(
        "\nEvery H has arboricity 2 (certified by an explicit acyclic out-degree-2 "
        "orientation) and maximum degree Delta^2; a c-approximate dominating set "
        "of H converts into a c*(1+1/Delta)-approximate fractional vertex cover "
        "of the base graph, which is exactly how Theorem 1.4 transfers the KMW "
        "hardness to arboricity-2 graphs."
    )


if __name__ == "__main__":
    main()
