"""E8 -- Section 1.1/1.2 comparison: the new algorithms vs all prior work.

Paper claim (prose, Sections 1.1-1.2): the new deterministic algorithm
matches the best previously known approximation factor ((2*alpha+1)(1+eps)),
handles weights (no prior distributed algorithm did), and is faster than the
O(log^2 Delta / eps^4)-round LP-based approach and the O(alpha log n)-round
combinatorial approach; the randomized variant sharpens the factor towards
alpha.

Measured here: solution quality (ratio vs the shared OPT estimate) and round
counts for every implemented algorithm on a common high-Delta, low-alpha
workload -- the "who wins, by roughly what factor" table.
"""

from __future__ import annotations

from repro import solve_mds, solve_mds_randomized
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm, LWRandomizedAlgorithm
from repro.baselines.msw import MSWStyleAlgorithm
from repro.baselines.sun import sun_reverse_delete_dominating_set
from repro.congest.simulator import run_algorithm
from repro.graphs.generators import preferential_attachment_graph
from repro.graphs.validation import is_dominating_set


def _run(seed):
    alpha = 4
    graph = preferential_attachment_graph(500, attachment=alpha, seed=seed)
    opt = estimate_opt(graph)
    max_degree = max(dict(graph.degree()).values())
    rows = []

    def add(name, size, rounds, distributed=True):
        rows.append(
            {
                "algorithm": name,
                "|S|": size,
                "ratio": round(size / opt.value, 3),
                "rounds": rounds,
                "distributed": distributed,
            }
        )

    ours_det = solve_mds(graph, alpha=alpha, epsilon=0.2)
    assert ours_det.is_valid
    add("this paper deterministic (Thm 1.1)", len(ours_det), ours_det.rounds)

    ours_rand = solve_mds_randomized(graph, alpha=alpha, t=2, seed=seed)
    assert ours_rand.is_valid
    add("this paper randomized (Thm 1.2)", len(ours_rand), ours_rand.rounds)

    lw_det = run_algorithm(graph, LWDeterministicAlgorithm(), alpha=alpha)
    assert is_dominating_set(graph, lw_det.selected_nodes())
    add("LW'10-style deterministic O(a logD)", len(lw_det.selected_nodes()), lw_det.rounds)

    lw_rand = run_algorithm(graph, LWRandomizedAlgorithm(), alpha=alpha, seed=seed)
    assert is_dominating_set(graph, lw_rand.selected_nodes())
    add("LW'10-style randomized O(a^2)", len(lw_rand.selected_nodes()), lw_rand.rounds)

    comb = run_algorithm(graph, MSWStyleAlgorithm(), alpha=alpha)
    assert is_dominating_set(graph, comb.selected_nodes())
    add("combinatorial alpha-baseline (MSW stand-in)", len(comb.selected_nodes()), comb.rounds)

    bu = bansal_umboh_dominating_set(graph, alpha=alpha, epsilon=0.2)
    assert is_dominating_set(graph, bu.dominating_set)
    add("Bansal-Umboh LP rounding (2a+1)", len(bu.dominating_set), bu.nominal_rounds, False)

    kmw = kmw_lp_rounding_dominating_set(graph, seed=seed)
    assert is_dominating_set(graph, kmw.dominating_set)
    add("KMW'06 LP rounding O(logD)", len(kmw.dominating_set), kmw.nominal_rounds, False)

    greedy_set, greedy_weight = greedy_dominating_set(graph)
    assert is_dominating_set(graph, greedy_set)
    add("centralized greedy ln(D+1)", greedy_weight, None, False)

    sun = sun_reverse_delete_dominating_set(graph)
    assert is_dominating_set(graph, sun.dominating_set)
    add("Sun'21-style reverse delete (a+1)", len(sun.dominating_set), None, False)

    return rows, max_degree


def test_e8_comparison_against_prior_work(benchmark, record_experiment, bench_seed):
    rows, max_degree = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    by_name = {row["algorithm"]: row for row in rows}
    ours = by_name["this paper deterministic (Thm 1.1)"]
    # Round comparisons ("who wins"): much faster than the LP-based approach,
    # and at least as fast as the O(log Delta) combinatorial baselines.
    assert ours["rounds"] * 10 <= by_name["Bansal-Umboh LP rounding (2a+1)"]["rounds"]
    assert ours["rounds"] * 10 <= by_name["KMW'06 LP rounding O(logD)"]["rounds"]
    # Quality comparisons: within a small factor of the best baseline.
    best_quality = min(row["ratio"] for row in rows)
    assert ours["ratio"] <= 3 * best_quality
    assert by_name["this paper randomized (Thm 1.2)"]["ratio"] <= 3 * best_quality
    record_experiment(
        "E8",
        f"Comparison on preferential-attachment graph (n=500, alpha<=4, Delta={max_degree})",
        format_table(rows),
    )
    benchmark.extra_info["algorithms"] = len(rows)
