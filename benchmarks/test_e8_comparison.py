"""E8 -- Section 1.1/1.2 comparison: the new algorithms vs all prior work.

Paper claim (prose, Sections 1.1-1.2): the new deterministic algorithm
matches the best previously known approximation factor ((2*alpha+1)(1+eps)),
handles weights (no prior distributed algorithm did), and is faster than the
O(log^2 Delta / eps^4)-round LP-based approach and the O(alpha log n)-round
combinatorial approach; the randomized variant sharpens the factor towards
alpha.

Measured here: solution quality (ratio vs the shared OPT estimate) and round
counts for every implemented algorithm on a common high-Delta, low-alpha
workload -- the "who wins, by roughly what factor" table.  The distributed
contenders live in the scenario registry (``E8/comparison``); the
centralized baselines are appended here because they are not CONGEST runs.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.sun import sun_reverse_delete_dominating_set
from repro.graphs.validation import is_dominating_set
from repro.orchestration import get_scenario


def _run(bench_seed):
    scenario = get_scenario("E8/comparison")
    records = scenario.run(seed=bench_seed)
    rows = [
        {
            "algorithm": record.params["solver_label"],
            "|S|": int(record.weight),
            "ratio": round(record.ratio, 3),
            "rounds": record.rounds,
            "distributed": True,
        }
        for record in records
    ]
    max_degree = records[0].max_degree
    assert all(record.is_dominating for record in records)

    # Centralized baselines on the same pinned instance, against the same OPT
    # estimate the scenario's records already carry.
    instance = scenario.graphs[0].build(bench_seed)
    graph = instance.graph
    alpha = instance.alpha
    opt_value = records[0].opt_value

    def add(name, size, rounds, distributed=True):
        rows.append(
            {
                "algorithm": name,
                "|S|": size,
                "ratio": round(size / opt_value, 3),
                "rounds": rounds,
                "distributed": distributed,
            }
        )

    bu = bansal_umboh_dominating_set(graph, alpha=alpha, epsilon=0.2)
    assert is_dominating_set(graph, bu.dominating_set)
    add("Bansal-Umboh LP rounding (2a+1)", len(bu.dominating_set), bu.nominal_rounds, False)

    kmw = kmw_lp_rounding_dominating_set(graph, seed=bench_seed)
    assert is_dominating_set(graph, kmw.dominating_set)
    add("KMW'06 LP rounding O(logD)", len(kmw.dominating_set), kmw.nominal_rounds, False)

    greedy_set, _ = greedy_dominating_set(graph)
    assert is_dominating_set(graph, greedy_set)
    add("centralized greedy ln(D)", len(greedy_set), None, False)

    sun = sun_reverse_delete_dominating_set(graph)
    assert is_dominating_set(graph, sun.dominating_set)
    add("Sun'21-style reverse delete (a+1)", len(sun.dominating_set), None, False)

    return rows, max_degree


def test_e8_comparison_against_prior_work(benchmark, record_experiment, bench_seed):
    rows, max_degree = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    by_name = {row["algorithm"]: row for row in rows}
    ours = by_name["this paper deterministic (Thm 1.1)"]
    # Round comparisons ("who wins"): much faster than the LP-based approach,
    # and at least as fast as the O(log Delta) combinatorial baselines.
    assert ours["rounds"] * 10 <= by_name["Bansal-Umboh LP rounding (2a+1)"]["rounds"]
    assert ours["rounds"] * 10 <= by_name["KMW'06 LP rounding O(logD)"]["rounds"]
    # Quality comparisons: within a small factor of the best baseline.
    best_quality = min(row["ratio"] for row in rows)
    assert ours["ratio"] <= 3 * best_quality
    assert by_name["this paper randomized (Thm 1.2)"]["ratio"] <= 3 * best_quality
    record_experiment(
        "E8",
        f"Comparison on preferential-attachment graph (n=500, alpha<=4, Delta={max_degree})",
        format_table(rows),
    )
    benchmark.extra_info["algorithms"] = len(rows)
