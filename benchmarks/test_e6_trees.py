"""E6 -- Observation A.1: single-round 3-approximation on forests.

Paper claim: on graphs of arboricity 1 (forests), taking all internal nodes
is a 3-approximation computable in a single communication round -- contrast
with arboricity 2, where Theorem 1.4 shows Omega(log Delta / log log Delta)
rounds are unavoidable for any reasonable approximation.

Measured here: the ratio of the trivial algorithm against the exact optimum
on random trees, caterpillars and random forests, its round count, and (for
contrast) the deterministic Theorem 1.1 algorithm on the same instances.
"""

from __future__ import annotations

from repro import solve_mds, solve_mds_forest
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.graphs.generators import caterpillar_graph, random_forest, random_tree


def _run(seed):
    workloads = {
        "random-tree-200": random_tree(200, seed=seed),
        "random-tree-800": random_tree(800, seed=seed + 1),
        "caterpillar-60x3": caterpillar_graph(60, legs_per_node=3),
        "random-forest-300": random_forest(300, tree_count=6, seed=seed + 2),
    }
    rows = []
    for name, graph in workloads.items():
        opt = estimate_opt(graph)
        trivial = solve_mds_forest(graph)
        theorem11 = solve_mds(graph, alpha=1, epsilon=0.2)
        assert trivial.is_valid and theorem11.is_valid
        rows.append(
            {
                "instance": name,
                "n": graph.number_of_nodes(),
                "opt bound": round(opt.value, 1),
                "trivial |S|": len(trivial),
                "trivial ratio (<=3)": round(len(trivial) / opt.value, 3),
                "trivial rounds": trivial.rounds,
                "Thm 1.1 |S|": len(theorem11),
                "Thm 1.1 ratio": round(theorem11.weight / opt.value, 3),
                "Thm 1.1 rounds": theorem11.rounds,
            }
        )
    return rows


def test_e6_forest_observation_a1(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    for row in rows:
        assert row["trivial ratio (<=3)"] <= 3.0 + 1e-9
        # "Single round": one communication round plus the local decision step.
        assert row["trivial rounds"] <= 2
    record_experiment(
        "E6",
        "Observation A.1 -- single-round forest 3-approximation vs Theorem 1.1",
        format_table(rows),
    )
    benchmark.extra_info["instances"] = len(rows)
