"""E6 -- Observation A.1: single-round 3-approximation on forests.

Paper claim: on graphs of arboricity 1 (forests), taking all internal nodes
is a 3-approximation computable in a single communication round -- contrast
with arboricity 2, where Theorem 1.4 shows Omega(log Delta / log log Delta)
rounds are unavoidable for any reasonable approximation.

Measured here: the ratio of the trivial algorithm against the exact optimum
on random trees, caterpillars and random forests, its round count, and (for
contrast) the deterministic Theorem 1.1 algorithm on the same instances.
The workload lives in the scenario registry (``E6/forests``).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.orchestration import get_scenario


def test_e6_forest_observation_a1(benchmark, record_experiment, bench_seed):
    scenario = get_scenario("E6/forests")
    records = benchmark.pedantic(scenario.run, kwargs={"seed": bench_seed}, rounds=1, iterations=1)
    by_instance = {}
    for record in records:
        assert record.is_dominating, record.instance
        by_instance.setdefault(record.instance, {})[record.params["solver_label"]] = record
    rows = []
    for instance, solvers in by_instance.items():
        trivial = solvers["forest-trivial"]
        theorem11 = solvers["theorem-1.1"]
        rows.append(
            {
                "instance": instance,
                "n": trivial.n,
                "opt bound": round(trivial.opt_value, 1),
                "trivial |S|": int(trivial.weight),
                "trivial ratio (<=3)": round(trivial.ratio, 3),
                "trivial rounds": trivial.rounds,
                "Thm 1.1 |S|": int(theorem11.weight),
                "Thm 1.1 ratio": round(theorem11.ratio, 3),
                "Thm 1.1 rounds": theorem11.rounds,
            }
        )
    for row in rows:
        assert row["trivial ratio (<=3)"] <= 3.0 + 1e-9
        # "Single round": one communication round plus the local decision step.
        assert row["trivial rounds"] <= 2
    record_experiment(
        "E6",
        "Observation A.1 -- single-round forest 3-approximation vs Theorem 1.1",
        format_table(rows),
    )
    benchmark.extra_info["instances"] = len(rows)
