"""E14 -- kernel-tier speedup: node-loop-free array programs vs BatchedEngine.

Infrastructure claim for the third execution tier
(:mod:`repro.congest.kernels`): executing the Theorem 1.1/3.1 algorithm as
whole-graph CSR array programs must beat the batched engine by >= 20x on
the 10^5-node scale target -- the batched engine vectorizes *delivery* but
still calls every node's Python handler every round, which is exactly the
cost the kernels remove.

Measured here, per instance size:

* batched wall time on the dict-based graph (one run; the headline
  instance costs ~50s under the batched engine),
* kernel wall time on the *same topology* streamed as a
  :class:`~repro.graphs.large_scale.CSRGraph` (best of three),
* the speedup ratio, and byte-level parity of the packaged results
  (``result_bytes``: dominating set, weights, validation, full RunMetrics).

The headline is the ISSUE's acceptance target: a 10^5-node BA instance
(``m = 4``) end-to-end through ``RunSpec``/``Session`` in seconds, >= 20x
over the batched engine at the largest size both tiers run.
"""

from __future__ import annotations

import time

import pytest

from repro import RunSpec, Session
from repro.analysis.tables import format_table
from repro.graphs.large_scale import large_preferential_attachment
from repro.run.result import result_bytes

#: Kernel-run timing repetitions (cheap); the batched run happens once.
KERNEL_REPEATS = 3


def _time_kernel(csr, alpha):
    session = Session()
    spec = RunSpec(graph=csr, algorithm="deterministic", alpha=alpha, engine="kernel")
    best, result = float("inf"), None
    for _ in range(KERNEL_REPEATS):
        start = time.perf_counter()
        result = session.run(spec)
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare(n, attachment, bench_seed):
    csr = large_preferential_attachment(n, attachment=attachment, seed=bench_seed)
    kernel_time, kernel_result = _time_kernel(csr, attachment)

    graph = csr.to_networkx()
    start = time.perf_counter()
    batched_result = Session().run(
        RunSpec(graph=graph, algorithm="deterministic", alpha=attachment,
                engine="batched")
    )
    batched_time = time.perf_counter() - start

    # The speedup is only meaningful because the runs are byte-identical.
    assert result_bytes(kernel_result) == result_bytes(batched_result), n
    return {
        "instance": f"BA n={n} m={attachment}",
        "n": n,
        "m": csr.m,
        "rounds": kernel_result.rounds,
        "batched_s": round(batched_time, 3),
        "kernel_s": round(kernel_time, 3),
        "speedup": round(batched_time / kernel_time, 1),
    }


@pytest.mark.bench
def test_e14_kernel_speedup(benchmark, record_experiment, bench_seed):
    def _run():
        rows = [_compare(n, 4, bench_seed) for n in (10_000, 30_000, 100_000)]
        return rows

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Acceptance: >= 20x at the largest size both engines run (measured
    # ~44x at n=10^5, ~25x at n=10^4; asserted with slack for CI noise).
    headline = rows[-1]
    assert headline["n"] == 100_000
    assert headline["speedup"] >= 20.0, headline
    for row in rows:
        assert row["speedup"] >= 10.0, row

    # The scale target itself: a 10^5-node BA run end-to-end in seconds.
    assert headline["kernel_s"] <= 10.0, headline

    record_experiment(
        "E14_kernel",
        "Kernel tier vs batched engine: byte-identical runs, node-loop-free wall-clock wins",
        format_table(rows)
        + "\n\nParity: packaged results byte-identical per instance via result_bytes"
        "\n(also enforced by tests/congest/test_kernel_parity.py)."
        "\nKernel rows execute on streamed CSRGraph inputs (no Network, no"
        "\nper-node contexts); batched rows on the equivalent networkx graph.",
    )
    benchmark.extra_info["instances"] = len(rows)
