"""E2 -- Theorem 1.1: weighted (2*alpha+1)(1+eps) approximation.

Paper claim: same guarantee and round complexity as the unweighted case, for
arbitrary positive integer node weights (the first distributed algorithm for
the weighted problem in this regime).

Measured here: weight ratio against the exact/LP optimum under four different
weight schemes, plus the realised round counts.
"""

from __future__ import annotations

import math

from repro import solve_weighted_mds
from repro.analysis.experiments import aggregate_records, sweep
from repro.analysis.tables import render_records, render_summary
from repro.graphs.generators import standard_test_suite
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_degree_weights,
    assign_inverse_degree_weights,
    assign_random_weights,
)

WEIGHT_SCHEMES = {
    "random": lambda graph, seed: assign_random_weights(graph, 1, 100, seed=seed),
    "degree": lambda graph, seed: assign_degree_weights(graph),
    "inverse-degree": lambda graph, seed: assign_inverse_degree_weights(graph, scale=100),
    "adversarial": lambda graph, seed: assign_adversarial_weights(graph, 0.4, 500, seed=seed),
}


def _run(scale, seed, epsilon):
    all_records = []
    instances = []
    for scheme_name, scheme in WEIGHT_SCHEMES.items():
        for instance in standard_test_suite(scale, seed=seed):
            instance.name = f"{instance.name}[{scheme_name}]"
            scheme(instance.graph, seed)
            instances.append(instance)
    records = sweep(
        "E2",
        instances,
        {"theorem-1.1": lambda inst: solve_weighted_mds(inst.graph, alpha=inst.alpha, epsilon=epsilon)},
    )
    all_records.extend(records)
    return all_records


def test_e2_weighted_theorem11(benchmark, record_experiment, bench_seed):
    epsilon = 0.2
    records = benchmark.pedantic(_run, args=("tiny", bench_seed, epsilon), rounds=1, iterations=1)
    for record in records:
        assert record.is_dominating, record.instance
        assert record.within_guarantee, record.instance
        bound = 2 * (math.log(record.max_degree + 1) / math.log(1 + epsilon) + 2) + 6
        assert record.rounds <= bound
    summary = aggregate_records(records)
    record_experiment(
        "E2",
        "Theorem 1.1 -- weighted deterministic (2a+1)(1+eps) approximation across weight schemes",
        render_records(records) + "\n\n" + render_summary(summary),
    )
    benchmark.extra_info["max_ratio"] = max(record.ratio for record in records)
