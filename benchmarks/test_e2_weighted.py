"""E2 -- Theorem 1.1: weighted (2*alpha+1)(1+eps) approximation.

Paper claim: same guarantee and round complexity as the unweighted case, for
arbitrary positive integer node weights (the first distributed algorithm for
the weighted problem in this regime).

Measured here: weight ratio against the exact/LP optimum under four different
weight schemes, plus the realised round counts.  The workload lives in the
scenario registry (``E2/weighted-schemes``); rerun it from the command line
with ``python -m repro run E2/weighted-schemes``.
"""

from __future__ import annotations

import math

from repro.analysis.experiments import aggregate_records
from repro.analysis.tables import render_records, render_summary
from repro.orchestration import get_scenario

EPSILON = 0.2


def test_e2_weighted_theorem11(benchmark, record_experiment, bench_seed):
    scenario = get_scenario("E2/weighted-schemes")
    records = benchmark.pedantic(scenario.run, kwargs={"seed": bench_seed}, rounds=1, iterations=1)
    assert len(records) == 32  # 8 standard families x 4 weight schemes
    for record in records:
        assert record.is_dominating, record.instance
        assert record.within_guarantee, record.instance
        bound = 2 * (math.log(record.max_degree + 1) / math.log(1 + EPSILON) + 2) + 6
        assert record.rounds <= bound
    summary = aggregate_records(records)
    record_experiment(
        "E2",
        "Theorem 1.1 -- weighted deterministic (2a+1)(1+eps) approximation across weight schemes",
        render_records(records) + "\n\n" + render_summary(summary),
    )
    benchmark.extra_info["max_ratio"] = max(record.ratio for record in records)
