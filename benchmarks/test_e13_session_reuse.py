"""E13 -- compiled-session batches vs the naive per-seed re-solve loop.

The unified execution API's performance claim: a multi-seed batch through
one compiled :class:`repro.Session` beats the legacy loop that calls a
``solve_*`` helper once per seed, on the same E9-scale preferential-
attachment graph, with byte-identical results.

Two baselines are measured:

* **legacy loop, default engine** -- ``solve_mds_randomized(graph, seed=s)``
  per seed exactly as a fresh process runs it (the process-wide default
  engine is the reference engine; the benchmark harness overrides it, so
  this row pins ``engine="reference"`` explicitly).  The session defaults
  to nothing slower than the batched fast path, so this is the user-visible
  before/after of switching APIs: target >= 2x.
* **legacy loop, batched engine** -- the same-engine control.  Everything
  separating it from the session batch is compiled-state reuse: the
  degeneracy bound, the network (one ``NodeContext`` per node), the CSR
  adjacency layout and the payload-bit memo are built once instead of once
  per seed.  The session must never lose this comparison, and the measured
  margin is recorded as the pure reuse win.

Both comparisons are only meaningful because the three record streams are
byte-identical, which is asserted per seed (engine parity is a repo-wide
invariant; reuse parity is enforced by ``tests/run/test_parity_grid.py``).
"""

from __future__ import annotations

import time
import warnings

import pytest

from repro import RunSpec, Session, solve_mds_randomized
from repro.analysis.tables import format_table
from repro.graphs.generators import preferential_attachment_graph
from repro.graphs.weights import assign_random_weights
from repro.run.result import result_bytes

#: One batch = this many independent seeds on one compiled graph.
SEEDS = tuple(range(8))


def _legacy_loop(graph, engine):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return [
            solve_mds_randomized(graph, t=1, seed=seed, engine=engine)
            for seed in SEEDS
        ]


def _session_batch(graph):
    with Session(engine="batched") as session:
        base = RunSpec(graph=graph, algorithm="randomized", params={"t": 1})
        return list(session.run_many(base=base, seeds=SEEDS))


def _timed(fn, *args):
    start = time.perf_counter()
    results = fn(*args)
    return time.perf_counter() - start, results


def _run(bench_seed):
    # The E11/E12 headline instance: E9-scale BA graph, heavy traffic.
    graph = preferential_attachment_graph(2500, attachment=32, seed=bench_seed)
    assign_random_weights(graph, 1, 30, seed=11)

    default_s, default_results = _timed(_legacy_loop, graph, "reference")
    batched_s, batched_results = _timed(_legacy_loop, graph, "batched")
    session_s, session_results = _timed(_session_batch, graph)

    # The speedups below are only claims because the streams are identical.
    for index, (a, b, c) in enumerate(
        zip(default_results, batched_results, session_results)
    ):
        assert result_bytes(a) == result_bytes(b) == result_bytes(c), f"seed {index}"

    def _row(path, engine, total):
        return {
            "path": path,
            "engine": engine,
            "seeds": len(SEEDS),
            "total_s": round(total, 3),
            "per_run_s": round(total / len(SEEDS), 4),
            "vs_legacy_default": round(default_s / total, 2),
        }

    return [
        _row("legacy solve_* loop (fresh-process default)", "reference", default_s),
        _row("legacy solve_* loop", "batched", batched_s),
        _row("Session.run_many (compiled reuse)", "batched", session_s),
    ]


@pytest.mark.bench
def test_e13_session_reuse(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    legacy_default, legacy_batched, session = rows

    # The acceptance bar: the batch beats the naive per-seed solve_* loop
    # by >= 2x on the E9-scale instance (measured much higher; asserted with
    # slack for noisy CI machines).
    assert session["vs_legacy_default"] >= 2.0, rows

    # Same-engine control: compiled-state reuse must never lose to the
    # per-seed rebuild loop; the measured margin is the pure reuse win.
    reuse_speedup = round(legacy_batched["total_s"] / session["total_s"], 2)
    assert reuse_speedup >= 1.0, rows

    record_experiment(
        "E13_session_reuse",
        "Multi-seed batch on one compiled Session vs naive per-seed re-solve loop",
        format_table(rows)
        + f"\n\nSame-engine (batched) control: Session batch is {reuse_speedup}x the "
        "legacy loop -- the pure compiled-state-reuse margin (degeneracy bound, "
        "network construction, CSR adjacency layout and payload-bit memo built "
        "once per graph instead of once per seed).\n"
        "Parity: all three record streams byte-identical per seed (asserted "
        "in-benchmark; also tests/run/test_parity_grid.py).",
    )
    benchmark.extra_info["seeds"] = len(SEEDS)
    benchmark.extra_info["reuse_speedup"] = reuse_speedup
