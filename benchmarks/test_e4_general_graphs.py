"""E4 -- Theorem 1.3: O(k * Delta^(2/k)) approximation on general graphs in O(k^2) rounds.

Paper claim: with no arboricity assumption at all, the sampling extension run
on its own gives expected approximation Delta^(1/k)(Delta^(1/k)+1)(k+1) in
O(k^2) rounds -- improving the classic KMW bound by a log Delta factor.

Measured here: mean ratio and rounds for a sweep of k on dense-ish random
graphs and a star-of-cliques (high Delta, moderate arboricity), compared with
the KMW-style LP-rounding baseline's expected O(log Delta) quality.
"""

from __future__ import annotations

import networkx as nx

from repro import solve_mds_general
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.graphs.generators import star_of_cliques
from repro.graphs.validation import dominating_set_weight


def _run(seed):
    workloads = {
        "gnp(150, 0.08)": nx.gnp_random_graph(150, 0.08, seed=seed),
        "star-of-cliques(12x6)": star_of_cliques(12, 6),
    }
    rows = []
    for name, graph in workloads.items():
        opt = estimate_opt(graph)
        max_degree = max(dict(graph.degree()).values())
        for k in (1, 2, 3):
            ratios, rounds = [], []
            guarantee = None
            for run_seed in range(3):
                result = solve_mds_general(graph, k=k, seed=run_seed)
                assert result.is_valid
                guarantee = result.guarantee
                ratios.append(dominating_set_weight(graph, result.dominating_set) / opt.value)
                rounds.append(result.rounds)
            rows.append(
                {
                    "instance": name,
                    "Delta": max_degree,
                    "k": k,
                    "mean ratio": sum(ratios) / len(ratios),
                    "guarantee O(k*Delta^(2/k))": round(guarantee, 1),
                    "mean rounds": sum(rounds) / len(rounds),
                }
            )
        kmw = kmw_lp_rounding_dominating_set(graph, seed=seed)
        rows.append(
            {
                "instance": name,
                "Delta": max_degree,
                "k": "KMW-LP baseline",
                "mean ratio": dominating_set_weight(graph, kmw.dominating_set) / opt.value,
                "guarantee O(k*Delta^(2/k))": None,
                "mean rounds": kmw.nominal_rounds,
            }
        )
    return rows


def test_e4_general_graphs_theorem13(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    for row in rows:
        if row["guarantee O(k*Delta^(2/k))"] is not None:
            assert row["mean ratio"] <= row["guarantee O(k*Delta^(2/k))"]
            # O(k^2) rounds with a generous constant.
            assert row["mean rounds"] <= 10 * (int(row["k"]) + 2) ** 2
    record_experiment(
        "E4",
        "Theorem 1.3 -- general graphs, k sweep vs KMW-style LP rounding",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
