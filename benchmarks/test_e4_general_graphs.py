"""E4 -- Theorem 1.3: O(k * Delta^(2/k)) approximation on general graphs in O(k^2) rounds.

Paper claim: with no arboricity assumption at all, the sampling extension run
on its own gives expected approximation Delta^(1/k)(Delta^(1/k)+1)(k+1) in
O(k^2) rounds -- improving the classic KMW bound by a log Delta factor.

Measured here: mean ratio and rounds over several solver seeds for a sweep of
k (scenario ``E4/general-k``), compared with the KMW-style LP-rounding
baseline's expected O(log Delta) quality (the centralized baseline stays out
of the registry -- it is not a CONGEST run).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.graphs.validation import dominating_set_weight
from repro.orchestration import get_scenario

SOLVER_SEEDS = (0, 1, 2)


def _run(bench_seed):
    scenario = get_scenario("E4/general-k")
    records = []
    for seed in SOLVER_SEEDS:
        records.extend(scenario.run(seed=seed))

    grouped = {}
    opt_by_instance = {}
    for record in records:
        grouped.setdefault((record.instance, record.params["k"]), []).append(record)
        opt_by_instance[record.instance] = record.opt_value
    rows = []
    for (instance, k), group in sorted(grouped.items()):
        rows.append(
            {
                "instance": instance,
                "Delta": group[0].max_degree,
                "k": k,
                "mean ratio": sum(record.ratio for record in group) / len(group),
                "guarantee O(k*Delta^(2/k))": round(group[0].guarantee, 1),
                "mean rounds": sum(record.rounds for record in group) / len(group),
            }
        )

    # The KMW-style LP-rounding baseline, centralized, for contrast -- scored
    # against the same OPT estimate the scenario's records already carry.
    from repro.baselines.kmw import kmw_lp_rounding_dominating_set

    for spec in scenario.graphs:
        instance = spec.build(SOLVER_SEEDS[0])
        kmw = kmw_lp_rounding_dominating_set(instance.graph, seed=bench_seed)
        rows.append(
            {
                "instance": instance.name,
                "Delta": instance.max_degree,
                "k": "KMW-LP baseline",
                "mean ratio": dominating_set_weight(instance.graph, kmw.dominating_set)
                / opt_by_instance[instance.name],
                "guarantee O(k*Delta^(2/k))": None,
                "mean rounds": kmw.nominal_rounds,
            }
        )
    return records, rows


def test_e4_general_graphs_theorem13(benchmark, record_experiment, bench_seed):
    records, rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    for record in records:
        assert record.is_dominating, record.instance
    for row in rows:
        if row["guarantee O(k*Delta^(2/k))"] is not None:
            assert row["mean ratio"] <= row["guarantee O(k*Delta^(2/k))"]
            # O(k^2) rounds with a generous constant.
            assert row["mean rounds"] <= 10 * (int(row["k"]) + 2) ** 2
    record_experiment(
        "E4",
        "Theorem 1.3 -- general graphs, k sweep vs KMW-style LP rounding",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
