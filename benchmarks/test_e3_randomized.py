"""E3 -- Theorem 1.2: randomized (alpha + O(alpha/t)) approximation in O(t log Delta) rounds.

Paper claim: for 1 <= t <= alpha/log(alpha), the randomized algorithm has
expected approximation alpha + O(alpha/t) and runs in O(t log Delta) rounds;
larger t trades rounds for quality.

Measured here: mean weight ratio over several solver seeds for a sweep of t,
and the realised round counts (which must grow roughly linearly in t).  The
workload lives in the scenario registry (``E3/randomized-t``): its graphs are
pinned to the benchmark seed, so sweeping the cell seed varies only the
solver randomness -- exactly the "fixed workload, averaged solver noise"
semantics this experiment wants.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.orchestration import get_scenario

SOLVER_SEEDS = (0, 1, 2)


def _run():
    scenario = get_scenario("E3/randomized-t")
    records = []
    for seed in SOLVER_SEEDS:
        records.extend(scenario.run(seed=seed))
    return records


def test_e3_randomized_theorem12(benchmark, record_experiment, bench_seed):
    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    for record in records:
        assert record.is_dominating, record.instance

    # Aggregate across solver seeds per (instance, t).
    grouped = {}
    for record in records:
        grouped.setdefault((record.instance, record.params["t"]), []).append(record)
    rows = []
    for (instance, t), group in sorted(grouped.items()):
        assert len(group) == len(SOLVER_SEEDS)
        mean_ratio = sum(record.ratio for record in group) / len(group)
        rows.append(
            {
                "instance": instance,
                "alpha": group[0].alpha,
                "t": t,
                f"mean ratio ({len(group)} seeds)": mean_ratio,
                "expected guarantee": round(group[0].guarantee, 2),
                "mean rounds": sum(record.rounds for record in group) / len(group),
                "opt kind": group[0].opt_kind,
            }
        )
        # Expected-quality claim: the seed-averaged ratio stays below the guarantee.
        assert mean_ratio <= group[0].guarantee
    # Rounds grow with t on each instance.
    for instance in {row["instance"] for row in rows}:
        per_t = sorted((row["t"], row["mean rounds"]) for row in rows if row["instance"] == instance)
        assert per_t[0][1] <= per_t[-1][1]
    record_experiment(
        "E3",
        "Theorem 1.2 -- randomized alpha(1+o(1)) approximation, t sweep",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
