"""E3 -- Theorem 1.2: randomized (alpha + O(alpha/t)) approximation in O(t log Delta) rounds.

Paper claim: for 1 <= t <= alpha/log(alpha), the randomized algorithm has
expected approximation alpha + O(alpha/t) and runs in O(t log Delta) rounds;
larger t trades rounds for quality.

Measured here: mean weight ratio over several seeds for a sweep of t, and the
realised round counts (which must grow roughly linearly in t).
"""

from __future__ import annotations

from repro import solve_mds_randomized
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.graphs.generators import forest_union_graph, preferential_attachment_graph
from repro.graphs.validation import dominating_set_weight
from repro.graphs.weights import assign_random_weights


def _run(seed):
    workloads = {
        "forest-union-a5": (forest_union_graph(250, alpha=5, seed=seed), 5),
        "pref-attach-a4": (preferential_attachment_graph(350, attachment=4, seed=seed), 4),
    }
    rows = []
    for name, (graph, alpha) in workloads.items():
        assign_random_weights(graph, 1, 50, seed=seed)
        opt = estimate_opt(graph)
        for t in (1, 2, 4):
            ratios, rounds = [], []
            guarantee = None
            for run_seed in range(3):
                result = solve_mds_randomized(graph, alpha=alpha, t=t, seed=run_seed)
                assert result.is_valid
                guarantee = result.guarantee
                ratios.append(dominating_set_weight(graph, result.dominating_set) / opt.value)
                rounds.append(result.rounds)
            rows.append(
                {
                    "instance": name,
                    "alpha": alpha,
                    "t": t,
                    "mean ratio (3 seeds)": sum(ratios) / len(ratios),
                    "expected guarantee": round(guarantee, 2),
                    "mean rounds": sum(rounds) / len(rounds),
                    "opt kind": opt.kind,
                }
            )
    return rows


def test_e3_randomized_theorem12(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    # Expected-quality claim: the seed-averaged ratio stays below the guarantee.
    for row in rows:
        assert row["mean ratio (3 seeds)"] <= row["expected guarantee"]
    # Rounds grow with t on each instance.
    for instance in {row["instance"] for row in rows}:
        per_t = sorted(
            (row["t"], row["mean rounds"]) for row in rows if row["instance"] == instance
        )
        assert per_t[0][1] <= per_t[-1][1]
    record_experiment(
        "E3",
        "Theorem 1.2 -- randomized alpha(1+o(1)) approximation, t sweep",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
