"""E11 -- simulation-engine speedup: batched vs reference round execution.

Not a paper claim but an infrastructure one: the batched engine (CSR-style
adjacency + NumPy-vectorized delivery accounting, see
:mod:`repro.congest.engine`) must make the E1-E10 workloads cheaper without
changing a single observable bit.  Measured here, per instance: wall time
under each engine (best of three), the speedup ratio, and a byte-level parity
check of outputs and metrics.

The headline instance is E9-scale (thousands of nodes) with the skewed,
high-degree profile of a preferential-attachment graph, where per-message
Python overhead dominates the reference engine; the target there is >= 5x.
On small or very sparse graphs the round loop is a smaller fraction of the
work, so the asserted floor is only "batched is never slower".
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro import RunSpec, execute
from repro.analysis.tables import format_table
from repro.graphs.generators import (
    caterpillar_graph,
    grid_graph,
    preferential_attachment_graph,
)
from repro.graphs.weights import assign_random_weights

#: Timing repetitions per (instance, engine); the minimum is reported.
REPEATS = 3


def _time_solver(solver, graph, engine):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = solver(graph, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare_engines(name, graph, solver):
    reference_time, reference = _time_solver(solver, graph, "reference")
    batched_time, batched = _time_solver(solver, graph, "batched")
    # The speedup claim is only meaningful because the runs are identical.
    assert batched.outputs == reference.outputs, name
    assert pickle.dumps(batched.metrics) == pickle.dumps(reference.metrics), name
    return {
        "instance": name,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "rounds": reference.rounds,
        "reference_s": round(reference_time, 4),
        "batched_s": round(batched_time, 4),
        "speedup": round(reference_time / batched_time, 2),
    }


def _run(bench_seed):
    rows = []

    # Mid-size smoke instance: the hard floor is "batched is never slower".
    def _solver(algorithm, alpha):
        return lambda g, engine: execute(
            RunSpec(graph=g, algorithm=algorithm, params={"epsilon": 0.2},
                    alpha=alpha, engine=engine)
        )

    mid = preferential_attachment_graph(800, attachment=6, seed=bench_seed)
    rows.append(_compare_engines("mid BA n=800 deg~6", mid, _solver("deterministic", 6)))

    # E9's own families at E9 scale (sparse: modest but real wins).
    rows.append(
        _compare_engines("E9 grid 40x40", grid_graph(40, 40), _solver("deterministic", 2))
    )
    rows.append(
        _compare_engines(
            "E9 caterpillar 12x128",
            caterpillar_graph(12, legs_per_node=128),
            _solver("deterministic", 1),
        )
    )

    # Headline E9-scale instance: thousands of nodes, heavy traffic.
    headline = preferential_attachment_graph(2500, attachment=32, seed=bench_seed)
    assign_random_weights(headline, 1, 30, seed=11)
    rows.append(
        _compare_engines(
            "E9-scale BA n=2500 deg~32 (headline)", headline, _solver("weighted", 32)
        )
    )
    return rows


@pytest.mark.bench
def test_e11_engine_speedup(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)

    # The hard "no slower" floor is asserted on the mid-size smoke instance,
    # where the win is comfortable (~3x); the very sparse E9 family rows have
    # thin margins (~1.2-2x) and are recorded, with only a sanity floor, so a
    # noisy CI machine cannot flake the suite on a timing coin-flip.
    assert rows[0]["speedup"] >= 1.0, rows[0]
    for row in rows:
        assert row["speedup"] >= 0.75, row

    # On the heavy-traffic E9-scale instance the round loop dominates and the
    # batching must pay off decisively (measured ~6x; asserted with slack for
    # noisy CI machines -- the recorded table carries the actual number).
    headline = rows[-1]
    assert headline["speedup"] >= 2.0, headline

    record_experiment(
        "E11_engine",
        "Batched vs reference engine: identical runs, batched wall-clock wins",
        format_table(rows)
        + "\n\nParity: outputs and full RunMetrics byte-identical per instance "
        "(also enforced by tests/congest/test_engine_parity.py).",
    )
    benchmark.extra_info["instances"] = len(rows)
