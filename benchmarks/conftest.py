"""Shared fixtures for the benchmark harness.

Every benchmark file regenerates one experiment from DESIGN.md's
per-experiment index (E1..E10).  Besides the timing numbers collected by
pytest-benchmark, each experiment writes its "paper claim vs measured" table
to ``benchmarks/results/<experiment>.txt`` so the quantitative outcome is
inspectable after a plain ``pytest benchmarks/ --benchmark-only`` run; the
same tables are summarised in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.congest.engine import set_default_engine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCHMARKS_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    """Mark everything collected from benchmarks/ with the ``bench`` marker.

    ``pytest.ini`` deselects ``bench`` by default, so tier-1 runs (and CI)
    never execute benchmarks by accident; run them explicitly with
    ``pytest benchmarks/ -m bench``.
    """
    del config
    for item in items:
        try:
            path = pathlib.Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - defensive
            continue
        if BENCHMARKS_DIR.resolve() in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(autouse=True)
def _use_batched_engine():
    """Run every benchmark on the batched engine.

    The benchmarks measure the paper's *round/approximation* claims, which
    are engine-independent (``tests/congest/test_engine_parity.py``), so they
    default to the fast path; E11 is the exception that compares engines
    explicitly.  The default is restored after each test so that unit tests
    collected in the same pytest session keep exercising the reference
    engine.
    """
    previous = set_default_engine("batched")
    try:
        yield
    finally:
        set_default_engine(previous)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir):
    """Return a callable that persists one experiment's rendered table."""

    def _record(experiment_id: str, title: str, body: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(f"{experiment_id}: {title}\n\n{body}\n")
        # Also echo to stdout so `pytest -s` shows the tables inline.
        print(f"\n{experiment_id}: {title}\n{body}\n")

    return _record


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """A single seed shared by every experiment, for reproducibility."""
    return 2022  # the paper's publication year
