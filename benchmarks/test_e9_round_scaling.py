"""E9 -- round-complexity scaling: O(log Delta / eps), independent of n.

Paper claim: the deterministic algorithm's round count grows logarithmically
with the maximum degree Delta and linearly with 1/eps, and does not depend on
the number of nodes n (Theorem 1.1); the lower bound (Theorem 1.4) says a
log Delta / log log Delta dependence is unavoidable already at arboricity 2.

Measured here: (i) rounds at fixed Delta as n grows (flat curve), (ii) rounds
at fixed n as Delta grows (logarithmic curve), (iii) rounds as eps shrinks
(linear in 1/eps).  The workloads live in the scenario registry
(``E9/scaling`` for (i)+(ii), ``E9/eps-sweep`` for (iii)); both use the free
counting OPT bound, since this experiment is about rounds, not ratios.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.orchestration import get_scenario


def _run(seed):
    scaling = get_scenario("E9/scaling").run(seed=seed)
    eps_sweep = get_scenario("E9/eps-sweep").run(seed=seed)
    rows = []
    for record in scaling:
        assert record.is_dominating, record.instance
        series = (
            "fixed Delta=4, growing n"
            if record.instance.startswith("grid")
            else "growing Delta (caterpillar legs)"
        )
        rows.append(
            {
                "series": series,
                "n": record.n,
                "Delta": record.max_degree,
                "eps": record.params["epsilon"],
                "rounds": record.rounds,
            }
        )
    for record in eps_sweep:
        assert record.is_dominating, record.instance
        rows.append(
            {
                "series": "shrinking eps",
                "n": record.n,
                "Delta": record.max_degree,
                "eps": record.params["epsilon"],
                "rounds": record.rounds,
            }
        )
    return rows


def test_e9_round_scaling(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    fixed_delta = [row["rounds"] for row in rows if row["series"].startswith("fixed Delta")]
    # (i) Independence of n: identical round counts across a 40x size range.
    assert max(fixed_delta) - min(fixed_delta) == 0
    # (ii) Logarithmic growth in Delta: rounds grow, but stay within the bound.
    growing = [row for row in rows if row["series"].startswith("growing Delta")]
    assert growing[0]["rounds"] < growing[-1]["rounds"]
    for row in growing:
        bound = 2 * (math.log(row["Delta"] + 1) / math.log(1.2) + 2) + 6
        assert row["rounds"] <= bound
    # (iii) More precision costs more rounds, roughly linearly in 1/eps.
    eps_series = [row for row in rows if row["series"] == "shrinking eps"]
    assert eps_series[0]["rounds"] < eps_series[-1]["rounds"]
    assert eps_series[-1]["rounds"] <= 12 * eps_series[0]["rounds"]
    record_experiment(
        "E9",
        "Round-complexity scaling: flat in n, logarithmic in Delta, linear in 1/eps",
        format_table(rows),
    )
    benchmark.extra_info["points"] = len(rows)
