"""E9 -- round-complexity scaling: O(log Delta / eps), independent of n.

Paper claim: the deterministic algorithm's round count grows logarithmically
with the maximum degree Delta and linearly with 1/eps, and does not depend on
the number of nodes n (Theorem 1.1); the lower bound (Theorem 1.4) says a
log Delta / log log Delta dependence is unavoidable already at arboricity 2.

Measured here: (i) rounds at fixed Delta as n grows (flat curve), (ii) rounds
at fixed n as Delta grows (logarithmic curve), (iii) rounds as eps shrinks
(linear in 1/eps).
"""

from __future__ import annotations

import math

from repro import solve_mds
from repro.analysis.tables import format_table
from repro.graphs.generators import caterpillar_graph, grid_graph


def _run():
    rows = []
    # (i) Fixed Delta = 4 (grids), growing n.
    for rows_count, cols in [(5, 6), (12, 12), (25, 25), (40, 40)]:
        graph = grid_graph(rows_count, cols)
        result = solve_mds(graph, alpha=2, epsilon=0.2)
        assert result.is_valid
        rows.append(
            {
                "series": "fixed Delta=4, growing n",
                "n": graph.number_of_nodes(),
                "Delta": 4,
                "eps": 0.2,
                "rounds": result.rounds,
            }
        )
    # (ii) Fixed n-ish, growing Delta: caterpillars with more legs per spine node.
    for legs in (2, 8, 32, 128):
        graph = caterpillar_graph(12, legs_per_node=legs)
        result = solve_mds(graph, alpha=1, epsilon=0.2)
        assert result.is_valid
        rows.append(
            {
                "series": "growing Delta (caterpillar legs)",
                "n": graph.number_of_nodes(),
                "Delta": max(dict(graph.degree()).values()),
                "eps": 0.2,
                "rounds": result.rounds,
            }
        )
    # (iii) Fixed graph, shrinking eps.
    graph = caterpillar_graph(12, legs_per_node=32)
    for eps in (0.4, 0.2, 0.1, 0.05):
        result = solve_mds(graph, alpha=1, epsilon=eps)
        assert result.is_valid
        rows.append(
            {
                "series": "shrinking eps",
                "n": graph.number_of_nodes(),
                "Delta": max(dict(graph.degree()).values()),
                "eps": eps,
                "rounds": result.rounds,
            }
        )
    return rows


def test_e9_round_scaling(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    fixed_delta = [row["rounds"] for row in rows if row["series"].startswith("fixed Delta")]
    # (i) Independence of n: identical round counts across a 40x size range.
    assert max(fixed_delta) - min(fixed_delta) == 0
    # (ii) Logarithmic growth in Delta: rounds grow, but stay within the bound.
    growing = [row for row in rows if row["series"].startswith("growing Delta")]
    assert growing[0]["rounds"] < growing[-1]["rounds"]
    for row in growing:
        bound = 2 * (math.log(row["Delta"] + 1) / math.log(1.2) + 2) + 6
        assert row["rounds"] <= bound
    # (iii) More precision costs more rounds, roughly linearly in 1/eps.
    eps_series = [row for row in rows if row["series"] == "shrinking eps"]
    assert eps_series[0]["rounds"] < eps_series[-1]["rounds"]
    assert eps_series[-1]["rounds"] <= 12 * eps_series[0]["rounds"]
    record_experiment(
        "E9",
        "Round-complexity scaling: flat in n, logarithmic in Delta, linear in 1/eps",
        format_table(rows),
    )
    benchmark.extra_info["points"] = len(rows)
