"""E1 -- Theorem 3.1: unweighted (2*alpha+1)(1+eps) approximation, O(log(Delta/alpha)/eps) rounds.

Paper claim: on any graph of arboricity <= alpha, the deterministic algorithm
returns a dominating set of size at most (2*alpha+1)(1+eps) * OPT within
O(log(Delta/alpha)/eps) CONGEST rounds.

Measured here: the size ratio against the exact/LP optimum and the realised
round count, across the standard graph families and three values of eps.
The workload lives in the scenario registry (``E1/unweighted-eps``); rerun it
from the command line with ``python -m repro run E1/unweighted-eps``.
"""

from __future__ import annotations

import math

from repro.analysis.experiments import aggregate_records
from repro.analysis.tables import render_records, render_summary
from repro.orchestration import get_scenario


def test_e1_unweighted_theorem31(benchmark, record_experiment, bench_seed):
    scenario = get_scenario("E1/unweighted-eps")
    records = benchmark.pedantic(scenario.run, kwargs={"seed": bench_seed}, rounds=1, iterations=1)
    # Every run must be a dominating set within the proven guarantee.
    for record in records:
        assert record.is_dominating, record.instance
        assert record.within_guarantee, record.instance
        # Round complexity: 2*log_{1+eps}(Delta+1) + O(1).
        eps = float(record.params["epsilon"])
        bound = 2 * (math.log(record.max_degree + 1) / math.log(1 + eps) + 2) + 6
        assert record.rounds <= bound, (record.instance, record.rounds, bound)
    summary = aggregate_records(records)
    body = render_records(records) + "\n\n" + render_summary(summary)
    record_experiment(
        "E1",
        "Theorem 3.1 -- unweighted deterministic (2a+1)(1+eps) approximation",
        body,
    )
    benchmark.extra_info["max_ratio"] = max(record.ratio for record in records)
    benchmark.extra_info["max_rounds"] = max(record.rounds for record in records)
