"""E1 -- Theorem 3.1: unweighted (2*alpha+1)(1+eps) approximation, O(log(Delta/alpha)/eps) rounds.

Paper claim: on any graph of arboricity <= alpha, the deterministic algorithm
returns a dominating set of size at most (2*alpha+1)(1+eps) * OPT within
O(log(Delta/alpha)/eps) CONGEST rounds.

Measured here: the size ratio against the exact/LP optimum and the realised
round count, across the standard graph families and three values of eps.
"""

from __future__ import annotations

import math

from repro import solve_mds
from repro.analysis.experiments import aggregate_records, sweep
from repro.analysis.tables import render_records, render_summary
from repro.graphs.generators import standard_test_suite


def _run(epsilons, scale, seed):
    instances = standard_test_suite(scale, seed=seed)
    solvers = {
        f"eps={eps}": (lambda eps: (lambda inst: solve_mds(inst.graph, alpha=inst.alpha, epsilon=eps)))(eps)
        for eps in epsilons
    }
    return instances, sweep("E1", instances, solvers)


def test_e1_unweighted_theorem31(benchmark, record_experiment, bench_seed):
    epsilons = (0.1, 0.3, 0.5)
    # "tiny" keeps the exact-OPT denominators cheap; E9 covers larger scales.
    instances, records = benchmark.pedantic(
        _run, args=(epsilons, "tiny", bench_seed), rounds=1, iterations=1
    )
    # Every run must be a dominating set within the proven guarantee.
    for record in records:
        assert record.is_dominating, record.instance
        assert record.within_guarantee, record.instance
        # Round complexity: 2*log_{1+eps}(Delta+1) + O(1).
        eps = float(record.params["solver_label"].split("=")[1])
        bound = 2 * (math.log(record.max_degree + 1) / math.log(1 + eps) + 2) + 6
        assert record.rounds <= bound, (record.instance, record.rounds, bound)
    summary = aggregate_records(records)
    body = render_records(records) + "\n\n" + render_summary(summary)
    record_experiment(
        "E1",
        "Theorem 3.1 -- unweighted deterministic (2a+1)(1+eps) approximation",
        body,
    )
    benchmark.extra_info["max_ratio"] = max(record.ratio for record in records)
    benchmark.extra_info["max_rounds"] = max(record.rounds for record in records)
