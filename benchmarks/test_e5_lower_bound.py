"""E5 -- Theorem 1.4 / Figure 1: the lower-bound construction and reduction.

Paper claim (Section 5): from a KMW-style base graph G with maximum degree
Delta, the constructed graph H has Delta^2 * (n+m) + n nodes,
Delta^2 * (2m+n) edges, arboricity 2 and maximum degree Delta^2, satisfies
OPT_MDS(H) <= (Delta^2 + Delta) * OPT_MFVC(G), and any c-approximate
dominating set of H converts into a c*(1+1/Delta)-approximate fractional
vertex cover of G.

Measured here: all structural certificates, plus the realised conversion
ratio when the dominating set of H is produced by the paper's own algorithm.
The structural checks need the construction's internals, so this file does
not go through the scenario registry; the plain solve-MDS-on-H workload is
registered as ``E5/lower-bound`` for sweeps and the CLI.
"""

from __future__ import annotations

from repro import RunSpec, execute
from repro.analysis.tables import format_table
from repro.baselines.lp import fractional_vertex_cover_lp
from repro.lowerbound.kmw_graph import bipartite_regular_base_graph
from repro.lowerbound.reduction import (
    build_lower_bound_graph,
    extract_fractional_vertex_cover,
    verify_structural_properties,
)


def _run(seed):
    rows = []
    for side, degree in [(6, 3), (10, 4), (14, 5)]:
        base = bipartite_regular_base_graph(side, degree, seed=seed + side)
        instance = build_lower_bound_graph(base)
        checks = verify_structural_properties(instance)
        result = execute(RunSpec(graph=instance.graph, algorithm="deterministic",
                                 params={"epsilon": 0.3}, alpha=2))
        fractional = extract_fractional_vertex_cover(instance, result.dominating_set)
        _, opt_mfvc = fractional_vertex_cover_lp(base.graph)
        vc_value = sum(fractional.values())
        rows.append(
            {
                "base": base.description,
                "H nodes": instance.n_h,
                "H edges": instance.m_h,
                "copies=Delta^2": instance.copies,
                "structure ok": all(checks.values()),
                "|DS(H)| (Thm 1.1)": len(result.dominating_set),
                "extracted VC": round(vc_value, 2),
                "OPT MFVC(G)": round(opt_mfvc, 2),
                "VC ratio": round(vc_value / opt_mfvc, 3),
                "DS valid": result.is_valid,
            }
        )
    return rows


def test_e5_lower_bound_construction(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    for row in rows:
        assert row["structure ok"], row
        assert row["DS valid"], row
        # The extracted object is a fractional vertex cover (feasibility is
        # enforced inside extract_fractional_vertex_cover); its value is at
        # most |S| / copies, i.e. the reduction loses nothing beyond the DS ratio.
        assert row["extracted VC"] <= row["|DS(H)| (Thm 1.1)"] / row["copies=Delta^2"] + 1e-9
        assert row["VC ratio"] >= 1.0 - 1e-9
    record_experiment(
        "E5",
        "Theorem 1.4 / Figure 1 -- lower-bound construction certificates and DS->MFVC reduction",
        format_table(rows),
    )
    benchmark.extra_info["instances"] = len(rows)
