"""E10 -- ablations of the design choices called out in DESIGN.md.

Three ablations:

1. **lambda selection** (Theorem 1.1 uses lambda = 1/((2a+1)(1+eps))): sweep
   lambda and show that the paper's choice balances the partial-set cost
   against the extension cost -- much smaller lambda pushes all the work to
   the extension, much larger lambda is infeasible for the analysis.
2. **Packing-value freezing**: the algorithm freezes x_v when v becomes
   dominated.  We re-run with freezing disabled (an intentionally broken
   variant) and show the packing constraint gets violated, i.e. the
   certificate that drives the approximation proof is lost.
3. **Partial phase vs extension**: how much weight each phase contributes at
   the paper's parameter choice.

The phase-weight breakdown and the intentionally-broken variant need the
algorithm's raw per-node outputs, so this file stays hand-rolled; the plain
lambda sweep is registered as scenario ``E10/lambda-ablation`` for the CLI.
"""

from __future__ import annotations

from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs
from repro.core.partial import theorem11_lambda
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.generators import forest_union_graph
from repro.graphs.validation import dominating_set_weight
from repro.graphs.weights import assign_random_weights


class _NoFreezeWeightedMDS(WeightedMDSAlgorithm):
    """Broken-on-purpose variant: keeps raising x_v even after domination."""

    name = "ablation-no-freeze"

    def _apply_increase_if_undominated(self, node):
        node.state["x"] *= 1.0 + self.epsilon
        node.state["increase_count"] += 1


def _run(seed):
    alpha = 3
    epsilon = 0.2
    graph = forest_union_graph(180, alpha=alpha, seed=seed)
    assign_random_weights(graph, 1, 50, seed=seed)
    opt = estimate_opt(graph)
    rows = []

    # Ablation 1: lambda sweep.
    paper_lambda = theorem11_lambda(alpha, epsilon)
    for label, lam in [
        ("paper lambda", paper_lambda),
        ("lambda / 10", paper_lambda / 10),
        ("lambda / 100", paper_lambda / 100),
        ("lambda * 2 (outside Lemma 4.1 range)", paper_lambda * 2),
    ]:
        algorithm = WeightedMDSAlgorithm(epsilon=epsilon, lambda_value=lam)
        result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed)
        selected = result.selected_nodes()
        outputs = result.outputs
        partial_weight = sum(
            graph.nodes[node].get("weight", 1)
            for node, out in outputs.items()
            if out["in_partial"]
        )
        rows.append(
            {
                "ablation": "lambda sweep",
                "variant": label,
                "total weight": dominating_set_weight(graph, selected),
                "ratio": round(dominating_set_weight(graph, selected) / opt.value, 3),
                "partial-set weight": partial_weight,
                "extension weight": dominating_set_weight(graph, selected) - partial_weight,
                "packing feasible": is_feasible_packing(graph, packing_from_outputs(outputs)),
                "rounds": result.rounds,
            }
        )

    # Ablation 2: freezing disabled.
    broken = run_algorithm(graph, _NoFreezeWeightedMDS(epsilon=epsilon), alpha=alpha, seed=seed)
    rows.append(
        {
            "ablation": "no freezing (broken)",
            "variant": "x_v keeps growing after domination",
            "total weight": dominating_set_weight(graph, broken.selected_nodes()),
            "ratio": round(dominating_set_weight(graph, broken.selected_nodes()) / opt.value, 3),
            "partial-set weight": None,
            "extension weight": None,
            "packing feasible": is_feasible_packing(graph, packing_from_outputs(broken.outputs)),
            "rounds": broken.rounds,
        }
    )
    return rows


def test_e10_ablations(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    lambda_rows = [row for row in rows if row["ablation"] == "lambda sweep"]
    paper_row = next(row for row in lambda_rows if row["variant"] == "paper lambda")
    # The paper's lambda keeps the packing feasible and the ratio within the guarantee.
    assert paper_row["packing feasible"]
    assert paper_row["ratio"] <= 7 * 1.2
    # Tiny lambda shifts (almost) all the weight to the extension phase.
    tiny = next(row for row in lambda_rows if row["variant"] == "lambda / 100")
    assert tiny["partial-set weight"] <= paper_row["partial-set weight"]
    # The no-freeze variant loses the primal-dual certificate.
    broken = next(row for row in rows if row["ablation"] == "no freezing (broken)")
    assert not broken["packing feasible"]
    record_experiment(
        "E10",
        "Ablations: lambda selection, packing-value freezing, phase contributions",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
