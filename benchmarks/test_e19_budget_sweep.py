"""E19 -- budget-governed sweeps: an over-budget sweep lands on its budget.

The sweep governor (:mod:`repro.orchestration.governor`) promises two
things for a wall-clock budget smaller than the sweep's natural cost:

* **the budget is respected** -- total sweep wall time finishes within
  +/-10% of the declared budget (overshoot is bounded by the cells already
  in flight, undershoot by one peak-hold cell estimate), with the refused
  cells surfacing as explicit ``skipped (budget)`` results; and
* **governing changes scheduling, never results** -- every cell that *did*
  complete under the budget is byte-identical
  (:func:`~repro.orchestration.cache.records_to_bytes`) to the same cell
  in an ungoverned run of the same grid.

The workload is a grid of many small uniform cells (two smoke scenarios
across 16 seeds), so one cell is a few percent of the halved budget and
the +/-10% gate has real margin.  Timing gates retry up to
``MAX_ATTEMPTS`` times for noisy boxes; the byte-parity gate applies to
every attempt unconditionally.
"""

from __future__ import annotations

import time

from repro.orchestration.cache import records_to_bytes
from repro.orchestration.runner import SweepBudget, SweepRunner, expand_cells
from repro.orchestration.scenarios import register_builtin_scenarios

SCENARIOS = ("smoke/forest", "smoke/mixed")
SEEDS = tuple(range(16))
#: Acceptance: governed wall time within this fraction of the budget.
TOLERANCE = 0.10
#: Extra attempts a noisy box may take before the timing gate is final.
MAX_ATTEMPTS = 3


def _run_grid(runner, cells):
    start = time.perf_counter()
    results = list(runner.run_cells(cells))
    return results, time.perf_counter() - start


def test_e19_budget_governed_sweep(record_experiment):
    register_builtin_scenarios()
    cells = expand_cells(SCENARIOS, SEEDS)

    baseline, t_full = _run_grid(SweepRunner(), cells)
    assert all(result.skipped is None for result in baseline)
    base_bytes = {
        (result.scenario, result.seed): records_to_bytes(result.records)
        for result in baseline
    }

    budget_s = t_full / 2
    attempts = []
    for _ in range(MAX_ATTEMPTS):
        runner = SweepRunner(budget=SweepBudget(seconds=budget_s))
        governed, wall = _run_grid(runner, cells)
        completed = [result for result in governed if result.skipped is None]
        skipped = [result for result in governed if result.skipped is not None]

        # Unconditional gates: an over-budget sweep must refuse something,
        # refusals are budget refusals, and completed cells are
        # byte-identical to the ungoverned run -- on every attempt.
        assert skipped, "a half-budget sweep must skip cells"
        assert all(result.skip_reason == "budget" for result in skipped)
        assert all(result.records == [] for result in skipped)
        for result in completed:
            assert (
                records_to_bytes(result.records)
                == base_bytes[(result.scenario, result.seed)]
            )

        ratio = wall / budget_s
        attempts.append(
            (wall, ratio, len(completed), len(skipped), runner.budget_summary())
        )
        if 1 - TOLERANCE <= ratio <= 1 + TOLERANCE:
            break

    best = min(attempts, key=lambda attempt: abs(attempt[1] - 1.0))
    wall, ratio, completed_count, skipped_count, summary = best

    lines = [
        f"grid: {len(cells)} cells ({' + '.join(SCENARIOS)} x {len(SEEDS)} seeds)",
        f"ungoverned wall:   {t_full:8.3f} s",
        f"declared budget:   {budget_s:8.3f} s  (ungoverned / 2)",
        f"governed wall:     {wall:8.3f} s  ({ratio:.2f}x budget, "
        f"gate {1 - TOLERANCE:.2f}..{1 + TOLERANCE:.2f})",
        f"cells completed:   {completed_count}",
        f"cells skipped:     {skipped_count} (budget)",
        f"governor summary:  {summary}",
        "byte parity:       every completed cell identical to the ungoverned run",
        f"attempts:          {len(attempts)} (ratios: "
        + ", ".join(f"{attempt[1]:.2f}" for attempt in attempts)
        + ")",
    ]
    record_experiment(
        "E19_budget",
        "budget-governed sweep lands on its wall-clock budget",
        "\n".join(lines),
    )

    assert ratio <= 1 + TOLERANCE, (
        f"governed sweep overran its budget: {wall:.3f}s vs {budget_s:.3f}s"
    )
    assert ratio >= 1 - TOLERANCE, (
        f"governed sweep stopped too early: {wall:.3f}s vs {budget_s:.3f}s"
    )
