"""E7 -- Remarks 4.4 and 4.5: unknown Delta and unknown alpha.

Paper claim: the Theorem 1.1 guarantee survives when Delta is unknown
(Remark 4.4: same (2*alpha+1)(1+eps) factor, O(log Delta / eps) rounds), and
an approximation of (2*alpha+1)(2+eps) is achievable in poly(log n)/eps
rounds when alpha is unknown (Remark 4.5, via a Barenboim--Elkin style
orientation; see the documented doubling-schedule substitution).

Measured here: weight ratios and rounds of both variants next to the
full-knowledge algorithm on the same weighted instances.
"""

from __future__ import annotations

from repro import solve_mds_unknown_arboricity, solve_mds_unknown_degree, solve_weighted_mds
from repro.analysis.opt import estimate_opt
from repro.analysis.tables import format_table
from repro.graphs.generators import forest_union_graph, preferential_attachment_graph
from repro.graphs.weights import assign_random_weights


def _run(seed):
    workloads = {
        "forest-union-a3-150": (forest_union_graph(150, alpha=3, seed=seed), 3),
        "pref-attach-a4-200": (preferential_attachment_graph(200, attachment=4, seed=seed), 4),
    }
    rows = []
    for name, (graph, alpha) in workloads.items():
        assign_random_weights(graph, 1, 60, seed=seed)
        opt = estimate_opt(graph)
        known = solve_weighted_mds(graph, alpha=alpha, epsilon=0.2)
        no_delta = solve_mds_unknown_degree(graph, alpha=alpha, epsilon=0.2)
        no_alpha = solve_mds_unknown_arboricity(graph, epsilon=0.25)
        for label, result in (
            ("full knowledge (Thm 1.1)", known),
            ("unknown Delta (Rem 4.4)", no_delta),
            ("unknown alpha (Rem 4.5)", no_alpha),
        ):
            assert result.is_valid
            rows.append(
                {
                    "instance": name,
                    "variant": label,
                    "weight": result.weight,
                    "ratio": round(result.weight / opt.value, 3),
                    "stated guarantee": round(result.guarantee, 2) if result.guarantee else None,
                    "rounds": result.rounds,
                }
            )
    return rows


def test_e7_unknown_parameters(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)
    for row in rows:
        if row["stated guarantee"] is not None:
            assert row["ratio"] <= row["stated guarantee"] + 1e-9
    # Remark 4.4 keeps the same approximation regime as the full-knowledge run
    # (within a factor 2 on these instances), at a constant-factor round cost.
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["variant"]] = row
    for variants in by_instance.values():
        known = variants["full knowledge (Thm 1.1)"]
        no_delta = variants["unknown Delta (Rem 4.4)"]
        assert no_delta["ratio"] <= 2 * known["stated guarantee"]
        assert no_delta["rounds"] <= 4 * known["rounds"] + 10
    record_experiment(
        "E7",
        "Remarks 4.4 / 4.5 -- unknown Delta and unknown alpha variants",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
