"""E7 -- Remarks 4.4 and 4.5: unknown Delta and unknown alpha.

Paper claim: the Theorem 1.1 guarantee survives when Delta is unknown
(Remark 4.4: same (2*alpha+1)(1+eps) factor, O(log Delta / eps) rounds), and
an approximation of (2*alpha+1)(2+eps) is achievable in poly(log n)/eps
rounds when alpha is unknown (Remark 4.5, via a Barenboim--Elkin style
orientation; see the documented doubling-schedule substitution).

Measured here: weight ratios and rounds of both variants next to the
full-knowledge algorithm on the same weighted instances (scenario
``E7/unknown-params``).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.orchestration import get_scenario


def test_e7_unknown_parameters(benchmark, record_experiment, bench_seed):
    scenario = get_scenario("E7/unknown-params")
    records = benchmark.pedantic(scenario.run, kwargs={"seed": bench_seed}, rounds=1, iterations=1)
    rows = []
    by_instance = {}
    for record in records:
        assert record.is_dominating, record.instance
        if record.guarantee is not None:
            assert record.ratio <= record.guarantee + 1e-9
        by_instance.setdefault(record.instance, {})[record.params["solver_label"]] = record
        rows.append(
            {
                "instance": record.instance,
                "variant": record.params["solver_label"],
                "weight": record.weight,
                "ratio": round(record.ratio, 3),
                "stated guarantee": round(record.guarantee, 2) if record.guarantee else None,
                "rounds": record.rounds,
            }
        )
    # Remark 4.4 keeps the same approximation regime as the full-knowledge run
    # (within a factor 2 on these instances), at a constant-factor round cost.
    for variants in by_instance.values():
        known = variants["full knowledge (Thm 1.1)"]
        no_delta = variants["unknown Delta (Rem 4.4)"]
        assert no_delta.ratio <= 2 * known.guarantee
        assert no_delta.rounds <= 4 * known.rounds + 10
    record_experiment(
        "E7",
        "Remarks 4.4 / 4.5 -- unknown Delta and unknown alpha variants",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = len(rows)
