"""E17 -- telemetry cost and fidelity: zero-overhead-when-off tracing,
byte-identical traced runs, and a /metrics histogram that tracks reality.

The observability layer (:mod:`repro.obs`) rides the same hot paths the
E14 kernel tier was built to protect, so it carries three gates:

* **off is free** -- a :class:`~repro.obs.trace.NullTracer` run of the
  E14 kernel workload lands within 2% of a tracer-less run (total wall
  time over interleaved, GC-pinned repeats of one shared session, so
  the arms differ in nothing but the tracer).  The disabled branch is
  one attribute check per *run*, never per round.
* **on is honest** -- with a live :class:`~repro.obs.trace.FileTracer`,
  ``result_bytes`` is byte-identical to the plain run on all three
  engines, and the emitted JSONL validates cleanly.  A tracer observes a
  run; it never participates in one.
* **/metrics is real** -- the ``repro_serve_request_seconds`` histogram
  scraped from a live server agrees with the load generator's own
  client-side p50/p99 to within one bucket (the histogram quantile is an
  upper bound tight to one bucket; the client adds only socket overhead).

The tracing-*on* kernel overhead is reported but not gated: the unfaulted
CSR path stays hook-free under a tracer (rounds are derived post-run), so
its cost is emitting one span tree per run.
"""

from __future__ import annotations

import asyncio
import gc
import threading
import time

import pytest

from repro import RunSpec, Session
from repro.analysis.tables import format_table
from repro.graphs.generators import forest_union_graph
from repro.graphs.large_scale import large_preferential_attachment
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS
from repro.obs.trace import FileTracer, NullTracer, load_trace, validate_trace
from repro.run.result import result_bytes

#: Interleaved timing repetitions per gated arm per batch.
REPEATS = 40
#: Extra sample batches a noisy box may take before the gate is final.
MAX_BATCHES = 3
#: Repetitions for the reported (ungated) tracing-on arm.
ON_REPEATS = 9
#: The E14 kernel workload scale used for the overhead measurement (the
#: smallest E14 size: more repeats per box-noise phase beats longer runs).
OVERHEAD_N = 10_000
#: Acceptance: tracing-off wall time within this fraction of tracer-less.
OFF_OVERHEAD_CEILING = 0.02

ENGINES = ("reference", "batched", "kernel")


def _kernel_spec(bench_seed):
    csr = large_preferential_attachment(OVERHEAD_N, attachment=4, seed=bench_seed)
    return RunSpec(graph=csr, algorithm="deterministic", alpha=4, engine="kernel")


def _measure_overhead(bench_seed, tmp_path):
    """Total wall time for tracer-less / NullTracer / FileTracer arms.

    A 2% gate on a sub-100ms workload demands care against noise sources
    that were each observed to dwarf the quantity under measurement:

    * one shared :class:`Session` runs all three arms (the tracer is
      passed per call), so the arms differ in *nothing* but the tracer --
      separate sessions compile separate state and pick up persistent
      few-percent allocation-layout skews;
    * the arm order rotates every repeat -- running immediately after an
      identical run is measurably faster, so a fixed order hands one arm
      a systematic advantage;
    * the GC is disabled across the timed region (with an explicit
      collect between samples), so collection pauses land between runs
      instead of inside a random arm's timing.

    The compared statistic is the *sum* over all repeats: shared boxes
    drift through multi-second slow/fast phases, and because the two
    gated arms strictly alternate (ping-pong, order flipped every
    repeat, so each arm follows itself and the other equally often),
    each phase contributes equally to both totals -- unlike per-arm
    minima or medians, which cherry-pick phases and flake at the
    few-percent level.  If the gate is still unresolved after a batch,
    sampling continues (up to ``MAX_BATCHES``): totals keep averaging
    noise down, while a real >2% branch cost is in every off sample and
    cannot be averaged away.  The tracing-*on* arm is timed in its own
    loop afterwards -- it is reported, not gated, so it must not
    perturb the gated interleave.
    """
    spec = _kernel_spec(bench_seed)
    session = Session()
    null = NullTracer()
    session.run(spec)  # warm the compiled-graph cache before timing

    def _timed(arm_tracer):
        gc.collect()
        start = time.perf_counter()
        if arm_tracer is None:
            session.run(spec)
        else:
            session.run(spec, tracer=arm_tracer)
        return time.perf_counter() - start

    totals = {"plain": 0.0, "off": 0.0, "on": 0.0}
    count = 0
    tracer = FileTracer(tmp_path / "overhead.jsonl")
    gc.disable()
    try:
        for _batch in range(MAX_BATCHES):
            for repeat in range(REPEATS):
                pair = [("plain", None), ("off", null)]
                if repeat % 2:
                    pair.reverse()
                for arm, arm_tracer in pair:
                    totals[arm] += _timed(arm_tracer)
            count += REPEATS
            if totals["off"] <= totals["plain"] * (1.0 + OFF_OVERHEAD_CEILING):
                break
        for _ in range(ON_REPEATS):
            totals["on"] += _timed(tracer)
    finally:
        gc.enable()
    tracer.close()
    records = load_trace(tmp_path / "overhead.jsonl")
    assert validate_trace(records) == []
    measured = {
        "plain": totals["plain"] / count,
        "off": totals["off"] / count,
        "on": totals["on"] / ON_REPEATS,
        "samples": count,
    }
    return measured


def _parity_rows(bench_seed, tmp_path):
    """Traced vs plain ``result_bytes`` on every engine, fault-free."""
    graph = forest_union_graph(200, alpha=3, seed=bench_seed)
    rows = []
    path = tmp_path / "parity.jsonl"
    for engine in ENGINES:
        spec = RunSpec(
            graph=graph, algorithm="deterministic", alpha=3, seed=7, engine=engine
        )
        plain = Session().run(spec)
        with FileTracer(path) as tracer:
            traced = Session().run(spec, tracer=tracer)
        identical = result_bytes(traced) == result_bytes(plain)
        assert identical, f"traced run diverged on engine={engine}"
        rows.append(
            {"engine": engine, "rounds": traced.rounds, "traced == plain": "yes"}
        )
    assert validate_trace(load_trace(path)) == []
    return rows


def _start_server(cache_dir):
    from repro.orchestration.cache import ResultCache
    from repro.serve.http import HttpServer
    from repro.serve.service import RunService

    service = RunService(cache=ResultCache(cache_dir), graph_capacity=4)
    server = HttpServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    loop_holder = {}

    def run_loop():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)

        async def main():
            await server.start()
            started.set()
            await server.serve_until_stopped()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(timeout=60)
    return server, thread, loop_holder


def _bucket_index(seconds):
    """The histogram bucket a raw observation falls into (last = overflow)."""
    for index, bound in enumerate(DEFAULT_SECONDS_BUCKETS):
        if seconds <= bound:
            return index
    return len(DEFAULT_SECONDS_BUCKETS)


def _measure_serve_histogram(tmp_path):
    """Drive loadgen at a live server; compare /metrics to client timing."""
    from repro.serve.loadgen import ServeClient, run_load

    server, thread, loop_holder = _start_server(tmp_path / "serve-cache")
    try:
        # repeats=2 keeps cache hits a minority of the sample: with hits in
        # the majority, the client's p50 lands on a sub-millisecond cached
        # response where HTTP transport (~0.5ms) spans several of the
        # fine-grained low-end buckets, and the within-one-bucket claim
        # compares transport, not the histogram.
        report = run_load(port=server.port, seeds=3, repeats=2, dedup_clients=4)
        assert report.errors == 0, report.error_samples
        client = ServeClient(port=server.port)
        status, exposition = client.get_text("/metrics")
        client.close()
        histogram = server.service.metrics.histogram("repro_serve_request_seconds")
        agreement = []
        for label, q, client_ms in (
            ("p50", 0.50, report.p50_ms),
            ("p99", 0.99, report.p99_ms),
        ):
            server_bucket = histogram.quantile_bucket(q)
            client_bucket = _bucket_index(client_ms / 1000.0)
            agreement.append(
                {
                    "quantile": label,
                    "loadgen (client)": f"{client_ms:.2f} ms",
                    "histogram bound": f"{histogram.quantile(q) * 1000.0:.2f} ms",
                    "bucket delta": abs(server_bucket - client_bucket),
                }
            )
    finally:
        loop_holder["loop"].call_soon_threadsafe(server.stop)
        thread.join(timeout=60)

    assert status == 200
    assert f"repro_serve_request_seconds_count {report.requests}" in exposition
    assert histogram.count == report.requests
    return report, agreement


@pytest.mark.bench
def test_e17_trace_overhead(benchmark, record_experiment, bench_seed, tmp_path):
    def _run():
        return _measure_overhead(bench_seed, tmp_path)

    measured = benchmark.pedantic(_run, rounds=1, iterations=1)
    off_overhead = measured["off"] / measured["plain"] - 1.0
    on_overhead = measured["on"] / measured["plain"] - 1.0

    parity_rows = _parity_rows(bench_seed, tmp_path)
    report, agreement = _measure_serve_histogram(tmp_path)

    timing_rows = [
        {
            "tracer": label,
            "mean_s": round(measured[arm], 4),
            "vs plain": f"{(measured[arm] / measured['plain'] - 1.0) * +100.0:+.2f}%",
        }
        for label, arm in (
            ("none (tracer-less)", "plain"),
            ("NullTracer (off)", "off"),
            ("FileTracer (on)", "on"),
        )
    ]
    body = (
        f"Workload: BA n={OVERHEAD_N} m=4 on engine='kernel', one shared "
        f"session, mean over {measured['samples']} interleaved GC-pinned "
        "repeats per arm.\n\n"
        + format_table(timing_rows)
        + f"\n\ngate: tracing-off overhead {off_overhead * 100.0:+.2f}% "
        f"(ceiling {OFF_OVERHEAD_CEILING * 100.0:.0f}%); tracing-on "
        f"{on_overhead * 100.0:+.2f}% (reported, not gated -- the unfaulted\n"
        "CSR path stays hook-free under a tracer; rounds derive post-run).\n\n"
        "Traced-run byte parity (result_bytes, fault-free forest n=200):\n"
        + format_table(parity_rows)
        + "\n\n/metrics vs loadgen over one live server "
        f"({report.requests} requests, {report.rps:.1f} req/s):\n"
        + format_table(agreement)
        + "\ngate: bucket delta <= 1 at p50 and p99 (histogram quantiles are\n"
        "upper bounds tight to one bucket; the client adds socket overhead).\n"
    )
    record_experiment(
        "E17_trace",
        "Telemetry cost: tracing off is free, on is byte-identical, /metrics is honest",
        body,
    )
    benchmark.extra_info["off_overhead"] = round(off_overhead, 4)

    assert off_overhead <= OFF_OVERHEAD_CEILING, measured
    for row in agreement:
        assert row["bucket delta"] <= 1, row
