"""E16 -- service mode: cached-repeat vs fresh-run throughput over HTTP.

The ``repro serve`` performance claim: a long-lived service answering
repeated RunSpec requests from its content-addressed response cache is an
order of magnitude faster than executing them, and the in-flight dedup path
collapses a thundering herd of identical requests into one execution.  Both
claims are only meaningful because every served response is byte-identical
(:func:`repro.run.result.result_bytes`) to a direct in-process
``Session.run`` of the same wire spec, which is asserted for every probed
spec before any throughput number is recorded.

Three phases are measured over a real HTTP connection (stdlib client, one
keep-alive connection, requests issued serially so the numbers are
per-request costs, not concurrency artifacts):

* **fresh** -- N distinct specs against a cold cache: every request
  normalises the payload, compiles/reuses the graph, executes, validates,
  and writes the cache entry.
* **cached** -- the same N specs replayed: every request is answered from
  the response cache.  The gate is cached >= 5x fresh throughput.
* **dedup** -- K threads racing one uncached spec: exactly one execution,
  K-1 in-flight joins.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.analysis.tables import format_table
from repro.orchestration.cache import ResultCache
from repro.run import RunSpec, Session, result_bytes
from repro.serve.http import HttpServer
from repro.serve.loadgen import ServeClient, _percentile
from repro.serve.service import RunService, decode_result_b64

#: Distinct specs in the fresh/cached phases.
SPECS = 24
#: Threads racing the same spec in the dedup phase.
HERD = 6
#: The acceptance gate: cached-repeat throughput >= this multiple of fresh.
CACHED_SPEEDUP_FLOOR = 5.0


def _workload():
    return [
        {
            "graph": {"kind": "family", "family": "random-tree", "params": {"n": 150}},
            "algorithm": "deterministic",
            "seed": seed,
        }
        for seed in range(SPECS)
    ]


def _start_server(cache_dir):
    service = RunService(cache=ResultCache(cache_dir), graph_capacity=4)
    server = HttpServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    loop_holder = {}

    def run_loop():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)

        async def main():
            await server.start()
            started.set()
            await server.serve_until_stopped()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(timeout=60)
    return server, thread, loop_holder


def _timed_phase(client, specs):
    latencies = []
    responses = []
    start = time.perf_counter()
    for spec in specs:
        tick = time.perf_counter()
        status, body = client.run(spec)
        latencies.append((time.perf_counter() - tick) * 1000.0)
        assert status == 200, body
        responses.append(body)
    wall = time.perf_counter() - start
    return wall, latencies, responses


def _phase_row(label, wall, latencies):
    return {
        "phase": label,
        "requests": len(latencies),
        "req/s": f"{len(latencies) / wall:.1f}",
        "p50 ms": f"{_percentile(latencies, 0.50):.2f}",
        "p99 ms": f"{_percentile(latencies, 0.99):.2f}",
    }


def test_e16_serve_throughput(tmp_path, record_experiment):
    server, thread, loop_holder = _start_server(tmp_path / "cache")
    specs = _workload()
    try:
        client = ServeClient(port=server.port, timeout=300.0)

        fresh_wall, fresh_lat, fresh_responses = _timed_phase(client, specs)
        assert all(r["metrics"]["cache"] == "miss" for r in fresh_responses)

        cached_wall, cached_lat, cached_responses = _timed_phase(client, specs)
        assert all(r["metrics"]["cache"] == "hit" for r in cached_responses)
        # Byte parity first -- throughput numbers for wrong answers are noise.
        session = Session()
        for spec, response in zip(specs, cached_responses):
            served = result_bytes(decode_result_b64(response["result_b64"]))
            direct = result_bytes(session.run(RunSpec.from_dict(spec)))
            assert served == direct, f"parity failure for seed {spec['seed']}"

        # Dedup herd: one uncached spec, HERD racing clients.
        herd_spec = {
            "graph": {"kind": "family", "family": "gnp",
                      "params": {"n": 400, "p": 0.01}},
            "algorithm": "deterministic",
            "seed": 0,
        }
        barrier = threading.Barrier(HERD)
        herd_metrics = []
        lock = threading.Lock()

        def herd_worker():
            worker_client = ServeClient(port=server.port, timeout=300.0)
            try:
                barrier.wait()
                status, body = worker_client.run(herd_spec)
                assert status == 200, body
                with lock:
                    herd_metrics.append(body["metrics"]["cache"])
            finally:
                worker_client.close()

        herd_threads = [threading.Thread(target=herd_worker) for _ in range(HERD)]
        for herd_thread in herd_threads:
            herd_thread.start()
        for herd_thread in herd_threads:
            herd_thread.join()
        executions = herd_metrics.count("miss")
        joins = herd_metrics.count("inflight")

        stats = server.service.stats
        client.close()
    finally:
        loop_holder["loop"].call_soon_threadsafe(server.stop)
        thread.join(timeout=60)

    fresh_rps = len(fresh_lat) / fresh_wall
    cached_rps = len(cached_lat) / cached_wall
    speedup = cached_rps / fresh_rps

    table = format_table(
        [
            _phase_row("fresh (execute)", fresh_wall, fresh_lat),
            _phase_row("cached repeat", cached_wall, cached_lat),
        ]
    )
    body = (
        f"{table}\n\n"
        f"cached-repeat speedup: {speedup:.1f}x fresh "
        f"(gate: >= {CACHED_SPEEDUP_FLOOR:.0f}x)\n"
        f"byte parity: {len(specs)}/{len(specs)} served results identical to "
        "direct Session.run\n"
        f"dedup herd: {HERD} identical requests -> {executions} execution, "
        f"{joins} in-flight joins\n"
        f"service stats: executions={stats.executions} "
        f"cache_hits={stats.cache_hits} inflight_joins={stats.inflight_joins} "
        f"graph_hits={stats.graph_hits}\n"
    )
    record_experiment(
        "E16_serve",
        "service mode -- cached-repeat vs fresh-run throughput (HTTP)",
        body,
    )

    assert executions == 1, herd_metrics
    assert joins == HERD - 1, herd_metrics
    assert speedup >= CACHED_SPEEDUP_FLOOR, (
        f"cached repeats only {speedup:.1f}x fresh throughput "
        f"(fresh {fresh_rps:.1f} req/s, cached {cached_rps:.1f} req/s)"
    )
